//! Dense square matrices over a [`Semiring`] with the two kernels the
//! paper's node-processing steps need:
//!
//! * [`SemiMatrix::floyd_warshall`] — all-pairs path weights (Algorithm
//!   4.1 step ii runs this on `H_S`; the paper cites Floyd–Warshall with
//!   `O(|S|³ log |S|)` PRAM work / `O(|S|³)` sequential operations);
//! * [`SemiMatrix::square_step`] — one min-plus "path doubling" step
//!   `A ← A ⊕ A⊗A` (Algorithm 4.3 step ii(1)).
//!
//! Both are **cache-blocked** (see DESIGN.md §8): `floyd_warshall` runs an
//! order-preserving k-tiled schedule (full-matrix sweeps drop from `n` to
//! `n / TILE`), and `square_step` multiplies against a packed transpose of
//! `A` so the inner loop is two contiguous streams, double-buffered into a
//! persistent scratch owned by the matrix (no per-call `clone()`).
//!
//! The blocking is *not* the textbook three-phase blocked FW: that variant
//! closes panels before outer tiles, which re-associates path-weight sums
//! and under `f64` min-plus can change result bits. Instead every cell here
//! sees exactly the naive kernel's candidate sequence (`k` ascending, same
//! operands, same `0̄` skip, `combine(old, cand)` with `old` first), so
//! blocked and naive outputs are **bit-identical at every thread count** —
//! the retained [`SemiMatrix::floyd_warshall_naive`] /
//! [`SemiMatrix::square_step_naive`] reference kernels and the testkit
//! differential suite enforce this.
//!
//! Both kernels report an honest [`KernelOutcome`]: `ops` counts the
//! combine/extend pairs actually executed (the `0̄`-row skip is real work
//! saved, not hidden), and `changed` reflects whether any entry improved.
//! Callers charge the PRAM cost model from `ops`. The diagonal check for an
//! **absorbing cycle** (negative cycle under the tropical semiring) hooks
//! into the paper's comment (i) negative-cycle detection.

use crate::semiring::Semiring;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Edge length of the `k`-tile used by the blocked Floyd–Warshall and the
/// row-tile granularity of `square_step` change flags.
pub const TILE: usize = 32;
/// Rows per parallel task in the blocked FW outer phase: coarse enough to
/// amortize scheduling, fine enough to load-balance.
const FW_ROWCHUNK: usize = 8;
/// Column-block width of the FW outer phase: with pivots outermost, one
/// `FW_ROWCHUNK × FW_JBLOCK` row block (8 KiB of `f64`) plus one panel
/// segment (1 KiB) stay L1-resident across all of a tile's pivots.
const FW_JBLOCK: usize = 128;
/// Minimum order before `floyd_warshall` fans rows out to the pool.
const PAR_FW_MIN_N: usize = 128;
/// Minimum order before `square_step` fans row-tiles out to the pool.
const PAR_SQ_MIN_N: usize = 64;

/// Outcome of a dense kernel: primitive operation count and whether some
/// diagonal entry strictly improved on the empty path (an absorbing
/// cycle).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelOutcome {
    /// Inner-loop combine/extend pairs actually executed (skipped `0̄`
    /// rows are not counted).
    pub ops: u64,
    /// `true` if an absorbing (e.g. negative) cycle was detected.
    pub absorbing_cycle: bool,
    /// `true` if any entry changed relative to the input matrix.
    pub changed: bool,
}

/// A dense `n × n` matrix of semiring weights, row-major.
///
/// Owns persistent scratch buffers (double-buffer target, packed
/// transpose, per-row-tile change flags) so repeated kernel calls on the
/// same matrix allocate nothing in steady state. `Clone` copies only the
/// payload; the clone starts with empty scratch.
#[derive(Debug)]
pub struct SemiMatrix<S: Semiring> {
    n: usize,
    data: Vec<S::W>,
    /// Double-buffer target for `square_step` / panel snapshots for
    /// `floyd_warshall`. Contents are meaningless between calls.
    scratch: Vec<S::W>,
    /// Packed transpose of `data` built by `square_step`.
    transpose: Vec<S::W>,
    /// Per-row-tile change flags from the *last* `square_step` (empty =
    /// unknown). Lets the next `square_step` of a doubling sequence skip
    /// candidate `k` ranges that provably cannot improve anything.
    tile_changed: Vec<bool>,
    _marker: std::marker::PhantomData<S>,
}

impl<S: Semiring> Clone for SemiMatrix<S> {
    fn clone(&self) -> Self {
        SemiMatrix {
            n: self.n,
            data: self.data.clone(),
            scratch: Vec::new(),
            transpose: Vec::new(),
            tile_changed: self.tile_changed.clone(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// `dst[j] ← combine(dst[j], extend(dik, src[j]))` over a block; returns
/// whether any entry changed. Shared by the naive and blocked kernels so
/// their per-cell operation is literally the same code.
#[inline]
fn relax_block<S: Semiring>(dst: &mut [S::W], dik: S::W, src: &[S::W]) -> bool {
    let mut any = false;
    for (c, &s) in dst.iter_mut().zip(src) {
        let cur = *c;
        let merged = S::combine(cur, S::extend(dik, s));
        any |= merged != cur;
        *c = merged;
    }
    any
}

impl<S: Semiring> SemiMatrix<S> {
    /// Matrix of all-`0̄` (no paths), with `1̄` on the diagonal (empty
    /// paths).
    pub fn identity(n: usize) -> Self {
        let mut m = Self::empty(n);
        for i in 0..n {
            m.data[i * n + i] = S::one();
        }
        m
    }

    /// Wrap an existing row-major payload (length `n²`) without copying.
    pub fn from_flat(n: usize, data: Vec<S::W>) -> Self {
        assert_eq!(data.len(), n * n, "payload must be n×n");
        SemiMatrix {
            n,
            data,
            scratch: Vec::new(),
            transpose: Vec::new(),
            tile_changed: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Matrix of all-`0̄`, including the diagonal.
    pub fn empty(n: usize) -> Self {
        SemiMatrix {
            n,
            data: vec![S::zero(); n * n],
            scratch: Vec::new(),
            transpose: Vec::new(),
            tile_changed: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Reshape to an `n × n` identity, reusing the existing allocations.
    pub fn reset_identity(&mut self, n: usize) {
        self.reset_empty(n);
        for i in 0..n {
            self.data[i * n + i] = S::one();
        }
    }

    /// Reshape to an `n × n` all-`0̄` matrix, reusing the existing
    /// allocations.
    pub fn reset_empty(&mut self, n: usize) {
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, S::zero());
        self.tile_changed.clear();
    }

    /// Order of the matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Read entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> S::W {
        self.data[i * self.n + j]
    }

    /// Write entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, w: S::W) {
        self.data[i * self.n + j] = w;
        self.tile_changed.clear();
    }

    /// `combine` `w` into entry `(i, j)` (keep the better of old and new).
    #[inline]
    pub fn relax(&mut self, i: usize, j: usize, w: S::W) {
        let e = &mut self.data[i * self.n + j];
        *e = S::combine(*e, w);
        self.tile_changed.clear();
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[S::W] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// The whole payload, row-major (tests compare kernel outputs bit for
    /// bit through this).
    pub fn data(&self) -> &[S::W] {
        &self.data
    }

    /// Bytes held by the payload and scratch buffers (capacity, not len) —
    /// feeds the workspace peak-memory accounting.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<S::W>()
            * (self.data.capacity() + self.scratch.capacity() + self.transpose.capacity())
            + self.tile_changed.capacity()
    }

    /// In-place Floyd–Warshall. Diagonal should start at `1̄` (use
    /// [`SemiMatrix::identity`] + `relax` of the edges).
    ///
    /// Cache-blocked over `k`-tiles of [`TILE`]: for each tile the tile's
    /// own rows are closed sequentially (snapshotting each row `k` at its
    /// pre-step state into a panel), then all other rows apply the whole
    /// tile in one parallel sweep, reading their `d(i,k)` pivots in `k`
    /// order exactly as the naive kernel would. Per-cell candidate order is
    /// identical to [`SemiMatrix::floyd_warshall_naive`], so the result is
    /// bit-identical at every thread count; the win is `n/TILE` full-matrix
    /// sweeps instead of `n`, plus an L1-blocked inner loop.
    pub fn floyd_warshall(&mut self) -> KernelOutcome {
        let n = self.n;
        if n == 0 {
            return KernelOutcome::default();
        }
        self.tile_changed.clear();
        let tile = TILE.min(n);
        let mut panel = std::mem::take(&mut self.scratch);
        panel.clear();
        panel.resize(tile * n, S::zero());
        let ops = AtomicU64::new(0);
        let changed = AtomicBool::new(false);

        let mut t0 = 0usize;
        while t0 < n {
            let t1 = (t0 + tile).min(n);
            let tb = t1 - t0;

            // Phase 1 — tile rows, sequential, naive order. Row `k` is
            // snapshotted at its pre-step-`k` state, which is exactly what
            // the naive kernel's per-`k` row copy holds (step `k` may
            // change row `k` itself when the diagonal is absorbing, so the
            // snapshot, not the live row, is the operand both schedules
            // must read).
            for k in t0..t1 {
                let pk = k - t0;
                panel[pk * n..pk * n + n].copy_from_slice(&self.data[k * n..k * n + n]);
                let mut ops1 = 0u64;
                let mut ch1 = false;
                for r in t0..t1 {
                    let row = &mut self.data[r * n..r * n + n];
                    let drk = row[k];
                    if S::is_zero(drk) {
                        continue;
                    }
                    ops1 += n as u64;
                    ch1 |= relax_block::<S>(row, drk, &panel[pk * n..pk * n + n]);
                }
                ops.fetch_add(ops1, Ordering::Relaxed);
                if ch1 {
                    changed.store(true, Ordering::Relaxed);
                }
            }

            // Phase 2 — all rows outside the tile apply pivots
            // k = t0..t1 in ascending order. Pass A sweeps the tile's own
            // columns first, reading each `d(i,k)` *after* pivots < k have
            // been applied to it (naive order) and latching it; pass B
            // replays the latched pivots over the remaining columns in
            // L1-sized blocks.
            let outer_chunk = |ci: usize, chunk: &mut [S::W]| -> (u64, bool) {
                let base_row = ci * FW_ROWCHUNK;
                let mut diks = [[S::zero(); TILE]; FW_ROWCHUNK];
                let mut o = 0u64;
                let mut ch = false;
                for (ri, row) in chunk.chunks_mut(n).enumerate() {
                    let i = base_row + ri;
                    if i >= t0 && i < t1 {
                        continue;
                    }
                    for k in t0..t1 {
                        let pk = k - t0;
                        let dik = row[k];
                        diks[ri][pk] = dik;
                        if S::is_zero(dik) {
                            continue;
                        }
                        o += tb as u64;
                        ch |= relax_block::<S>(
                            &mut row[t0..t1],
                            dik,
                            &panel[pk * n + t0..pk * n + t1],
                        );
                    }
                }
                let mut jb0 = 0usize;
                while jb0 < n {
                    let jb1 = (jb0 + FW_JBLOCK).min(n);
                    // Split the block around the tile's columns (already
                    // done in pass A). Pivots run *outside* the row loop
                    // so each panel segment is read once per chunk rather
                    // than once per row; per cell the pivots still arrive
                    // in ascending `k` order, so the candidate sequence —
                    // and hence every bit — matches the naive schedule.
                    for (s0, s1) in [(jb0, jb1.min(t0)), (jb0.max(t1), jb1)] {
                        if s0 >= s1 {
                            continue;
                        }
                        for pk in 0..tb {
                            let prow = &panel[pk * n + s0..pk * n + s1];
                            for (ri, row) in chunk.chunks_mut(n).enumerate() {
                                let i = base_row + ri;
                                if i >= t0 && i < t1 {
                                    continue;
                                }
                                let dik = diks[ri][pk];
                                if S::is_zero(dik) {
                                    continue;
                                }
                                o += (s1 - s0) as u64;
                                ch |= relax_block::<S>(&mut row[s0..s1], dik, prow);
                            }
                        }
                    }
                    jb0 = jb1;
                }
                (o, ch)
            };

            if n >= PAR_FW_MIN_N {
                self.data
                    .par_chunks_mut(n * FW_ROWCHUNK)
                    .enumerate()
                    .for_each(|(ci, chunk)| {
                        let (o, c) = outer_chunk(ci, chunk);
                        ops.fetch_add(o, Ordering::Relaxed);
                        if c {
                            changed.store(true, Ordering::Relaxed);
                        }
                    });
            } else {
                for (ci, chunk) in self.data.chunks_mut(n * FW_ROWCHUNK).enumerate() {
                    let (o, c) = outer_chunk(ci, chunk);
                    ops.fetch_add(o, Ordering::Relaxed);
                    if c {
                        changed.store(true, Ordering::Relaxed);
                    }
                }
            }
            t0 = t1;
        }

        self.scratch = panel;
        let absorbing = (0..n).any(|i| S::better(self.get(i, i), S::one()));
        KernelOutcome {
            ops: ops.into_inner(),
            absorbing_cycle: absorbing,
            changed: changed.into_inner(),
        }
    }

    /// The pre-blocking Floyd–Warshall, retained as the bit-identity
    /// reference and the bench baseline (it keeps the seed's per-`k`
    /// `row_k` copy so the measured speedup is against the real former
    /// kernel, with accounting made honest).
    pub fn floyd_warshall_naive(&mut self) -> KernelOutcome {
        let n = self.n;
        if n == 0 {
            return KernelOutcome::default();
        }
        self.tile_changed.clear();
        let ops = AtomicU64::new(0);
        let changed = AtomicBool::new(false);
        for k in 0..n {
            // Split out row k so rows can be updated in parallel without
            // aliasing it.
            let row_k = self.row(k).to_vec();
            let process_row = |row_i: &mut [S::W]| {
                let dik = row_i[k];
                if S::is_zero(dik) {
                    return;
                }
                ops.fetch_add(n as u64, Ordering::Relaxed);
                if relax_block::<S>(row_i, dik, &row_k) {
                    changed.store(true, Ordering::Relaxed);
                }
            };
            if n >= PAR_FW_MIN_N {
                self.data
                    .par_chunks_mut(n)
                    .for_each(process_row);
            } else {
                for i in 0..n {
                    process_row(&mut self.data[i * n..(i + 1) * n]);
                }
            }
        }
        let absorbing = (0..n).any(|i| S::better(self.get(i, i), S::one()));
        KernelOutcome {
            ops: ops.into_inner(),
            absorbing_cycle: absorbing,
            changed: changed.into_inner(),
        }
    }

    /// One path-doubling step `A ← A ⊕ (A ⊗ A)`; reports whether anything
    /// changed (Algorithm 4.3's iteration can stop early when no node
    /// changes).
    ///
    /// The product reads a packed transpose of `A` so both inner streams
    /// are contiguous, and writes into the persistent double-buffer
    /// scratch (no full-matrix `clone`). Change is tracked per row-tile of
    /// [`TILE`] rows; inside a doubling sequence, rows whose tile did not
    /// change last step only need to rescan candidate `k` ranges from
    /// tiles that *did* change — for a selective semiring every skipped
    /// candidate was already folded into the current entry with identical
    /// bits, so the pruned step stays bit-identical to the naive one (see
    /// DESIGN.md §8 for the argument).
    pub fn square_step(&mut self) -> KernelOutcome {
        let n = self.n;
        if n == 0 {
            return KernelOutcome::default();
        }
        let n_tiles = n.div_ceil(TILE);

        let mut tbuf = std::mem::take(&mut self.transpose);
        tbuf.clear();
        tbuf.resize(n * n, S::zero());
        pack_transpose::<S>(&self.data, &mut tbuf, n);

        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        out.resize(n * n, S::zero());

        let hint: Option<&[bool]> = if S::is_selective() && self.tile_changed.len() == n_tiles {
            Some(&self.tile_changed)
        } else {
            None
        };
        let new_flags: Vec<AtomicBool> = (0..n_tiles).map(|_| AtomicBool::new(false)).collect();
        let ops = AtomicU64::new(0);
        let data = &self.data;
        let tb = &tbuf;

        let process_tile = |ti: usize, rows: &mut [S::W]| {
            let full = hint.is_none_or(|h| h[ti]);
            let mut o = 0u64;
            let mut ch = false;
            for (ri, out_row) in rows.chunks_mut(n).enumerate() {
                let i = ti * TILE + ri;
                let a = &data[i * n..(i + 1) * n];
                for (j, slot) in out_row.iter_mut().enumerate() {
                    let tj = &tb[j * n..(j + 1) * n];
                    let mut acc = a[j];
                    if full {
                        for (&ik, &tk) in a.iter().zip(tj) {
                            if S::is_zero(ik) {
                                continue;
                            }
                            o += 1;
                            acc = S::combine(acc, S::extend(ik, tk));
                        }
                    } else if let Some(h) = hint {
                        // Only `k` in row-tiles that changed last step can
                        // contribute a candidate not already folded in.
                        for (kt, &chg) in h.iter().enumerate() {
                            if !chg {
                                continue;
                            }
                            let k0 = kt * TILE;
                            let k1 = (k0 + TILE).min(n);
                            for (&ik, &tk) in a[k0..k1].iter().zip(&tj[k0..k1]) {
                                if S::is_zero(ik) {
                                    continue;
                                }
                                o += 1;
                                acc = S::combine(acc, S::extend(ik, tk));
                            }
                        }
                    }
                    ch |= acc != a[j];
                    *slot = acc;
                }
            }
            ops.fetch_add(o, Ordering::Relaxed);
            if ch {
                new_flags[ti].store(true, Ordering::Relaxed);
            }
        };

        if n >= PAR_SQ_MIN_N {
            out.par_chunks_mut(n * TILE)
                .enumerate()
                .for_each(|(ti, rows)| process_tile(ti, rows));
        } else {
            for (ti, rows) in out.chunks_mut(n * TILE).enumerate() {
                process_tile(ti, rows);
            }
        }

        let old = std::mem::replace(&mut self.data, out);
        self.scratch = old;
        self.transpose = tbuf;
        self.tile_changed.clear();
        self.tile_changed
            .extend(new_flags.iter().map(|f| f.load(Ordering::Relaxed)));
        let changed = self.tile_changed.iter().any(|&c| c);

        let absorbing = (0..n).any(|i| S::better(self.get(i, i), S::one()));
        KernelOutcome {
            ops: ops.into_inner(),
            absorbing_cycle: absorbing,
            changed,
        }
    }

    /// The pre-blocking `square_step`, retained as the bit-identity
    /// reference and bench baseline: full-matrix `clone`, strided
    /// `old[k*n + j]` reads, no change-flag pruning; accounting made
    /// honest.
    pub fn square_step_naive(&mut self) -> KernelOutcome {
        let n = self.n;
        if n == 0 {
            return KernelOutcome::default();
        }
        self.tile_changed.clear();
        let old = self.data.clone();
        let ops = AtomicU64::new(0);
        let changed = AtomicBool::new(false);
        let body = |i: usize, row_i: &mut [S::W]| {
            let mut local_change = false;
            let mut o = 0u64;
            for j in 0..n {
                let mut acc = row_i[j];
                for k in 0..n {
                    let ik = old[i * n + k];
                    if S::is_zero(ik) {
                        continue;
                    }
                    o += 1;
                    acc = S::combine(acc, S::extend(ik, old[k * n + j]));
                }
                if acc != row_i[j] {
                    row_i[j] = acc;
                    local_change = true;
                }
            }
            ops.fetch_add(o, Ordering::Relaxed);
            if local_change {
                changed.store(true, Ordering::Relaxed);
            }
        };
        if n >= PAR_SQ_MIN_N {
            self.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row_i)| body(i, row_i));
        } else {
            let mut data = std::mem::take(&mut self.data);
            for i in 0..n {
                body(i, &mut data[i * n..(i + 1) * n]);
            }
            self.data = data;
        }
        let absorbing = (0..n).any(|i| S::better(self.get(i, i), S::one()));
        KernelOutcome {
            ops: ops.into_inner(),
            absorbing_cycle: absorbing,
            changed: changed.into_inner(),
        }
    }

    /// All-pairs path weights by repeated squaring: `⌈log₂ n⌉` doubling
    /// steps (the classic `Õ(n³)` "transitive-closure bottleneck"
    /// algorithm the paper's introduction contrasts against). Later steps
    /// are pruned by the per-tile change flags of earlier ones.
    pub fn repeated_squaring(&mut self) -> KernelOutcome {
        let mut total = KernelOutcome::default();
        let mut span = 1usize;
        while span < self.n.max(1) {
            let out = self.square_step();
            total.ops += out.ops;
            total.absorbing_cycle |= out.absorbing_cycle;
            total.changed |= out.changed;
            span *= 2;
            if !out.changed {
                break;
            }
        }
        total
    }
}

/// Pack `dst[j*n + i] = src[i*n + j]` with square blocking so both sides
/// stay cache-resident.
fn pack_transpose<S: Semiring>(src: &[S::W], dst: &mut [S::W], n: usize) {
    for i0 in (0..n).step_by(TILE) {
        let i1 = (i0 + TILE).min(n);
        for j0 in (0..n).step_by(TILE) {
            let j1 = (j0 + TILE).min(n);
            for i in i0..i1 {
                let row = &src[i * n..(i + 1) * n];
                for j in j0..j1 {
                    dst[j * n + i] = row[j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{Boolean, Tropical};

    fn sample() -> SemiMatrix<Tropical> {
        // 0 →(1) 1 →(2) 2, 0 →(10) 2, 2 →(1) 3.
        let mut m = SemiMatrix::<Tropical>::identity(4);
        m.relax(0, 1, 1.0);
        m.relax(1, 2, 2.0);
        m.relax(0, 2, 10.0);
        m.relax(2, 3, 1.0);
        m
    }

    /// Deterministic pseudo-random matrix with `0̄` holes and negative
    /// weights, order `n`.
    fn random_matrix(n: usize, seed: u64) -> SemiMatrix<Tropical> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut m = SemiMatrix::<Tropical>::identity(n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let r = next();
                if r % 4 == 0 {
                    continue; // leave a 0̄ hole
                }
                // Weights in [0.5, 8.5); keep them positive so random
                // instances stay free of absorbing cycles (signed weights
                // are covered by the dedicated cycle tests).
                let w = 0.5 + (r % 1024) as f64 / 128.0;
                m.set(i, j, w);
            }
        }
        m
    }

    fn assert_bits_equal(a: &SemiMatrix<Tropical>, b: &SemiMatrix<Tropical>, context: &str) {
        assert_eq!(a.n(), b.n(), "{context}: order");
        for (idx, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: cell {} ({x} vs {y})",
                idx
            );
        }
    }

    #[test]
    fn floyd_warshall_shortest_paths() {
        let mut m = sample();
        let out = m.floyd_warshall();
        assert!(!out.absorbing_cycle);
        assert!(out.changed);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(0, 3), 4.0);
        assert_eq!(m.get(3, 0), f64::INFINITY);
        assert_eq!(m.get(1, 1), 0.0);
        // Honest accounting: ops must equal the naive reference's count
        // (same pivots executed, same `0̄` skips), not n³.
        let naive = sample().floyd_warshall_naive();
        assert_eq!(out.ops, naive.ops);
        assert!(out.ops > 0);
        assert!(out.ops < 64, "the 0̄ skip must be visible in the count");
    }

    #[test]
    fn kernels_report_no_change_on_fixpoint() {
        let mut m = sample();
        m.floyd_warshall();
        let again = m.floyd_warshall();
        assert!(!again.changed, "closure is a fixpoint");
        let sq = m.square_step();
        assert!(!sq.changed);
        let sq_naive = m.square_step_naive();
        assert!(!sq_naive.changed);
    }

    #[test]
    fn blocked_fw_bit_identical_to_naive_across_tile_boundaries() {
        for n in [1, TILE - 1, TILE, TILE + 1, 3 * TILE + 5] {
            let base = random_matrix(n, 42 + n as u64);
            let mut blocked = base.clone();
            let mut naive = base.clone();
            let ob = blocked.floyd_warshall();
            let on = naive.floyd_warshall_naive();
            assert_bits_equal(&blocked, &naive, &format!("fw n={n}"));
            assert_eq!(ob.ops, on.ops, "fw ops n={n}");
            assert_eq!(ob.changed, on.changed, "fw changed n={n}");
            assert_eq!(ob.absorbing_cycle, on.absorbing_cycle, "fw cycle n={n}");
        }
    }

    #[test]
    fn blocked_square_bit_identical_to_naive_across_tile_boundaries() {
        for n in [1, TILE - 1, TILE, TILE + 1, 3 * TILE + 5] {
            let base = random_matrix(n, 7 + n as u64);
            let mut blocked = base.clone();
            let mut naive = base.clone();
            let ob = blocked.square_step();
            let on = naive.square_step_naive();
            assert_bits_equal(&blocked, &naive, &format!("square n={n}"));
            assert_eq!(ob.ops, on.ops, "square ops n={n}");
            assert_eq!(ob.changed, on.changed, "square changed n={n}");
        }
    }

    #[test]
    fn pruned_doubling_sequence_matches_naive_sequence() {
        // Drive both kernels to the closure fixpoint; the blocked side
        // prunes later steps with per-tile change flags, which must not
        // change a single bit.
        for n in [TILE + 3, 2 * TILE, 3 * TILE + 5] {
            let base = random_matrix(n, 1000 + n as u64);
            let mut blocked = base.clone();
            let mut naive = base.clone();
            loop {
                let ob = blocked.square_step();
                let on = naive.square_step_naive();
                assert_eq!(ob.changed, on.changed, "changed diverged at n={n}");
                if !on.changed {
                    break;
                }
            }
            assert_bits_equal(&blocked, &naive, &format!("doubling sequence n={n}"));
        }
    }

    #[test]
    fn blocked_kernels_bit_identical_across_thread_counts() {
        // Past PAR_FW_MIN_N so the pool actually fans out.
        let n = 5 * TILE;
        let base = random_matrix(n, 99);
        let reference = {
            let mut m = base.clone();
            rayon::with_max_threads(1, || m.floyd_warshall());
            m
        };
        for threads in [1usize, 2, 4, 8] {
            let mut m = base.clone();
            rayon::with_max_threads(threads, || m.floyd_warshall());
            assert_bits_equal(&reference, &m, &format!("fw at {threads} threads"));
            let mut sq = base.clone();
            let mut sq_ref = base.clone();
            rayon::with_max_threads(threads, || sq.repeated_squaring());
            rayon::with_max_threads(1, || sq_ref.repeated_squaring());
            assert_bits_equal(&sq_ref, &sq, &format!("squaring at {threads} threads"));
        }
    }

    #[test]
    fn reset_reuses_buffers_without_state_leaks() {
        let mut m = random_matrix(3 * TILE + 5, 5);
        m.floyd_warshall();
        m.square_step();
        let cap_before = m.data.capacity();
        m.reset_identity(TILE + 1);
        let mut fresh = SemiMatrix::<Tropical>::identity(TILE + 1);
        assert_bits_equal(&fresh, &m, "reset_identity");
        assert!(m.data.capacity() >= cap_before.min((TILE + 1) * (TILE + 1)));
        // A dirtied-then-reset matrix must behave exactly like a fresh one.
        for (i, j, w) in [(0, 1, 2.0), (1, 2, 0.5), (2, 0, 4.0)] {
            m.relax(i, j, w);
            fresh.relax(i, j, w);
        }
        let om = m.floyd_warshall();
        let of = fresh.floyd_warshall();
        assert_bits_equal(&fresh, &m, "post-reset closure");
        assert_eq!(om, of);
    }

    #[test]
    fn repeated_squaring_matches_floyd_warshall() {
        let mut a = sample();
        let mut b = sample();
        a.floyd_warshall();
        b.repeated_squaring();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(a.get(i, j), b.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn negative_cycle_detected() {
        let mut m = SemiMatrix::<Tropical>::identity(3);
        m.relax(0, 1, 1.0);
        m.relax(1, 2, -3.0);
        m.relax(2, 0, 1.0);
        let out = m.floyd_warshall();
        assert!(out.absorbing_cycle);
        let mut m = SemiMatrix::<Tropical>::identity(3);
        m.relax(0, 1, 1.0);
        m.relax(1, 2, -3.0);
        m.relax(2, 0, 1.0);
        let out = m.repeated_squaring();
        assert!(out.absorbing_cycle);
    }

    #[test]
    fn zero_weight_cycle_is_not_absorbing() {
        let mut m = SemiMatrix::<Tropical>::identity(2);
        m.relax(0, 1, 2.0);
        m.relax(1, 0, -2.0);
        let out = m.floyd_warshall();
        assert!(!out.absorbing_cycle);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn boolean_closure_via_squaring() {
        let mut m = SemiMatrix::<Boolean>::identity(5);
        for i in 0..4 {
            m.relax(i, i + 1, true);
        }
        m.repeated_squaring();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(m.get(i, j), j >= i);
            }
        }
    }

    #[test]
    fn parallel_paths_take_better() {
        let mut m = SemiMatrix::<Tropical>::identity(2);
        m.relax(0, 1, 5.0);
        m.relax(0, 1, 3.0);
        assert_eq!(m.get(0, 1), 3.0);
    }

    #[test]
    fn large_matrix_parallel_path() {
        // Exercise the rayon branch (n ≥ 128): a directed ring.
        let n = 130;
        let mut m = SemiMatrix::<Tropical>::identity(n);
        for i in 0..n {
            m.relax(i, (i + 1) % n, 1.0);
        }
        let out = m.floyd_warshall();
        assert!(!out.absorbing_cycle);
        assert_eq!(m.get(0, n - 1), (n - 1) as f64);
        assert_eq!(m.get(5, 4), (n - 1) as f64);
        let mut naive = SemiMatrix::<Tropical>::identity(n);
        for i in 0..n {
            naive.relax(i, (i + 1) % n, 1.0);
        }
        naive.floyd_warshall_naive();
        assert_bits_equal(&naive, &m, "ring fw");
    }
}
