//! Union–find with path halving and union by size. Used by separator
//! builders to track components of `G(t) \ S(t)` and by validators.

/// Disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `v`'s set (path halving).
    pub fn find(&mut self, mut v: usize) -> usize {
        while self.parent[v] as usize != v {
            let grand = self.parent[self.parent[v] as usize];
            self.parent[v] = grand;
            v = grand as usize;
        }
        v
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `v`.
    pub fn set_size(&mut self, v: usize) -> usize {
        let r = self.find(v);
        self.size[r] as usize
    }

    /// Number of disjoint sets remaining.
    pub fn components(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.components(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        assert_eq!(uf.set_size(1), 3);
        assert_eq!(uf.set_size(4), 1);
    }

    #[test]
    fn chain_of_unions_collapses() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for v in 1..n {
            uf.union(v - 1, v);
        }
        assert_eq!(uf.components(), 1);
        assert_eq!(uf.set_size(0), n);
        assert!(uf.same(0, n - 1));
    }
}
