//! Vertex permutations mapping logical locality onto memory locality.
//!
//! In the style of rust_road_router's `NodeOrder`, a [`NodeOrder`] is a
//! bijection between *vertex ids* (the input labelling) and *ranks*
//! (positions in a preferred processing/storage order). The separator
//! pipeline derives one from the separator tree
//! (`spsep_separator::separator_locality_order`): vertices owned by the
//! same tree node — and tree nodes adjacent in DFS preorder — get
//! adjacent ranks, so the per-level relaxation buckets of the Section
//! 3.2 schedule touch memory in near-sequential order instead of
//! hopping across the id space.
//!
//! The order is *advisory*: it changes the order in which independent
//! per-target groups are laid out and processed, never the combine
//! order within a target, so query answers stay bit-identical (see
//! `spsep_core::schedule`).

use crate::digraph::{DiGraph, Edge};
use crate::error::SpsepError;
use crate::slab::Store;

/// A bijection between vertex ids and ranks (`rank ∘ node = id`).
#[derive(Clone, Debug)]
pub struct NodeOrder {
    /// `rank[v]` = position of vertex `v` in the order.
    node_to_rank: Store<u32>,
    /// `node[r]` = vertex at position `r` (inverse of `node_to_rank`).
    rank_to_node: Store<u32>,
}

impl NodeOrder {
    /// The identity order on `n` vertices.
    pub fn identity(n: usize) -> NodeOrder {
        let ids: Vec<u32> = (0..n as u32).collect();
        NodeOrder {
            node_to_rank: ids.clone().into(),
            rank_to_node: ids.into(),
        }
    }

    /// Build from `rank[v]` (vertex → position). Fails with a typed
    /// error unless `rank` is a permutation of `0..len`.
    pub fn from_rank(rank: Vec<u32>) -> Result<NodeOrder, SpsepError> {
        let node = invert_permutation(&rank)?;
        Ok(NodeOrder {
            node_to_rank: rank.into(),
            rank_to_node: node.into(),
        })
    }

    /// Build from `node[r]` (position → vertex), e.g. a DFS visit
    /// sequence. Fails with a typed error unless it is a permutation.
    pub fn from_sequence(node: Vec<u32>) -> Result<NodeOrder, SpsepError> {
        let rank = invert_permutation(&node)?;
        Ok(NodeOrder {
            node_to_rank: rank.into(),
            rank_to_node: node.into(),
        })
    }

    /// Reconstitute from two pre-validated snapshot slabs. Fails when
    /// the two are not mutually inverse permutations.
    pub fn from_parts(rank: Store<u32>, node: Store<u32>) -> Result<NodeOrder, SpsepError> {
        if rank.len() != node.len() {
            return Err(SpsepError::parse("node order: rank/node length mismatch"));
        }
        let n = rank.len();
        for (v, &r) in rank.iter().enumerate() {
            let ok = (r as usize) < n && node[r as usize] as usize == v;
            if !ok {
                return Err(SpsepError::parse(format!(
                    "node order: rank[{v}] = {r} is not inverted by the node array"
                )));
            }
        }
        Ok(NodeOrder {
            node_to_rank: rank,
            rank_to_node: node,
        })
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.node_to_rank.len()
    }

    /// Whether the order is over zero vertices.
    pub fn is_empty(&self) -> bool {
        self.node_to_rank.len() == 0
    }

    /// Position of vertex `v` in the order.
    #[inline]
    pub fn rank(&self, v: u32) -> u32 {
        self.node_to_rank[v as usize]
    }

    /// Vertex at position `r`.
    #[inline]
    pub fn node(&self, r: u32) -> u32 {
        self.rank_to_node[r as usize]
    }

    /// The full `rank[v]` array.
    #[inline]
    pub fn ranks(&self) -> &[u32] {
        &self.node_to_rank
    }

    /// The full `node[r]` array.
    #[inline]
    pub fn nodes(&self) -> &[u32] {
        &self.rank_to_node
    }

    /// The inverse order (swaps the roles of rank and node). Applying
    /// an order and then its inverse is the identity.
    pub fn inverse(&self) -> NodeOrder {
        NodeOrder {
            node_to_rank: self.rank_to_node.clone(),
            rank_to_node: self.node_to_rank.clone(),
        }
    }

    /// Relabel every vertex of `g` by its rank, keeping the edge list
    /// order (so degree multisets are preserved and
    /// `permute(inverse(permute(g)))` restores `g` exactly).
    ///
    /// # Panics
    /// Panics if `g.n() != self.len()` (programmer error, not input).
    pub fn permute_graph<W: Copy>(&self, g: &DiGraph<W>) -> DiGraph<W> {
        assert_eq!(g.n(), self.len(), "order/graph size mismatch");
        let edges: Vec<Edge<W>> = g
            .edges()
            .iter()
            .map(|e| Edge {
                from: self.rank(e.from),
                to: self.rank(e.to),
                w: e.w,
            })
            .collect();
        DiGraph::from_edges(g.n(), edges)
    }
}

/// Invert a permutation of `0..p.len()`, with typed errors for
/// out-of-range or duplicate entries.
fn invert_permutation(p: &[u32]) -> Result<Vec<u32>, SpsepError> {
    let n = p.len();
    let mut inv = vec![u32::MAX; n];
    for (i, &v) in p.iter().enumerate() {
        if v as usize >= n {
            return Err(SpsepError::parse(format!(
                "permutation entry {v} out of range for {n} vertices"
            )));
        }
        if inv[v as usize] != u32::MAX {
            return Err(SpsepError::parse(format!(
                "duplicate permutation entry {v}"
            )));
        }
        inv[v as usize] = i as u32;
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_its_own_inverse() {
        let o = NodeOrder::identity(5);
        for v in 0..5u32 {
            assert_eq!(o.rank(v), v);
            assert_eq!(o.node(v), v);
        }
        let inv = o.inverse();
        for v in 0..5u32 {
            assert_eq!(inv.rank(v), v);
        }
    }

    #[test]
    fn from_rank_and_sequence_agree() {
        // rank = [2,0,1] means vertex 0 sits at position 2.
        let o = NodeOrder::from_rank(vec![2, 0, 1]).unwrap();
        assert_eq!(o.nodes(), &[1, 2, 0]);
        let o2 = NodeOrder::from_sequence(vec![1, 2, 0]).unwrap();
        assert_eq!(o2.ranks(), &[2, 0, 1]);
        for v in 0..3u32 {
            assert_eq!(o.node(o.rank(v)), v);
            assert_eq!(o2.node(o2.rank(v)), v);
        }
    }

    #[test]
    fn invalid_permutations_are_typed_errors() {
        assert!(NodeOrder::from_rank(vec![0, 3]).is_err()); // out of range
        assert!(NodeOrder::from_rank(vec![1, 1]).is_err()); // duplicate
        assert!(NodeOrder::from_sequence(vec![0, 0]).is_err());
        let r: Store<u32> = vec![0u32, 1].into();
        let n: Store<u32> = vec![1u32, 0].into();
        assert!(NodeOrder::from_parts(r, n).is_err()); // not mutually inverse
    }

    #[test]
    fn permute_then_inverse_restores_graph() {
        let g = DiGraph::from_edges(
            4,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 3, 2.0),
                Edge::new(3, 0, -1.0),
                Edge::new(2, 2, 0.5),
            ],
        );
        let o = NodeOrder::from_rank(vec![3, 1, 0, 2]).unwrap();
        let p = o.permute_graph(&g);
        assert_eq!(p.m(), g.m());
        // Degree multiset preserved under relabelling.
        let mut d: Vec<usize> = (0..4).map(|v| g.out_degree(v)).collect();
        let mut dp: Vec<usize> = (0..4).map(|v| p.out_degree(v)).collect();
        d.sort_unstable();
        dp.sort_unstable();
        assert_eq!(d, dp);
        let back = o.inverse().permute_graph(&p);
        assert_eq!(back.edges(), g.edges());
    }
}
