//! Basic traversals: BFS, undirected components, Tarjan SCC, topological
//! order. Used by separator builders (BFS bisection), validators
//! (connectivity / separation checks), and reachability baselines.

use crate::digraph::DiGraph;
use std::collections::VecDeque;

/// BFS hop distances from `source` over *directed* edges; `u32::MAX` marks
/// unreachable vertices.
pub fn bfs_directed<W: Copy>(g: &DiGraph<W>, source: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v];
        for e in g.out_edges(v) {
            let u = e.to as usize;
            if dist[u] == u32::MAX {
                dist[u] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// BFS hop distances from `source` over an undirected adjacency structure
/// restricted to the vertices where `active` is true.
pub fn bfs_undirected_masked(
    adj: &[Vec<u32>],
    source: usize,
    active: &[bool],
) -> Vec<u32> {
    let mut dist = vec![u32::MAX; adj.len()];
    if !active[source] {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v];
        for &u in &adj[v] {
            let u = u as usize;
            if active[u] && dist[u] == u32::MAX {
                dist[u] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Component id (0-based, by discovery order) of every vertex of an
/// undirected adjacency structure.
pub fn undirected_components(adj: &[Vec<u32>]) -> Vec<u32> {
    let n = adj.len();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for s in 0..n {
        if comp[s] != u32::MAX {
            continue;
        }
        comp[s] = next;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &u in &adj[v] {
                let u = u as usize;
                if comp[u] == u32::MAX {
                    comp[u] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Strongly connected components (iterative Tarjan). Returns `(comp, k)`
/// where `comp[v]` is the component id of `v` in **reverse topological
/// order** (edges go from higher component ids to lower or equal), and `k`
/// is the number of components.
pub fn tarjan_scc<W: Copy>(g: &DiGraph<W>) -> (Vec<u32>, usize) {
    let n = g.n();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;
    // Explicit DFS frames: (vertex, next out-edge position).
    let mut frames: Vec<(u32, u32)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root as u32, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
            let v = v as usize;
            let out = g.out_edge_ids(v);
            if (*ei as usize) < out.len() {
                let e = g.edge(out[*ei as usize] as usize);
                *ei += 1;
                let u = e.to as usize;
                if index[u] == UNSET {
                    index[u] = next_index;
                    lowlink[u] = next_index;
                    next_index += 1;
                    stack.push(u as u32);
                    on_stack[u] = true;
                    frames.push((u as u32, 0));
                } else if on_stack[u] {
                    lowlink[v] = lowlink[v].min(index[u]);
                }
            } else {
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    let p = p as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    loop {
                        let Some(w) = stack.pop() else {
                            unreachable!("tarjan stack underflow")
                        };
                        let w = w as usize;
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    (comp, next_comp as usize)
}

/// Topological order of a DAG (`None` if the graph has a cycle).
pub fn topological_order<W: Copy>(g: &DiGraph<W>) -> Option<Vec<u32>> {
    let n = g.n();
    let mut indeg: Vec<u32> = (0..n).map(|v| g.in_degree(v) as u32).collect();
    let mut queue: VecDeque<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for e in g.out_edges(v as usize) {
            let u = e.to as usize;
            indeg[u] -= 1;
            if indeg[u] == 0 {
                queue.push_back(u as u32);
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::Edge;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5);
        let d = bfs_directed(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs_directed(&g, 2);
        assert_eq!(d, vec![u32::MAX, u32::MAX, 0, 1, 2]);
    }

    #[test]
    fn masked_bfs_respects_mask() {
        let g = generators::path(5).map_weights(|e| e.w);
        let adj = g.undirected_skeleton();
        let mut active = vec![true; 5];
        active[2] = false; // cut the path
        let d = bfs_undirected_masked(&adj, 0, &active);
        assert_eq!(d[1], 1);
        assert_eq!(d[3], u32::MAX);
    }

    #[test]
    fn components_of_disjoint_paths() {
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(2, 3, 1.0)];
        let g = crate::DiGraph::from_edges(5, edges);
        let comp = undirected_components(&g.undirected_skeleton());
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
        assert_ne!(comp[4], comp[2]);
    }

    #[test]
    fn scc_of_cycle_is_single() {
        let g = generators::cycle(6);
        let (comp, k) = tarjan_scc(&g);
        assert_eq!(k, 1);
        assert!(comp.iter().all(|&c| c == 0));
    }

    #[test]
    fn scc_of_dag_is_singletons_in_reverse_topo() {
        let g = generators::path(4);
        let (comp, k) = tarjan_scc(&g);
        assert_eq!(k, 4);
        // Edges must go from higher id to lower id (reverse topological).
        for e in g.edges() {
            assert!(comp[e.from as usize] > comp[e.to as usize]);
        }
    }

    #[test]
    fn scc_mixed() {
        // 0 <-> 1 cycle, 2 alone, 1 -> 2.
        let g = crate::DiGraph::from_edges(
            3,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 0, 1.0),
                Edge::new(1, 2, 1.0),
            ],
        );
        let (comp, k) = tarjan_scc(&g);
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[1]);
        assert!(comp[0] > comp[2]);
    }

    #[test]
    fn scc_random_graph_invariants() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::gnm(60, 150, &mut rng);
        let (comp, k) = tarjan_scc(&g);
        assert!((1..=60).contains(&k));
        // Condensation must be acyclic: every edge satisfies from-comp >= to-comp.
        for e in g.edges() {
            assert!(comp[e.from as usize] >= comp[e.to as usize]);
        }
    }

    #[test]
    fn topo_order_on_dag_and_cycle() {
        let mut rng = StdRng::seed_from_u64(12);
        let dag = generators::layered_dag(4, 5, 2, &mut rng);
        let order = topological_order(&dag).expect("layered DAG is acyclic");
        let mut pos = vec![0usize; dag.n()];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for e in dag.edges() {
            assert!(pos[e.from as usize] < pos[e.to as usize]);
        }
        assert!(topological_order(&generators::cycle(3)).is_none());
    }
}
