//! Compact weighted directed graphs with CSR adjacency in both directions.
//!
//! The paper's algorithms need three access patterns:
//!
//! * iterate edges *leaving* a vertex (augmentation, Dijkstra baseline);
//! * iterate edges *entering* a vertex (Bellman–Ford relaxation is defined
//!   in Section 3.2 as "scanning the edges entering v");
//! * slice out the subgraph induced by a vertex subset `V(t)` (per-node
//!   processing in Algorithm 4.1 and the leaf initialization of 4.3).
//!
//! [`DiGraph`] keeps the edge list plus two CSR indices (by source and by
//! target) referencing edge ids, so both directions cost one indirection
//! and subgraph extraction is a single pass.

/// A directed edge with weight `W`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Edge<W> {
    /// Source vertex.
    pub from: u32,
    /// Target vertex.
    pub to: u32,
    /// Edge weight (interpreted by a [`crate::Semiring`]).
    pub w: W,
}

impl<W> Edge<W> {
    /// Construct an edge from `from` to `to` with weight `w`.
    pub fn new(from: usize, to: usize, w: W) -> Self {
        Edge {
            from: from as u32,
            to: to as u32,
            w,
        }
    }
}

/// A directed graph over vertices `0..n` with weighted edges and CSR
/// adjacency by source and by target.
///
/// Parallel edges and self-loops are permitted (the augmentation
/// deliberately adds parallel shortcut edges; consumers `combine` them).
///
/// ```
/// use spsep_graph::{DiGraph, Edge};
///
/// let g = DiGraph::from_edges(3, vec![
///     Edge::new(0, 1, 2.5),
///     Edge::new(1, 2, 1.0),
/// ]);
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.out_degree(0), 1);
/// assert_eq!(g.in_edges(2).next().unwrap().from, 1);
/// ```
#[derive(Clone, Debug)]
pub struct DiGraph<W: Copy> {
    n: usize,
    edges: Vec<Edge<W>>,
    /// CSR by source: `out_adj[out_off[v]..out_off[v+1]]` are edge ids
    /// leaving `v`.
    out_off: Vec<u32>,
    out_adj: Vec<u32>,
    /// CSR by target: `in_adj[in_off[v]..in_off[v+1]]` are edge ids
    /// entering `v`.
    in_off: Vec<u32>,
    in_adj: Vec<u32>,
}

impl<W: Copy> DiGraph<W> {
    /// Build a graph on `n` vertices from an edge list.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: Vec<Edge<W>>) -> Self {
        let mut out_off = vec![0u32; n + 1];
        let mut in_off = vec![0u32; n + 1];
        for e in &edges {
            assert!((e.from as usize) < n, "edge source {} out of range", e.from);
            assert!((e.to as usize) < n, "edge target {} out of range", e.to);
            out_off[e.from as usize + 1] += 1;
            in_off[e.to as usize + 1] += 1;
        }
        for v in 0..n {
            out_off[v + 1] += out_off[v];
            in_off[v + 1] += in_off[v];
        }
        let mut out_adj = vec![0u32; edges.len()];
        let mut in_adj = vec![0u32; edges.len()];
        // Intentional clones: the scatter below advances these as write
        // cursors, one per row, while the originals survive untouched as
        // the CSR row starts.
        let mut out_cursor = out_off.clone();
        let mut in_cursor = in_off.clone();
        for (id, e) in edges.iter().enumerate() {
            let oc = &mut out_cursor[e.from as usize];
            out_adj[*oc as usize] = id as u32;
            *oc += 1;
            let ic = &mut in_cursor[e.to as usize];
            in_adj[*ic as usize] = id as u32;
            *ic += 1;
        }
        DiGraph {
            n,
            edges,
            out_off,
            out_adj,
            in_off,
            in_adj,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges (counting parallel edges).
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The full edge list, indexed by edge id.
    #[inline]
    pub fn edges(&self) -> &[Edge<W>] {
        &self.edges
    }

    /// The edge with id `id`.
    #[inline]
    pub fn edge(&self, id: usize) -> &Edge<W> {
        &self.edges[id]
    }

    /// Ids of edges leaving `v`.
    #[inline]
    pub fn out_edge_ids(&self, v: usize) -> &[u32] {
        &self.out_adj[self.out_off[v] as usize..self.out_off[v + 1] as usize]
    }

    /// Ids of edges entering `v`.
    #[inline]
    pub fn in_edge_ids(&self, v: usize) -> &[u32] {
        &self.in_adj[self.in_off[v] as usize..self.in_off[v + 1] as usize]
    }

    /// Edges leaving `v`.
    pub fn out_edges(&self, v: usize) -> impl Iterator<Item = &Edge<W>> + '_ {
        self.out_edge_ids(v).iter().map(move |&id| &self.edges[id as usize])
    }

    /// Edges entering `v`.
    pub fn in_edges(&self, v: usize) -> impl Iterator<Item = &Edge<W>> + '_ {
        self.in_edge_ids(v).iter().map(move |&id| &self.edges[id as usize])
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: usize) -> usize {
        (self.out_off[v + 1] - self.out_off[v]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: usize) -> usize {
        (self.in_off[v + 1] - self.in_off[v]) as usize
    }

    /// The graph with every edge reversed (weights preserved).
    pub fn reversed(&self) -> DiGraph<W> {
        let edges = self
            .edges
            .iter()
            .map(|e| Edge {
                from: e.to,
                to: e.from,
                w: e.w,
            })
            .collect();
        DiGraph::from_edges(self.n, edges)
    }

    /// Apply `f` to every edge weight, producing a graph over a new weight
    /// domain (e.g. forgetting weights for reachability).
    pub fn map_weights<W2: Copy>(&self, mut f: impl FnMut(&Edge<W>) -> W2) -> DiGraph<W2> {
        let edges = self
            .edges
            .iter()
            .map(|e| Edge {
                from: e.from,
                to: e.to,
                w: f(e),
            })
            .collect();
        DiGraph::from_edges(self.n, edges)
    }

    /// The subgraph induced by `vertices` (paper notation `G(t) =
    /// (V(t), E(V(t)))`), together with the map from new ids to original
    /// ids. `vertices` must not contain duplicates.
    ///
    /// Runs in time proportional to the total degree of `vertices` (using a
    /// scratch map of size `n`, reused across calls via `scratch`).
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (DiGraph<W>, Vec<usize>) {
        let mut local = vec![u32::MAX; self.n];
        for (i, &v) in vertices.iter().enumerate() {
            debug_assert_eq!(local[v], u32::MAX, "duplicate vertex {v}");
            local[v] = i as u32;
        }
        let mut edges = Vec::new();
        for (i, &v) in vertices.iter().enumerate() {
            for e in self.out_edges(v) {
                let lt = local[e.to as usize];
                if lt != u32::MAX {
                    edges.push(Edge {
                        from: i as u32,
                        to: lt,
                        w: e.w,
                    });
                }
            }
        }
        (
            DiGraph::from_edges(vertices.len(), edges),
            vertices.to_vec(),
        )
    }

    /// Undirected-skeleton adjacency: for every vertex, the sorted,
    /// deduplicated list of neighbours ignoring edge direction and weights.
    ///
    /// The separator decomposition "depends only on the undirected
    /// unweighted skeleton of G" (paper comment (iv)); builders consume
    /// this form.
    pub fn undirected_skeleton(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.n];
        for e in &self.edges {
            if e.from != e.to {
                adj[e.from as usize].push(e.to);
                adj[e.to as usize].push(e.from);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph<f64> {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 0
        DiGraph::from_edges(
            4,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 3, 2.0),
                Edge::new(0, 2, 4.0),
                Edge::new(2, 3, 0.5),
                Edge::new(3, 0, -1.0),
            ],
        )
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(3), 1);
        assert_eq!(g.in_degree(0), 1);
    }

    #[test]
    fn adjacency_matches_edges() {
        let g = diamond();
        let outs: Vec<u32> = g.out_edges(0).map(|e| e.to).collect();
        assert_eq!(outs.len(), 2);
        assert!(outs.contains(&1) && outs.contains(&2));
        let ins: Vec<u32> = g.in_edges(3).map(|e| e.from).collect();
        assert!(ins.contains(&1) && ins.contains(&2));
    }

    #[test]
    fn reversal_swaps_directions() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.m(), g.m());
        let outs: Vec<u32> = r.out_edges(3).map(|e| e.to).collect();
        assert!(outs.contains(&1) && outs.contains(&2));
        assert_eq!(r.out_degree(0), 1);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = diamond();
        let (sub, map) = g.induced_subgraph(&[0, 1, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(map, vec![0, 1, 3]);
        // Edges kept: 0->1, 1->3, 3->0 (2->3 and 0->2 dropped).
        assert_eq!(sub.m(), 3);
        let weights: Vec<f64> = sub.edges().iter().map(|e| e.w).collect();
        assert!(weights.contains(&1.0));
        assert!(weights.contains(&2.0));
        assert!(weights.contains(&-1.0));
    }

    #[test]
    fn skeleton_is_symmetric_and_deduped() {
        let mut edges = vec![Edge::new(0, 1, 1.0), Edge::new(1, 0, 2.0)];
        edges.push(Edge::new(1, 2, 1.0));
        edges.push(Edge::new(2, 2, 9.0)); // self loop ignored
        let g = DiGraph::from_edges(3, edges);
        let sk = g.undirected_skeleton();
        assert_eq!(sk[0], vec![1]);
        assert_eq!(sk[1], vec![0, 2]);
        assert_eq!(sk[2], vec![1]);
    }

    #[test]
    fn parallel_edges_are_preserved() {
        let g = DiGraph::from_edges(
            2,
            vec![Edge::new(0, 1, 1.0), Edge::new(0, 1, 2.0)],
        );
        assert_eq!(g.m(), 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(1), 2);
    }

    #[test]
    fn map_weights_changes_domain() {
        let g = diamond();
        let b = g.map_weights(|_| true);
        assert_eq!(b.m(), g.m());
        assert!(b.edges().iter().all(|e| e.w));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_vertex() {
        let _ = DiGraph::from_edges(2, vec![Edge::new(0, 5, 1.0)]);
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<f64> = DiGraph::from_edges(0, vec![]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }
}
