//! Compact weighted directed graphs with CSR adjacency in both directions.
//!
//! The paper's algorithms need three access patterns:
//!
//! * iterate edges *leaving* a vertex (augmentation, Dijkstra baseline);
//! * iterate edges *entering* a vertex (Bellman–Ford relaxation is defined
//!   in Section 3.2 as "scanning the edges entering v");
//! * slice out the subgraph induced by a vertex subset `V(t)` (per-node
//!   processing in Algorithm 4.1 and the leaf initialization of 4.3).
//!
//! [`DiGraph`] keeps the edge list plus two CSR indices (by source and by
//! target) referencing edge ids, so both directions cost one indirection
//! and subgraph extraction is a single pass.

use crate::error::SpsepError;
use crate::slab::Store;

/// A directed edge with weight `W`.
///
/// `#[repr(C)]` so that `Edge<f64>` has a guaranteed padding-free
/// layout (offsets 0/4/8, size 16) and can be borrowed directly out of
/// a `spsep-oracle/v2` snapshot slab (see [`crate::slab::Pod`]).
#[repr(C)]
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Edge<W> {
    /// Source vertex.
    pub from: u32,
    /// Target vertex.
    pub to: u32,
    /// Edge weight (interpreted by a [`crate::Semiring`]).
    pub w: W,
}

impl<W> Edge<W> {
    /// Construct an edge from `from` to `to` with weight `w`.
    pub fn new(from: usize, to: usize, w: W) -> Self {
        Edge {
            from: from as u32,
            to: to as u32,
            w,
        }
    }
}

/// A directed graph over vertices `0..n` with weighted edges and CSR
/// adjacency by source and by target.
///
/// Parallel edges and self-loops are permitted (the augmentation
/// deliberately adds parallel shortcut edges; consumers `combine` them).
///
/// ```
/// use spsep_graph::{DiGraph, Edge};
///
/// let g = DiGraph::from_edges(3, vec![
///     Edge::new(0, 1, 2.5),
///     Edge::new(1, 2, 1.0),
/// ]);
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.out_degree(0), 1);
/// assert_eq!(g.in_edges(2).next().unwrap().from, 1);
/// ```
/// All five arrays are [`Store`]s: owned `Vec`s when built with
/// [`DiGraph::from_edges`], borrowed snapshot slabs when reconstituted
/// zero-copy from a `spsep-oracle/v2` file via
/// [`DiGraph::from_csr_parts`]. Every accessor reads them as slices, so
/// the two cases are indistinguishable to callers.
#[derive(Clone, Debug)]
pub struct DiGraph<W: Copy> {
    n: usize,
    edges: Store<Edge<W>>,
    /// CSR by source: `out_adj[out_off[v]..out_off[v+1]]` are edge ids
    /// leaving `v`.
    out_off: Store<u32>,
    out_adj: Store<u32>,
    /// CSR by target: `in_adj[in_off[v]..in_off[v+1]]` are edge ids
    /// entering `v`.
    in_off: Store<u32>,
    in_adj: Store<u32>,
}

impl<W: Copy> DiGraph<W> {
    /// Build a graph on `n` vertices from an edge list.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: Vec<Edge<W>>) -> Self {
        let mut out_off = vec![0u32; n + 1];
        let mut in_off = vec![0u32; n + 1];
        for e in &edges {
            assert!((e.from as usize) < n, "edge source {} out of range", e.from);
            assert!((e.to as usize) < n, "edge target {} out of range", e.to);
            out_off[e.from as usize] += 1;
            in_off[e.to as usize] += 1;
        }
        // Exclusive prefix sums: off[v] becomes the start of row v.
        let mut oacc = 0u32;
        let mut iacc = 0u32;
        for v in 0..n {
            let (oc, ic) = (out_off[v], in_off[v]);
            out_off[v] = oacc;
            in_off[v] = iacc;
            oacc += oc;
            iacc += ic;
        }
        out_off[n] = oacc;
        in_off[n] = iacc;
        let mut out_adj = vec![0u32; edges.len()];
        let mut in_adj = vec![0u32; edges.len()];
        // Scatter using the offset arrays themselves as write cursors (no
        // cloned cursor arrays): after the scatter, off[v] has advanced to
        // the end of row v — which is exactly the start of row v + 1 — so
        // one shift-right restores the CSR row starts in place.
        for (id, e) in edges.iter().enumerate() {
            let oc = &mut out_off[e.from as usize];
            out_adj[*oc as usize] = id as u32;
            *oc += 1;
            let ic = &mut in_off[e.to as usize];
            in_adj[*ic as usize] = id as u32;
            *ic += 1;
        }
        for v in (1..=n).rev() {
            out_off[v] = out_off[v - 1];
            in_off[v] = in_off[v - 1];
        }
        if n > 0 {
            out_off[0] = 0;
            in_off[0] = 0;
        }
        DiGraph {
            n,
            edges: edges.into(),
            out_off: out_off.into(),
            out_adj: out_adj.into(),
            in_off: in_off.into(),
            in_adj: in_adj.into(),
        }
    }

    /// Reconstitute a graph from pre-built CSR arrays (typically
    /// borrowed snapshot slabs — zero copies). Validates every
    /// structural invariant with typed errors so that a
    /// checksum-consistent but semantically hostile snapshot can never
    /// cause an out-of-bounds access later:
    ///
    /// * both offset arrays have length `n + 1`, start at 0, are
    ///   monotone, and end at `m`;
    /// * both adjacency arrays have length `m` and hold edge ids `< m`;
    /// * every endpoint is `< n`;
    /// * `out_adj`/`in_adj` rows list exactly the edges leaving /
    ///   entering each vertex (position within a row is not constrained
    ///   beyond what [`DiGraph::from_edges`] produces: input order).
    ///
    /// Cost is one O(n + m) sweep — index arithmetic only, no per-edge
    /// decoding and no allocation beyond the error path.
    pub fn from_csr_parts(
        n: usize,
        edges: Store<Edge<W>>,
        out_off: Store<u32>,
        out_adj: Store<u32>,
        in_off: Store<u32>,
        in_adj: Store<u32>,
    ) -> Result<Self, SpsepError> {
        let m = edges.len();
        for (i, e) in edges.iter().enumerate() {
            if (e.from as usize) >= n || (e.to as usize) >= n {
                return Err(SpsepError::invalid_edge(
                    i,
                    format!("endpoint out of range for {n} vertices"),
                ));
            }
        }
        validate_csr_index(n, m, &out_off, &out_adj, "out")?;
        validate_csr_index(n, m, &in_off, &in_adj, "in")?;
        // Row membership: each out row must reference edges leaving v,
        // each in row edges entering v. (Cheap field compares; catches
        // swapped or permuted adjacency sections.)
        for v in 0..n {
            for &id in &out_adj[out_off[v] as usize..out_off[v + 1] as usize] {
                if edges[id as usize].from as usize != v {
                    return Err(SpsepError::invalid_graph_at(
                        v as u32,
                        format!("out-CSR row lists edge {id} which does not leave the vertex"),
                    ));
                }
            }
            for &id in &in_adj[in_off[v] as usize..in_off[v + 1] as usize] {
                if edges[id as usize].to as usize != v {
                    return Err(SpsepError::invalid_graph_at(
                        v as u32,
                        format!("in-CSR row lists edge {id} which does not enter the vertex"),
                    ));
                }
            }
        }
        Ok(DiGraph {
            n,
            edges,
            out_off,
            out_adj,
            in_off,
            in_adj,
        })
    }

    /// The out-CSR offset array (`n + 1` entries; rust_road_router's
    /// `first_out`).
    #[inline]
    pub fn first_out(&self) -> &[u32] {
        &self.out_off
    }

    /// The out-CSR adjacency array (`m` edge ids, grouped by source).
    #[inline]
    pub fn out_adjacency(&self) -> &[u32] {
        &self.out_adj
    }

    /// The in-CSR offset array (`n + 1` entries).
    #[inline]
    pub fn first_in(&self) -> &[u32] {
        &self.in_off
    }

    /// The in-CSR adjacency array (`m` edge ids, grouped by target).
    #[inline]
    pub fn in_adjacency(&self) -> &[u32] {
        &self.in_adj
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges (counting parallel edges).
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The full edge list, indexed by edge id.
    #[inline]
    pub fn edges(&self) -> &[Edge<W>] {
        &self.edges
    }

    /// The edge with id `id`.
    #[inline]
    pub fn edge(&self, id: usize) -> &Edge<W> {
        &self.edges[id]
    }

    /// Ids of edges leaving `v`.
    #[inline]
    pub fn out_edge_ids(&self, v: usize) -> &[u32] {
        &self.out_adj[self.out_off[v] as usize..self.out_off[v + 1] as usize]
    }

    /// Ids of edges entering `v`.
    #[inline]
    pub fn in_edge_ids(&self, v: usize) -> &[u32] {
        &self.in_adj[self.in_off[v] as usize..self.in_off[v + 1] as usize]
    }

    /// Edges leaving `v`.
    pub fn out_edges(&self, v: usize) -> impl Iterator<Item = &Edge<W>> + '_ {
        self.out_edge_ids(v).iter().map(move |&id| &self.edges[id as usize])
    }

    /// Edges entering `v`.
    pub fn in_edges(&self, v: usize) -> impl Iterator<Item = &Edge<W>> + '_ {
        self.in_edge_ids(v).iter().map(move |&id| &self.edges[id as usize])
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: usize) -> usize {
        (self.out_off[v + 1] - self.out_off[v]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: usize) -> usize {
        (self.in_off[v + 1] - self.in_off[v]) as usize
    }

    /// The graph with every edge reversed (weights preserved).
    pub fn reversed(&self) -> DiGraph<W> {
        let edges = self
            .edges
            .iter()
            .map(|e| Edge {
                from: e.to,
                to: e.from,
                w: e.w,
            })
            .collect();
        DiGraph::from_edges(self.n, edges)
    }

    /// Apply `f` to every edge weight, producing a graph over a new weight
    /// domain (e.g. forgetting weights for reachability).
    pub fn map_weights<W2: Copy>(&self, mut f: impl FnMut(&Edge<W>) -> W2) -> DiGraph<W2> {
        let edges = self
            .edges
            .iter()
            .map(|e| Edge {
                from: e.from,
                to: e.to,
                w: f(e),
            })
            .collect();
        DiGraph::from_edges(self.n, edges)
    }

    /// The subgraph induced by `vertices` (paper notation `G(t) =
    /// (V(t), E(V(t)))`), together with the map from new ids to original
    /// ids. `vertices` must not contain duplicates.
    ///
    /// Runs in time proportional to the total degree of `vertices` (using a
    /// scratch map of size `n`, reused across calls via `scratch`).
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (DiGraph<W>, Vec<usize>) {
        let mut local = vec![u32::MAX; self.n];
        for (i, &v) in vertices.iter().enumerate() {
            debug_assert_eq!(local[v], u32::MAX, "duplicate vertex {v}");
            local[v] = i as u32;
        }
        let mut edges = Vec::new();
        for (i, &v) in vertices.iter().enumerate() {
            for e in self.out_edges(v) {
                let lt = local[e.to as usize];
                if lt != u32::MAX {
                    edges.push(Edge {
                        from: i as u32,
                        to: lt,
                        w: e.w,
                    });
                }
            }
        }
        (
            DiGraph::from_edges(vertices.len(), edges),
            vertices.to_vec(),
        )
    }

    /// Undirected-skeleton adjacency: for every vertex, the sorted,
    /// deduplicated list of neighbours ignoring edge direction and weights.
    ///
    /// The separator decomposition "depends only on the undirected
    /// unweighted skeleton of G" (paper comment (iv)); builders consume
    /// this form.
    pub fn undirected_skeleton(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.n];
        for e in self.edges.iter() {
            if e.from != e.to {
                adj[e.from as usize].push(e.to);
                adj[e.to as usize].push(e.from);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        adj
    }
}

/// Validate one direction's CSR index: offsets of length `n + 1`,
/// `0 = off[0] <= … <= off[n] = m`, adjacency of length `m` holding
/// edge ids `< m`.
fn validate_csr_index(
    n: usize,
    m: usize,
    off: &[u32],
    adj: &[u32],
    dir: &str,
) -> Result<(), SpsepError> {
    if off.len() != n + 1 {
        return Err(SpsepError::invalid_graph(format!(
            "{dir}-CSR offsets: expected {} entries, found {}",
            n + 1,
            off.len()
        )));
    }
    if adj.len() != m {
        return Err(SpsepError::invalid_graph(format!(
            "{dir}-CSR adjacency: expected {m} entries, found {}",
            adj.len()
        )));
    }
    if off.first().copied().unwrap_or(0) != 0 || off.last().copied().unwrap_or(0) as usize != m {
        return Err(SpsepError::invalid_graph(format!(
            "{dir}-CSR offsets must start at 0 and end at m = {m}"
        )));
    }
    for w in off.windows(2) {
        if w[1] < w[0] {
            return Err(SpsepError::invalid_graph(format!(
                "{dir}-CSR offsets are not monotone ({} then {})",
                w[0], w[1]
            )));
        }
    }
    for &id in adj {
        if id as usize >= m {
            return Err(SpsepError::invalid_graph(format!(
                "{dir}-CSR adjacency references edge {id} but m = {m}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph<f64> {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 0
        DiGraph::from_edges(
            4,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 3, 2.0),
                Edge::new(0, 2, 4.0),
                Edge::new(2, 3, 0.5),
                Edge::new(3, 0, -1.0),
            ],
        )
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(3), 1);
        assert_eq!(g.in_degree(0), 1);
    }

    #[test]
    fn adjacency_matches_edges() {
        let g = diamond();
        let outs: Vec<u32> = g.out_edges(0).map(|e| e.to).collect();
        assert_eq!(outs.len(), 2);
        assert!(outs.contains(&1) && outs.contains(&2));
        let ins: Vec<u32> = g.in_edges(3).map(|e| e.from).collect();
        assert!(ins.contains(&1) && ins.contains(&2));
    }

    #[test]
    fn reversal_swaps_directions() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.m(), g.m());
        let outs: Vec<u32> = r.out_edges(3).map(|e| e.to).collect();
        assert!(outs.contains(&1) && outs.contains(&2));
        assert_eq!(r.out_degree(0), 1);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = diamond();
        let (sub, map) = g.induced_subgraph(&[0, 1, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(map, vec![0, 1, 3]);
        // Edges kept: 0->1, 1->3, 3->0 (2->3 and 0->2 dropped).
        assert_eq!(sub.m(), 3);
        let weights: Vec<f64> = sub.edges().iter().map(|e| e.w).collect();
        assert!(weights.contains(&1.0));
        assert!(weights.contains(&2.0));
        assert!(weights.contains(&-1.0));
    }

    #[test]
    fn skeleton_is_symmetric_and_deduped() {
        let mut edges = vec![Edge::new(0, 1, 1.0), Edge::new(1, 0, 2.0)];
        edges.push(Edge::new(1, 2, 1.0));
        edges.push(Edge::new(2, 2, 9.0)); // self loop ignored
        let g = DiGraph::from_edges(3, edges);
        let sk = g.undirected_skeleton();
        assert_eq!(sk[0], vec![1]);
        assert_eq!(sk[1], vec![0, 2]);
        assert_eq!(sk[2], vec![1]);
    }

    #[test]
    fn parallel_edges_are_preserved() {
        let g = DiGraph::from_edges(
            2,
            vec![Edge::new(0, 1, 1.0), Edge::new(0, 1, 2.0)],
        );
        assert_eq!(g.m(), 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(1), 2);
    }

    #[test]
    fn map_weights_changes_domain() {
        let g = diamond();
        let b = g.map_weights(|_| true);
        assert_eq!(b.m(), g.m());
        assert!(b.edges().iter().all(|e| e.w));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_vertex() {
        let _ = DiGraph::from_edges(2, vec![Edge::new(0, 5, 1.0)]);
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<f64> = DiGraph::from_edges(0, vec![]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn flat_arrays_describe_the_csr() {
        let g = diamond();
        assert_eq!(g.first_out().len(), g.n() + 1);
        assert_eq!(g.out_adjacency().len(), g.m());
        assert_eq!(g.first_in().len(), g.n() + 1);
        assert_eq!(g.in_adjacency().len(), g.m());
        assert_eq!(*g.first_out().last().unwrap() as usize, g.m());
        for v in 0..g.n() {
            assert_eq!(
                g.out_edge_ids(v),
                &g.out_adjacency()[g.first_out()[v] as usize..g.first_out()[v + 1] as usize]
            );
        }
    }

    #[test]
    fn from_csr_parts_roundtrips_and_validates() {
        let g = diamond();
        let rebuilt = DiGraph::from_csr_parts(
            g.n(),
            g.edges().to_vec().into(),
            g.first_out().to_vec().into(),
            g.out_adjacency().to_vec().into(),
            g.first_in().to_vec().into(),
            g.in_adjacency().to_vec().into(),
        )
        .unwrap();
        assert_eq!(rebuilt.edges(), g.edges());
        for v in 0..g.n() {
            assert_eq!(rebuilt.out_edge_ids(v), g.out_edge_ids(v));
            assert_eq!(rebuilt.in_edge_ids(v), g.in_edge_ids(v));
        }

        // Each corruption must be a typed error, never a panic.
        let bad_off = {
            let mut o = g.first_out().to_vec();
            o[2] = o[2].wrapping_sub(1);
            o.swap(1, 3); // break monotonicity
            o
        };
        assert!(DiGraph::from_csr_parts(
            g.n(),
            g.edges().to_vec().into(),
            bad_off.into(),
            g.out_adjacency().to_vec().into(),
            g.first_in().to_vec().into(),
            g.in_adjacency().to_vec().into(),
        )
        .is_err());

        let mut bad_adj = g.out_adjacency().to_vec();
        bad_adj[0] = 99; // out of range edge id
        assert!(DiGraph::from_csr_parts(
            g.n(),
            g.edges().to_vec().into(),
            g.first_out().to_vec().into(),
            bad_adj.into(),
            g.first_in().to_vec().into(),
            g.in_adjacency().to_vec().into(),
        )
        .is_err());

        // Swapped in/out adjacency is caught by row membership.
        assert!(DiGraph::from_csr_parts(
            g.n(),
            g.edges().to_vec().into(),
            g.first_in().to_vec().into(),
            g.in_adjacency().to_vec().into(),
            g.first_out().to_vec().into(),
            g.out_adjacency().to_vec().into(),
        )
        .is_err());

        let mut bad_edges = g.edges().to_vec();
        bad_edges[1].to = 77;
        assert!(DiGraph::from_csr_parts(
            g.n(),
            bad_edges.into(),
            g.first_out().to_vec().into(),
            g.out_adjacency().to_vec().into(),
            g.first_in().to_vec().into(),
            g.in_adjacency().to_vec().into(),
        )
        .is_err());
    }
}
