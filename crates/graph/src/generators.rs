//! Generators for the graph families the paper targets.
//!
//! Section 1 of the paper names the families with readily available
//! separator decompositions:
//!
//! * d′-dimensional **grid graphs** — "a trivial `k^((d-1)/d)`-separator
//!   decomposition";
//! * **bounded tree-width** graphs (here: trees, with single-vertex
//!   centroid separators);
//! * **r-overlap graphs** embedded in d dimensions (Miller–Teng–Vavasis),
//!   which include planar graphs in 2D — modelled here by random
//!   **geometric graphs** carrying an explicit embedding;
//! * planar-style **layered DAGs** for reachability experiments.
//!
//! All generators are deterministic given the caller-supplied RNG, so
//! experiments are reproducible end to end.

use crate::digraph::{DiGraph, Edge};
use rand::Rng;

/// A point set in `dim` dimensions, row-major, paired with graphs whose
/// vertices are embedded (grids, geometric graphs). Consumed by the
/// geometric separator builder.
#[derive(Clone, Debug)]
pub struct Coords {
    dim: usize,
    data: Vec<f64>,
}

impl Coords {
    /// Create a coordinate table; `data.len()` must be a multiple of `dim`.
    pub fn new(dim: usize, data: Vec<f64>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data length not a multiple of dim");
        Coords { dim, data }
    }

    /// Spatial dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True if there are no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Coordinates of point `v`.
    pub fn point(&self, v: usize) -> &[f64] {
        &self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// The full row-major coordinate table (`len() * dim()` values).
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }
}

/// Row-major index of a grid point. `pos[i] < dims[i]` for all axes.
pub fn grid_index(dims: &[usize], pos: &[usize]) -> usize {
    debug_assert_eq!(dims.len(), pos.len());
    let mut idx = 0;
    for (d, p) in dims.iter().zip(pos) {
        debug_assert!(p < d);
        idx = idx * d + p;
    }
    idx
}

/// d-dimensional grid graph with edges in both directions along every axis,
/// each direction weighted independently and uniformly in `[1, 2)`.
///
/// Returns the graph and the integer lattice embedding. This is the
/// `k^((d-1)/d)`-separator family of the paper's introduction.
pub fn grid(dims: &[usize], rng: &mut impl Rng) -> (DiGraph<f64>, Coords) {
    grid_with_weights(dims, |_, _| rng.gen_range(1.0..2.0))
}

/// Like [`grid`], with caller-chosen weights (`f(from, to)` per directed
/// edge).
pub fn grid_with_weights(
    dims: &[usize],
    mut f: impl FnMut(usize, usize) -> f64,
) -> (DiGraph<f64>, Coords) {
    let d = dims.len();
    assert!(d > 0, "grid needs at least one dimension");
    let n: usize = dims.iter().product();
    assert!(n > 0, "grid dimensions must be positive");
    let mut edges = Vec::with_capacity(2 * d * n);
    let mut coords = Vec::with_capacity(n * d);
    let mut pos = vec![0usize; d];
    for v in 0..n {
        for &p in &pos {
            coords.push(p as f64);
        }
        // Edges to the +1 neighbour along each axis, both directions.
        for axis in 0..d {
            if pos[axis] + 1 < dims[axis] {
                // Stride of axis `axis` in row-major order.
                let stride: usize = dims[axis + 1..].iter().product();
                let u = v + stride;
                edges.push(Edge::new(v, u, f(v, u)));
                edges.push(Edge::new(u, v, f(u, v)));
            }
        }
        // Advance row-major position.
        for axis in (0..d).rev() {
            pos[axis] += 1;
            if pos[axis] < dims[axis] {
                break;
            }
            pos[axis] = 0;
        }
    }
    (DiGraph::from_edges(n, edges), Coords::new(d, coords))
}

/// Random tree on `n` vertices (uniform attachment), each tree edge present
/// in both directions with independent weights in `[1, 2)`.
///
/// Trees have single-vertex (centroid) separators: the `μ → 0` end of the
/// paper's parameter range.
pub fn random_tree(n: usize, rng: &mut impl Rng) -> DiGraph<f64> {
    assert!(n > 0);
    let mut edges = Vec::with_capacity(2 * (n - 1));
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        edges.push(Edge::new(parent, v, rng.gen_range(1.0..2.0)));
        edges.push(Edge::new(v, parent, rng.gen_range(1.0..2.0)));
    }
    DiGraph::from_edges(n, edges)
}

/// Random geometric digraph: `n` points uniform in the unit `dim`-cube,
/// arcs in both directions between points at distance `< radius`, weighted
/// by Euclidean length times a jitter in `[1, 1.5)`.
///
/// With `radius = Θ((1/n)^(1/dim))` this is (w.h.p.) a bounded-overlap
/// graph in the Miller–Teng–Vavasis sense and admits `k^((d-1)/d)`
/// geometric separators.
pub fn geometric(n: usize, dim: usize, radius: f64, rng: &mut impl Rng) -> (DiGraph<f64>, Coords) {
    assert!(n > 0 && dim > 0);
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n * dim {
        data.push(rng.gen_range(0.0..1.0));
    }
    let coords = Coords::new(dim, data);
    // Bucket points into a grid of cell size `radius` so neighbour search
    // is near-linear instead of quadratic.
    let cells_per_axis = (1.0 / radius).floor().max(1.0) as usize;
    let cell_of = |p: &[f64]| -> usize {
        let mut idx = 0;
        for &x in p {
            let c = ((x * cells_per_axis as f64) as usize).min(cells_per_axis - 1);
            idx = idx * cells_per_axis + c;
        }
        idx
    };
    let num_cells = cells_per_axis.pow(dim as u32);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); num_cells];
    for v in 0..n {
        buckets[cell_of(coords.point(v))].push(v as u32);
    }
    let mut edges = Vec::new();
    let mut neigh_cells = Vec::new();
    for v in 0..n {
        let p = coords.point(v);
        // Enumerate the 3^dim neighbouring cells of v's cell.
        neigh_cells.clear();
        let mut cell_pos = vec![0usize; dim];
        {
            let mut idx = cell_of(p);
            for axis in (0..dim).rev() {
                cell_pos[axis] = idx % cells_per_axis;
                idx /= cells_per_axis;
            }
        }
        let mut offset = vec![-1i64; dim];
        'outer: loop {
            let mut idx = 0usize;
            let mut ok = true;
            for axis in 0..dim {
                let c = cell_pos[axis] as i64 + offset[axis];
                if c < 0 || c >= cells_per_axis as i64 {
                    ok = false;
                    break;
                }
                idx = idx * cells_per_axis + c as usize;
            }
            if ok {
                neigh_cells.push(idx);
            }
            for axis in (0..dim).rev() {
                offset[axis] += 1;
                if offset[axis] <= 1 {
                    continue 'outer;
                }
                offset[axis] = -1;
            }
            break;
        }
        for &c in &neigh_cells {
            for &u in &buckets[c] {
                let u = u as usize;
                if u <= v {
                    continue; // handle each unordered pair once
                }
                let q = coords.point(u);
                let dist2: f64 = p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
                if dist2 < radius * radius {
                    let base = dist2.sqrt().max(1e-9);
                    edges.push(Edge::new(v, u, base * rng.gen_range(1.0..1.5)));
                    edges.push(Edge::new(u, v, base * rng.gen_range(1.0..1.5)));
                }
            }
        }
    }
    (DiGraph::from_edges(n, edges), coords)
}

/// Uniform random digraph with `n` vertices and `m` arcs (duplicates
/// possible), weights in `[1, 2)`. No separator structure is guaranteed;
/// used with the bisection fallback builder and for adversarial testing.
pub fn gnm(n: usize, m: usize, rng: &mut impl Rng) -> DiGraph<f64> {
    assert!(n > 0);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let from = rng.gen_range(0..n);
        let to = rng.gen_range(0..n);
        edges.push(Edge::new(from, to, rng.gen_range(1.0..2.0)));
    }
    DiGraph::from_edges(n, edges)
}

/// Layered DAG: `layers` layers of `width` vertices; each vertex gets
/// `fanout` forward arcs to random vertices of the next layer. Used in
/// reachability experiments.
pub fn layered_dag(layers: usize, width: usize, fanout: usize, rng: &mut impl Rng) -> DiGraph<f64> {
    assert!(layers > 0 && width > 0);
    let n = layers * width;
    let mut edges = Vec::new();
    for l in 0..layers - 1 {
        for i in 0..width {
            let v = l * width + i;
            for _ in 0..fanout {
                let u = (l + 1) * width + rng.gen_range(0..width);
                edges.push(Edge::new(v, u, rng.gen_range(1.0..2.0)));
            }
        }
    }
    DiGraph::from_edges(n, edges)
}

/// Directed path `0 → 1 → … → n-1` with unit weights.
pub fn path(n: usize) -> DiGraph<f64> {
    let edges = (0..n.saturating_sub(1))
        .map(|v| Edge::new(v, v + 1, 1.0))
        .collect();
    DiGraph::from_edges(n, edges)
}

/// Directed cycle on `n` vertices with unit weights.
pub fn cycle(n: usize) -> DiGraph<f64> {
    assert!(n > 0);
    let edges = (0..n).map(|v| Edge::new(v, (v + 1) % n, 1.0)).collect();
    DiGraph::from_edges(n, edges)
}

/// Re-weight a graph by vertex potentials: `w'(u,v) = w(u,v) + π(u) − π(v)`
/// with `π` uniform in `[0, amplitude)`.
///
/// Every cycle keeps its weight, so a graph without negative cycles stays
/// negative-cycle-free while individual edges may become negative — the
/// standard way to manufacture hard-but-feasible inputs for real-weight
/// shortest paths (the setting that distinguishes this paper from
/// nonnegative-weight planar algorithms like Lingas's, cf. Section 1).
pub fn skew_by_potentials(g: &DiGraph<f64>, amplitude: f64, rng: &mut impl Rng) -> DiGraph<f64> {
    let pot: Vec<f64> = (0..g.n()).map(|_| rng.gen_range(0.0..amplitude)).collect();
    g.map_weights(|e| e.w + pot[e.from as usize] - pot[e.to as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_2d_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, coords) = grid(&[3, 4], &mut rng);
        assert_eq!(g.n(), 12);
        // Horizontal pairs: 3 rows × 3 = 9; vertical: 2 × 4 = 8; both dirs.
        assert_eq!(g.m(), 2 * (9 + 8));
        assert_eq!(coords.len(), 12);
        assert_eq!(coords.dim(), 2);
        assert_eq!(coords.point(0), &[0.0, 0.0]);
        assert_eq!(coords.point(11), &[2.0, 3.0]);
    }

    #[test]
    fn grid_index_row_major() {
        assert_eq!(grid_index(&[3, 4], &[0, 0]), 0);
        assert_eq!(grid_index(&[3, 4], &[1, 2]), 6);
        assert_eq!(grid_index(&[3, 4], &[2, 3]), 11);
        assert_eq!(grid_index(&[2, 3, 4], &[1, 2, 3]), 23);
    }

    #[test]
    fn grid_3d_neighbours() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, _) = grid(&[3, 3, 3], &mut rng);
        assert_eq!(g.n(), 27);
        // Centre vertex has 6 out-neighbours.
        let centre = grid_index(&[3, 3, 3], &[1, 1, 1]);
        assert_eq!(g.out_degree(centre), 6);
        // Corner has 3.
        assert_eq!(g.out_degree(0), 3);
    }

    #[test]
    fn grid_1d_is_a_bidirected_path() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _) = grid(&[5], &mut rng);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 8);
    }

    #[test]
    fn tree_is_connected_and_acyclic_sized() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = random_tree(50, &mut rng);
        assert_eq!(g.m(), 2 * 49);
        let comps = crate::traversal::undirected_components(&g.undirected_skeleton());
        assert!(comps.iter().all(|&c| c == 0));
    }

    #[test]
    fn geometric_is_symmetric_and_embedded() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, coords) = geometric(200, 2, 0.15, &mut rng);
        assert_eq!(coords.len(), 200);
        // Arcs come in antiparallel pairs.
        let mut pair_count = std::collections::HashMap::new();
        for e in g.edges() {
            *pair_count.entry((e.from.min(e.to), e.from.max(e.to))).or_insert(0) += 1;
        }
        assert!(pair_count.values().all(|&c| c % 2 == 0));
        // Every edge respects the radius.
        for e in g.edges() {
            let p = coords.point(e.from as usize);
            let q = coords.point(e.to as usize);
            let d2: f64 = p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
            assert!(d2 < 0.15 * 0.15);
        }
    }

    #[test]
    fn geometric_matches_bruteforce_edge_set() {
        let mut rng = StdRng::seed_from_u64(17);
        let (g, coords) = geometric(80, 2, 0.2, &mut rng);
        let mut expected = 0usize;
        for v in 0..80 {
            for u in v + 1..80 {
                let p = coords.point(v);
                let q = coords.point(u);
                let d2: f64 = p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
                if d2 < 0.2 * 0.2 {
                    expected += 2;
                }
            }
        }
        assert_eq!(g.m(), expected);
    }

    #[test]
    fn layered_dag_is_acyclic_by_layers() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = layered_dag(5, 10, 3, &mut rng);
        assert_eq!(g.n(), 50);
        for e in g.edges() {
            assert_eq!(e.to as usize / 10, e.from as usize / 10 + 1);
        }
    }

    #[test]
    fn potentials_preserve_cycle_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = cycle(6);
        let skew = skew_by_potentials(&g, 10.0, &mut rng);
        let total: f64 = skew.edges().iter().map(|e| e.w).sum();
        assert!((total - 6.0).abs() < 1e-9);
        // With amplitude 10 some edge is almost surely negative.
        assert!(skew.edges().iter().any(|e| e.w < 0.0));
    }

    #[test]
    fn path_and_cycle_shapes() {
        assert_eq!(path(1).m(), 0);
        assert_eq!(path(4).m(), 3);
        assert_eq!(cycle(4).m(), 4);
    }
}
