//! Bounds-checked little-endian byte codec for binary artifacts.
//!
//! The persistent oracle snapshot (`spsep-oracle/v1`, see
//! `spsep_core::io`) is a hand-rolled binary format — the workspace
//! vendors no serde — so every crate that contributes a section needs
//! the same two primitives:
//!
//! * [`ByteWriter`] — appends fixed-width little-endian fields to a
//!   growable buffer (writes are infallible);
//! * [`ByteReader`] — a cursor whose **every** read is bounds-checked
//!   and reports truncation as a typed [`SpsepError::Parse`] carrying
//!   the byte offset and the field being read. Snapshot loading must
//!   never panic on hostile bytes (the robustness contract of the
//!   workspace, DESIGN.md §6), and this cursor is where that guarantee
//!   bottoms out.
//!
//! Also home of [`fnv1a64`], the checksum each snapshot section is
//! guarded by.

use crate::error::SpsepError;

/// Seed of the FNV-1a 64-bit hash.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Multiplier of the FNV-1a 64-bit hash.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes` — the per-section checksum of the
/// snapshot format. Not cryptographic; it guards against bit rot and
/// truncation, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Infallible little-endian serializer: appends fixed-width fields to a
/// growable `Vec<u8>`.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh, empty buffer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern, little-endian —
    /// weights round-trip **bit-exactly** (the differential suite
    /// compares via `to_bits`).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append raw bytes verbatim.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Consume the writer, yielding the buffer.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian cursor over untrusted bytes.
///
/// Every accessor returns [`SpsepError::Parse`] instead of panicking
/// when the buffer is too short — a truncated snapshot file surfaces as
/// a typed error naming the field and byte offset where the data ran
/// out.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Cursor over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when the cursor has consumed the whole buffer.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn truncated(&self, what: &str) -> SpsepError {
        SpsepError::parse(format!(
            "truncated at byte {} of {} while reading {what}",
            self.pos,
            self.buf.len()
        ))
    }

    /// Take `len` raw bytes, naming `what` in the truncation error.
    pub fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], SpsepError> {
        if self.remaining() < len {
            return Err(self.truncated(what));
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, SpsepError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, SpsepError> {
        let b = self.take(4, what)?;
        // take() returned exactly 4 bytes.
        let Ok(arr) = <[u8; 4]>::try_from(b) else {
            unreachable!("take(4) returned a non-4-byte slice")
        };
        Ok(u32::from_le_bytes(arr))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, SpsepError> {
        let b = self.take(8, what)?;
        // take() returned exactly 8 bytes.
        let Ok(arr) = <[u8; 8]>::try_from(b) else {
            unreachable!("take(8) returned a non-8-byte slice")
        };
        Ok(u64::from_le_bytes(arr))
    }

    /// Read a `u64` that will be used as an in-memory count: rejects
    /// values that do not fit `usize` *or* that are so large the
    /// declared payload could not possibly contain them (`min_bytes`
    /// per element) — the classic length-overrun attack on binary
    /// parsers, turned into a typed error instead of an OOM.
    pub fn count(&mut self, what: &str, min_bytes: usize) -> Result<usize, SpsepError> {
        let raw = self.u64(what)?;
        let n = usize::try_from(raw)
            .map_err(|_| SpsepError::parse(format!("{what} {raw} overflows usize")))?;
        if n.saturating_mul(min_bytes.max(1)) > self.remaining() {
            return Err(SpsepError::parse(format!(
                "{what} declares {n} elements but only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self, what: &str) -> Result<f64, SpsepError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Assert the cursor consumed the whole buffer (payload framing
    /// check: a section with trailing garbage is corrupt).
    pub fn expect_exhausted(&self, what: &str) -> Result<(), SpsepError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(SpsepError::parse(format!(
                "{} trailing bytes after {what}",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_kinds() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.f64(-0.0);
        w.f64(1.5e300);
        w.bytes(b"tail");
        let buf = w.into_inner();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        // -0.0 must round-trip bit-exactly, not compare-equal to 0.0.
        assert_eq!(r.f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64("e").unwrap(), 1.5e300);
        assert_eq!(r.take(4, "f").unwrap(), b"tail");
        assert!(r.is_exhausted());
        r.expect_exhausted("frame").unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error_with_offset() {
        let buf = [1u8, 2, 3];
        let mut r = ByteReader::new(&buf);
        let err = r.u32("field").unwrap_err();
        let s = err.to_string();
        assert!(matches!(err, SpsepError::Parse { .. }), "{s}");
        assert!(s.contains("byte 0"), "{s}");
        assert!(s.contains("field"), "{s}");
    }

    #[test]
    fn count_rejects_overrun_declarations() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // an absurd element count
        let buf = w.into_inner();
        let mut r = ByteReader::new(&buf);
        assert!(r.count("edge count", 16).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut r = ByteReader::new(&[0u8; 5]);
        r.u8("x").unwrap();
        assert!(r.expect_exhausted("payload").is_err());
    }

    #[test]
    fn fnv1a64_is_stable_and_sensitive() {
        // Reference vectors of the FNV-1a 64 specification.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_ne!(fnv1a64(b"snapshot"), fnv1a64(b"snapshos"));
    }
}
