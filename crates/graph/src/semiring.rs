//! Path algebras over idempotent semirings.
//!
//! The paper states (comment (iii), Section 1) that the algorithm applies to
//! "general path algebra problems over semirings". Everything in
//! `spsep-core` — the `E⁺` augmentation, the per-node Floyd–Warshall and
//! min-plus squaring steps, and the scheduled Bellman–Ford — is generic over
//! the [`Semiring`] trait defined here.
//!
//! A semiring `(W, ⊕, ⊗, 0̄, 1̄)` models path problems when:
//!
//! * `⊕` ("combine") selects among alternative paths — for shortest paths it
//!   is `min`, for reachability `∨`;
//! * `⊗` ("extend") concatenates paths — `+` for shortest paths, `∧` for
//!   reachability;
//! * `0̄` = [`Semiring::zero`] is the identity of `⊕` (the value of "no
//!   path", e.g. `+∞`);
//! * `1̄` = [`Semiring::one`] is the identity of `⊗` (the value of the empty
//!   path, e.g. `0`).
//!
//! All instances here are **idempotent** (`a ⊕ a = a`), which is what makes
//! Bellman–Ford-style relaxation converge; this is property-tested in the
//! unit tests below.

use std::fmt::Debug;

/// How a semiring's `(combine, extend)` pair maps onto `f64` vector
/// lanes, for the explicit-SIMD kernels in [`crate::dense::simd`].
///
/// A semiring may advertise a lane algebra only when its weight domain
/// is `f64` **and** its scalar `combine`/`extend` are exactly the
/// operations named here (including tie and NaN behavior: `MinX`
/// combine is literally `if a <= b { a } else { b }`, `MaxX` is
/// `if a >= b { a } else { b }`, `..Min` extend is
/// `if a <= b { a } else { b }`) — the SIMD kernels reproduce those
/// scalar semantics bit for bit with compare + blend, so a lying
/// descriptor would silently change result bits.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LaneAlgebra {
    /// `combine = min`, `extend = +` ([`Tropical`] shortest paths).
    MinAdd,
    /// `combine = max`, `extend = +` ([`MaxPlus`] longest paths).
    MaxAdd,
    /// `combine = max`, `extend = min` ([`Bottleneck`] widest paths).
    MaxMin,
    /// `combine = max`, `extend = ×` ([`Reliability`] best-probability
    /// paths).
    MaxMul,
}

/// An idempotent semiring describing a path-weight algebra.
///
/// Implementors are zero-sized tag types; the weight domain is the
/// associated type [`Semiring::W`].
///
/// ```
/// use spsep_graph::semiring::{Semiring, Tropical, Boolean};
///
/// // Tropical: min selects paths, + concatenates them.
/// assert_eq!(Tropical::combine(3.0, 5.0), 3.0);
/// assert_eq!(Tropical::extend(3.0, 5.0), 8.0);
/// assert_eq!(Tropical::zero(), f64::INFINITY); // "no path"
///
/// // Boolean: the same machinery computes reachability.
/// assert!(Boolean::extend(true, true));
/// assert!(!Boolean::extend(true, false));
/// ```
pub trait Semiring: Copy + Clone + Send + Sync + Debug + 'static {
    /// The weight domain. (`'static` so the SIMD dispatch layer can
    /// recognize `f64` domains by `TypeId` — every practical weight
    /// domain is a primitive anyway.)
    type W: Copy + PartialEq + Send + Sync + Debug + 'static;

    /// Identity of [`Self::combine`]: the weight of "no path at all".
    fn zero() -> Self::W;

    /// Identity of [`Self::extend`]: the weight of the empty path.
    fn one() -> Self::W;

    /// Choose between two alternative path weights (e.g. `min`).
    fn combine(a: Self::W, b: Self::W) -> Self::W;

    /// Concatenate two path weights (e.g. `+`).
    fn extend(a: Self::W, b: Self::W) -> Self::W;

    /// `true` iff `a` is strictly preferred to `b`, i.e.
    /// `combine(a, b) == a != b`. Drives "did this relaxation improve
    /// anything" checks.
    #[inline]
    fn better(a: Self::W, b: Self::W) -> bool {
        Self::combine(a, b) == a && a != b
    }

    /// `true` iff `w` means "unreachable".
    #[inline]
    fn is_zero(w: Self::W) -> bool {
        w == Self::zero()
    }

    /// `true` if a cycle of weight `w` is *absorbing*: appending it to a
    /// path keeps improving the path forever (a negative cycle under the
    /// tropical semiring). Distances through such a cycle are undefined.
    fn absorbing_cycle(w: Self::W) -> bool {
        Self::better(Self::extend(w, w), w) && Self::better(w, Self::one())
    }

    /// Approximate equality for weights. Exact `==` by default; the
    /// floating-point semirings override it with a relative tolerance so
    /// that "is this edge tight" tests survive re-association of sums
    /// (shortcut weights are sums evaluated in a different order than the
    /// underlying path).
    #[inline]
    fn approx_eq(a: Self::W, b: Self::W) -> bool {
        a == b
    }

    /// `true` if `combine` is a *selection*: it always returns one of its
    /// two arguments, ordered by a total preorder, keeping `a` on ties
    /// (the determinism convention every instance here follows). Selective
    /// semirings admit Dijkstra-style label-setting (the sparse-leaf path
    /// in `spsep-core`) and the change-flag pruning of the doubling kernel
    /// in [`crate::dense`]. Defaults to `false` so third-party semirings
    /// opt in explicitly.
    #[inline]
    fn is_selective() -> bool {
        false
    }

    /// The `f64` lane algebra of this semiring, if any — `None`
    /// (default) keeps every kernel on the scalar path. Overriding this
    /// is the single opt-in a semiring needs for the SIMD kernels; see
    /// [`LaneAlgebra`] for the exactness contract.
    #[inline]
    fn lane_algebra() -> Option<LaneAlgebra> {
        None
    }
}

/// Relative-tolerance comparison for `f64` path weights.
#[inline]
pub fn f64_approx_eq(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

/// Shortest paths with real (f64) weights: `(ℝ ∪ {+∞}, min, +, +∞, 0)`.
///
/// This is the semiring of the paper's headline result. Negative weights are
/// allowed; negative cycles are "absorbing" and detected during
/// preprocessing.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Tropical;

impl Semiring for Tropical {
    type W = f64;

    #[inline]
    fn approx_eq(a: f64, b: f64) -> bool {
        f64_approx_eq(a, b)
    }

    #[inline]
    fn zero() -> f64 {
        f64::INFINITY
    }

    #[inline]
    fn one() -> f64 {
        0.0
    }

    #[inline]
    fn combine(a: f64, b: f64) -> f64 {
        if a <= b {
            a
        } else {
            b
        }
    }

    #[inline]
    fn extend(a: f64, b: f64) -> f64 {
        // +∞ must annihilate even against -∞ partners; plain `+` does this
        // for all values that actually arise (we never produce -∞ weights).
        a + b
    }

    #[inline]
    fn better(a: f64, b: f64) -> bool {
        a < b
    }

    #[inline]
    fn absorbing_cycle(w: f64) -> bool {
        w < 0.0
    }

    #[inline]
    fn is_selective() -> bool {
        true
    }

    #[inline]
    fn lane_algebra() -> Option<LaneAlgebra> {
        Some(LaneAlgebra::MinAdd)
    }
}

/// Shortest paths with integer weights: `(ℤ ∪ {+∞}, min, +, +∞, 0)`.
///
/// Saturating extension keeps `+∞` (modelled as `i64::MAX`) absorbing.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TropicalInt;

impl Semiring for TropicalInt {
    type W = i64;

    #[inline]
    fn zero() -> i64 {
        i64::MAX
    }

    #[inline]
    fn one() -> i64 {
        0
    }

    #[inline]
    fn combine(a: i64, b: i64) -> i64 {
        a.min(b)
    }

    #[inline]
    fn extend(a: i64, b: i64) -> i64 {
        if a == i64::MAX || b == i64::MAX {
            i64::MAX
        } else {
            a.saturating_add(b)
        }
    }

    #[inline]
    fn better(a: i64, b: i64) -> bool {
        a < b
    }

    #[inline]
    fn absorbing_cycle(w: i64) -> bool {
        w < 0
    }

    #[inline]
    fn is_selective() -> bool {
        true
    }
}

/// Reachability: `({false, true}, ∨, ∧, false, true)`.
///
/// Running the augmentation + query under this semiring computes exactly the
/// paper's reachability / transitive-closure variant (Sections 4–5 discuss
/// replacing the shortest-path primitives by boolean matrix products).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Boolean;

impl Semiring for Boolean {
    type W = bool;

    #[inline]
    fn zero() -> bool {
        false
    }

    #[inline]
    fn one() -> bool {
        true
    }

    #[inline]
    fn combine(a: bool, b: bool) -> bool {
        a || b
    }

    #[inline]
    fn extend(a: bool, b: bool) -> bool {
        a && b
    }

    #[inline]
    fn better(a: bool, b: bool) -> bool {
        a && !b
    }

    #[inline]
    fn absorbing_cycle(_w: bool) -> bool {
        false
    }

    #[inline]
    fn is_selective() -> bool {
        true
    }
}

/// Longest paths: `(ℝ ∪ {-∞}, max, +, -∞, 0)`.
///
/// Only meaningful on graphs without positive cycles (e.g. DAGs — static
/// timing analysis); a positive cycle is absorbing and reported like a
/// negative cycle is under [`Tropical`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MaxPlus;

impl Semiring for MaxPlus {
    type W = f64;

    #[inline]
    fn approx_eq(a: f64, b: f64) -> bool {
        f64_approx_eq(a, b)
    }

    #[inline]
    fn zero() -> f64 {
        f64::NEG_INFINITY
    }

    #[inline]
    fn one() -> f64 {
        0.0
    }

    #[inline]
    fn combine(a: f64, b: f64) -> f64 {
        if a >= b {
            a
        } else {
            b
        }
    }

    #[inline]
    fn extend(a: f64, b: f64) -> f64 {
        a + b
    }

    #[inline]
    fn better(a: f64, b: f64) -> bool {
        a > b
    }

    #[inline]
    fn absorbing_cycle(w: f64) -> bool {
        w > 0.0
    }

    #[inline]
    fn is_selective() -> bool {
        true
    }

    #[inline]
    fn lane_algebra() -> Option<LaneAlgebra> {
        Some(LaneAlgebra::MaxAdd)
    }
}

/// Widest ("bottleneck") paths: `(ℝ ∪ {±∞}, max, min, -∞, +∞)`.
///
/// The weight of a path is its narrowest edge; we look for the widest path.
/// No cycle is absorbing (min is non-expansive), so the algebra is safe on
/// every digraph.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Bottleneck;

impl Semiring for Bottleneck {
    type W = f64;

    #[inline]
    fn approx_eq(a: f64, b: f64) -> bool {
        f64_approx_eq(a, b)
    }

    #[inline]
    fn zero() -> f64 {
        f64::NEG_INFINITY
    }

    #[inline]
    fn one() -> f64 {
        f64::INFINITY
    }

    #[inline]
    fn combine(a: f64, b: f64) -> f64 {
        if a >= b {
            a
        } else {
            b
        }
    }

    #[inline]
    fn extend(a: f64, b: f64) -> f64 {
        if a <= b {
            a
        } else {
            b
        }
    }

    #[inline]
    fn better(a: f64, b: f64) -> bool {
        a > b
    }

    #[inline]
    fn absorbing_cycle(_w: f64) -> bool {
        false
    }

    #[inline]
    fn is_selective() -> bool {
        true
    }

    #[inline]
    fn lane_algebra() -> Option<LaneAlgebra> {
        Some(LaneAlgebra::MaxMin)
    }
}

/// Most-reliable paths: `([0,1], max, ×, 0, 1)`.
///
/// Edge weights are success probabilities in `[0, 1]`; path weight is the
/// product. Since all weights are ≤ 1, no cycle is absorbing.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Reliability;

impl Semiring for Reliability {
    type W = f64;

    #[inline]
    fn approx_eq(a: f64, b: f64) -> bool {
        f64_approx_eq(a, b)
    }

    #[inline]
    fn zero() -> f64 {
        0.0
    }

    #[inline]
    fn one() -> f64 {
        1.0
    }

    #[inline]
    fn combine(a: f64, b: f64) -> f64 {
        if a >= b {
            a
        } else {
            b
        }
    }

    #[inline]
    fn extend(a: f64, b: f64) -> f64 {
        a * b
    }

    #[inline]
    fn better(a: f64, b: f64) -> bool {
        a > b
    }

    #[inline]
    fn absorbing_cycle(w: f64) -> bool {
        w > 1.0
    }

    #[inline]
    fn is_selective() -> bool {
        true
    }

    #[inline]
    fn lane_algebra() -> Option<LaneAlgebra> {
        Some(LaneAlgebra::MaxMul)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Check the semiring axioms on a sample of the weight domain.
    fn check_axioms<S: Semiring>(samples: &[S::W]) {
        for &a in samples {
            // Idempotency of combine.
            assert_eq!(S::combine(a, a), a, "combine not idempotent on {a:?}");
            // Identities.
            assert_eq!(S::combine(a, S::zero()), a);
            assert_eq!(S::combine(S::zero(), a), a);
            assert_eq!(S::extend(a, S::one()), a);
            assert_eq!(S::extend(S::one(), a), a);
            // zero annihilates extend.
            assert_eq!(S::extend(a, S::zero()), S::zero());
            assert_eq!(S::extend(S::zero(), a), S::zero());
            for &b in samples {
                // Commutativity of combine.
                assert_eq!(S::combine(a, b), S::combine(b, a));
                for &c in samples {
                    // Associativity.
                    assert_eq!(
                        S::combine(S::combine(a, b), c),
                        S::combine(a, S::combine(b, c))
                    );
                    assert_eq!(
                        S::extend(S::extend(a, b), c),
                        S::extend(a, S::extend(b, c))
                    );
                    // Distributivity of extend over combine.
                    assert_eq!(
                        S::extend(a, S::combine(b, c)),
                        S::combine(S::extend(a, b), S::extend(a, c))
                    );
                    assert_eq!(
                        S::extend(S::combine(b, c), a),
                        S::combine(S::extend(b, a), S::extend(c, a))
                    );
                }
            }
        }
    }

    #[test]
    fn tropical_axioms() {
        check_axioms::<Tropical>(&[0.0, 1.0, -2.5, 7.25, f64::INFINITY]);
    }

    #[test]
    fn tropical_int_axioms() {
        check_axioms::<TropicalInt>(&[0, 1, -2, 100, i64::MAX]);
    }

    #[test]
    fn boolean_axioms() {
        check_axioms::<Boolean>(&[false, true]);
    }

    #[test]
    fn maxplus_axioms() {
        check_axioms::<MaxPlus>(&[0.0, 1.0, -2.5, 7.25, f64::NEG_INFINITY]);
    }

    #[test]
    fn bottleneck_axioms() {
        check_axioms::<Bottleneck>(&[
            0.0,
            1.0,
            -2.5,
            7.25,
            f64::NEG_INFINITY,
            f64::INFINITY,
        ]);
    }

    #[test]
    fn reliability_axioms() {
        check_axioms::<Reliability>(&[0.0, 0.25, 0.5, 1.0]);
    }

    #[test]
    fn better_matches_combine() {
        assert!(Tropical::better(1.0, 2.0));
        assert!(!Tropical::better(2.0, 1.0));
        assert!(!Tropical::better(1.0, 1.0));
        assert!(Boolean::better(true, false));
        assert!(!Boolean::better(false, true));
        assert!(MaxPlus::better(2.0, 1.0));
        assert!(Bottleneck::better(3.0, 1.0));
    }

    #[test]
    fn absorbing_cycles() {
        assert!(Tropical::absorbing_cycle(-0.5));
        assert!(!Tropical::absorbing_cycle(0.0));
        assert!(!Tropical::absorbing_cycle(3.0));
        assert!(TropicalInt::absorbing_cycle(-1));
        assert!(!TropicalInt::absorbing_cycle(0));
        assert!(MaxPlus::absorbing_cycle(0.5));
        assert!(!MaxPlus::absorbing_cycle(-1.0));
        assert!(!Boolean::absorbing_cycle(true));
        assert!(!Bottleneck::absorbing_cycle(9.0));
        assert!(!Reliability::absorbing_cycle(0.9));
    }

    /// If a semiring claims to be selective, `combine` must return one of
    /// its arguments (bitwise, keeping `a` on ties) on every sample pair.
    fn check_selective<S: Semiring>(samples: &[S::W]) {
        assert!(S::is_selective());
        for &a in samples {
            for &b in samples {
                let c = S::combine(a, b);
                assert!(c == a || c == b, "combine({a:?}, {b:?}) = {c:?}");
                if a == b {
                    assert_eq!(c, a, "ties must keep the first argument");
                }
            }
        }
    }

    #[test]
    fn builtin_semirings_are_selective() {
        check_selective::<Tropical>(&[0.0, 1.0, -2.5, 7.25, f64::INFINITY]);
        check_selective::<TropicalInt>(&[0, 1, -2, 100, i64::MAX]);
        check_selective::<Boolean>(&[false, true]);
        check_selective::<MaxPlus>(&[0.0, 1.0, -2.5, f64::NEG_INFINITY]);
        check_selective::<Bottleneck>(&[0.0, -2.5, f64::NEG_INFINITY, f64::INFINITY]);
        check_selective::<Reliability>(&[0.0, 0.25, 0.5, 1.0]);
    }

    /// Every advertised lane algebra must tell the truth: the scalar
    /// `combine`/`extend` must equal the named lane operations (with the
    /// keep-`a`-on-ties convention) bit for bit, on a hostile sample set
    /// including ±0.0, ±∞ and denormals. The SIMD kernels rely on this.
    #[test]
    fn lane_algebra_descriptors_match_scalar_semantics() {
        fn check<S: Semiring<W = f64>>() {
            let alg = S::lane_algebra().expect("descriptor expected");
            let samples = [
                0.0,
                -0.0,
                1.0,
                -2.5,
                7.25,
                f64::MIN_POSITIVE / 8.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
            ];
            for &a in &samples {
                for &b in &samples {
                    let (c, e) = match alg {
                        LaneAlgebra::MinAdd => (if a <= b { a } else { b }, a + b),
                        LaneAlgebra::MaxAdd => (if a >= b { a } else { b }, a + b),
                        LaneAlgebra::MaxMin => {
                            (if a >= b { a } else { b }, if a <= b { a } else { b })
                        }
                        LaneAlgebra::MaxMul => (if a >= b { a } else { b }, a * b),
                    };
                    assert_eq!(
                        S::combine(a, b).to_bits(),
                        c.to_bits(),
                        "combine({a:?}, {b:?}) under {alg:?}"
                    );
                    let ext = S::extend(a, b);
                    assert_eq!(
                        ext.to_bits(),
                        e.to_bits(),
                        "extend({a:?}, {b:?}) under {alg:?} ({ext} vs {e})"
                    );
                }
            }
        }
        check::<Tropical>();
        check::<MaxPlus>();
        check::<Bottleneck>();
        check::<Reliability>();
        assert_eq!(TropicalInt::lane_algebra(), None, "i64 domain is scalar");
        assert_eq!(Boolean::lane_algebra(), None, "bitmatrix covers booleans");
    }

    #[test]
    fn tropical_infinity_is_absorbing_for_extend() {
        assert_eq!(Tropical::extend(f64::INFINITY, 5.0), f64::INFINITY);
        assert_eq!(TropicalInt::extend(i64::MAX, -5), i64::MAX);
        assert_eq!(TropicalInt::extend(-5, i64::MAX), i64::MAX);
    }
}
