//! Real-instance ingestion: DIMACS challenge files, CSV edge lists, and
//! binary CSR directories, normalized into a serving-ready [`DiGraph`].
//!
//! Road-network distributions come in three shapes, all supported here:
//!
//! * **DIMACS `.gr`** (9th DIMACS Implementation Challenge) — handled by
//!   the hardened [`crate::io::read_dimacs`] parser; this module adds
//!   the companion **`.ss`** auxiliary source file (`p aux sp ss`).
//! * **CSV edge lists** (`from,to,weight`, 0-based, optional header) —
//!   the simplest OSM-derived interchange form; [`read_csv_edges`] /
//!   [`write_csv_edges`] round-trip bit-exactly because `f64` weights
//!   print in shortest-round-trip form.
//! * **Binary CSR directories** (`first_out` / `head` / `weight` as
//!   little-endian `u32` files, rust_road_router convention) —
//!   [`read_csr_dir`] validates monotonicity and bounds before building.
//!
//! Raw extracts are rarely servable as-is: they are usually not strongly
//! connected (one-way streets at the clip boundary), and their weight
//! scales vary wildly (deciseconds, meters, float seconds). The
//! [`import`] pipeline fixes both — largest-strongly-connected-component
//! extraction (order-preserving, via [`crate::traversal::tarjan_scc`])
//! and mean-weight normalization — and reports exactly what it did in an
//! [`ImportReport`], so provenance survives into the artifact.
//!
//! Every malformed input yields a typed [`SpsepError`] (line-numbered
//! where lines exist) — never a panic; `testkit::import_corruptions()`
//! holds that line with a catalog of hostile inputs.
//!
//! ```
//! use spsep_graph::import::{import, read_csv_edges, ImportOptions};
//!
//! let csv = "from,to,weight\n0,1,2.5\n1,0,2.5\n1,2,1.0\n";
//! let g = read_csv_edges(csv.as_bytes())?;
//! assert_eq!((g.n(), g.m()), (3, 3));
//! // Vertex 2 is a sink ⇒ the largest SCC is {0, 1}.
//! let (core, report) = import(&g, ImportOptions::default())?;
//! assert_eq!((core.n(), core.m()), (2, 2));
//! assert_eq!(report.kept, vec![0, 1]);
//! # Ok::<(), spsep_graph::SpsepError>(())
//! ```

use crate::digraph::{DiGraph, Edge};
use crate::error::SpsepError;
use crate::io::{parse_field, read_dimacs};
use crate::traversal::tarjan_scc;
use std::io::BufRead;
use std::path::Path;

/// What the [`import`] pipeline is allowed to do to a raw instance.
#[derive(Clone, Copy, Debug)]
pub struct ImportOptions {
    /// Restrict to the largest strongly connected component (vertex ids
    /// are remapped but keep their relative order). Default `true`:
    /// distances between vertices in different SCCs are infinite, which
    /// most serving workloads treat as a data bug, not an answer.
    pub largest_scc: bool,
    /// Divide every weight by the mean weight so instances from
    /// different sources (deciseconds, meters, seconds) land on a
    /// comparable scale; the divisor is reported as
    /// [`ImportReport::weight_scale`]. Default `false`: committed
    /// instances keep their native units.
    pub normalize: bool,
}

impl Default for ImportOptions {
    fn default() -> Self {
        ImportOptions {
            largest_scc: true,
            normalize: false,
        }
    }
}

/// What [`import`] actually did — the provenance trail for an ingested
/// instance (E23 commits these numbers next to the bench results).
#[derive(Clone, Debug)]
pub struct ImportReport {
    /// Vertices in the raw input.
    pub nodes_parsed: usize,
    /// Arcs in the raw input.
    pub arcs_parsed: usize,
    /// Vertices surviving the pipeline.
    pub nodes_kept: usize,
    /// Arcs surviving the pipeline.
    pub arcs_kept: usize,
    /// Strongly connected components in the raw input.
    pub scc_count: usize,
    /// The divisor applied to every weight (`1.0` when `normalize` was
    /// off or the mean was not positive).
    pub weight_scale: f64,
    /// Old id of every kept vertex, in new-id order (ascending — the
    /// remap preserves relative order). Identity-sized when nothing was
    /// dropped.
    pub kept: Vec<u32>,
}

/// Run the ingestion pipeline on a parsed raw graph: largest-SCC
/// extraction, then weight normalization, per `opts`. See the
/// [module docs](self) for an end-to-end example.
pub fn import(
    g: &DiGraph<f64>,
    opts: ImportOptions,
) -> Result<(DiGraph<f64>, ImportReport), SpsepError> {
    let (comp, scc_count) = tarjan_scc(g);
    let mut report = ImportReport {
        nodes_parsed: g.n(),
        arcs_parsed: g.m(),
        nodes_kept: g.n(),
        arcs_kept: g.m(),
        scc_count,
        weight_scale: 1.0,
        kept: (0..g.n() as u32).collect(),
    };
    let mut out = g.clone();
    if opts.largest_scc && scc_count > 1 {
        let mut sizes = vec![0usize; scc_count];
        for &c in &comp {
            sizes[c as usize] += 1;
        }
        // Largest component, ties to the smallest component id.
        let best = (0..scc_count)
            .max_by_key(|&c| (sizes[c], std::cmp::Reverse(c)))
            .unwrap_or(0) as u32;
        let kept: Vec<usize> = (0..g.n()).filter(|&v| comp[v] == best).collect();
        if kept.is_empty() {
            return Err(SpsepError::invalid_graph(
                "largest SCC is empty (empty input graph)",
            ));
        }
        let (sub, map) = g.induced_subgraph(&kept);
        out = sub;
        report.kept = map.iter().map(|&v| v as u32).collect();
        report.nodes_kept = out.n();
        report.arcs_kept = out.m();
    }
    if opts.normalize && out.m() > 0 {
        let mean = out.edges().iter().map(|e| e.w).sum::<f64>() / out.m() as f64;
        if mean.is_finite() && mean > 0.0 {
            out = out.map_weights(|e| e.w / mean);
            report.weight_scale = mean;
        }
    }
    Ok((out, report))
}

/// Parse a DIMACS auxiliary source file (`p aux sp ss <count>` followed
/// by `s <vertex>` lines, 1-based), validating every id against `n`.
/// Returns the 0-based source vertices in file order.
///
/// ```
/// use spsep_graph::import::read_ss;
///
/// let ss = "c query sources\np aux sp ss 2\ns 1\ns 7\n";
/// assert_eq!(read_ss(ss.as_bytes(), 10)?, vec![0, 6]);
/// # Ok::<(), spsep_graph::SpsepError>(())
/// ```
pub fn read_ss<R: BufRead>(input: R, n: usize) -> Result<Vec<u32>, SpsepError> {
    let mut declared: Option<usize> = None;
    let mut sources: Vec<u32> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if declared.is_some() {
                    return Err(SpsepError::parse_at(lineno + 1, "duplicate problem line"));
                }
                if parts.next() != Some("aux")
                    || parts.next() != Some("sp")
                    || parts.next() != Some("ss")
                {
                    return Err(SpsepError::parse_at(
                        lineno + 1,
                        "expected 'p aux sp ss <count>'",
                    ));
                }
                let count: usize = parse_field(parts.next(), lineno, "source count")?;
                declared = Some(count);
                sources.reserve(count.min(1 << 24));
            }
            Some("s") => {
                if declared.is_none() {
                    return Err(SpsepError::parse_at(
                        lineno + 1,
                        "source before problem line",
                    ));
                }
                let v: usize = parse_field(parts.next(), lineno, "source vertex")?;
                if v == 0 || v > n {
                    return Err(SpsepError::parse_at(
                        lineno + 1,
                        format!("source vertex {v} outside 1..={n}"),
                    ));
                }
                sources.push((v - 1) as u32);
            }
            Some(other) => {
                return Err(SpsepError::parse_at(
                    lineno + 1,
                    format!("unknown record '{other}'"),
                ));
            }
            None => unreachable!("split_whitespace on a non-empty trimmed line"),
        }
    }
    let declared =
        declared.ok_or_else(|| SpsepError::parse("missing 'p aux sp ss' problem line"))?;
    if sources.len() != declared {
        return Err(SpsepError::parse(format!(
            "declared {declared} sources, found {}",
            sources.len()
        )));
    }
    Ok(sources)
}

/// Parse a CSV edge list: `from,to,weight` per line, 0-based vertex
/// ids, an optional `from,to,weight` header, `#`-prefixed comments.
/// `n` is the largest endpoint plus one. Weights must be finite and
/// non-negative — this is the road-extract interchange format, where a
/// negative travel time or length is always a data bug (unlike DIMACS
/// `.gr`, which legitimately carries potential-skewed negative
/// weights).
pub fn read_csv_edges<R: BufRead>(input: R) -> Result<DiGraph<f64>, SpsepError> {
    let mut edges: Vec<Edge<f64>> = Vec::new();
    let mut n = 0usize;
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if lineno == 0 && line.eq_ignore_ascii_case("from,to,weight") {
            continue;
        }
        let mut parts = line.split(',').map(str::trim);
        let from: usize = parse_field(parts.next(), lineno, "edge source")?;
        let to: usize = parse_field(parts.next(), lineno, "edge target")?;
        let w: f64 = parse_field(parts.next(), lineno, "edge weight")?;
        if let Some(extra) = parts.next() {
            return Err(SpsepError::parse_at(
                lineno + 1,
                format!("trailing field '{extra}'"),
            ));
        }
        if !w.is_finite() || w < 0.0 {
            return Err(SpsepError::parse_at(
                lineno + 1,
                format!("edge weight '{w}' is not a finite non-negative number"),
            ));
        }
        // u32 vertex ids everywhere downstream; reject anything larger
        // before it can wrap.
        if from > u32::MAX as usize - 1 || to > u32::MAX as usize - 1 {
            return Err(SpsepError::parse_at(
                lineno + 1,
                "vertex id exceeds u32 range",
            ));
        }
        n = n.max(from + 1).max(to + 1);
        edges.push(Edge::new(from, to, w));
    }
    Ok(DiGraph::from_edges(n, edges))
}

/// Serialize `g` as a CSV edge list readable by [`read_csv_edges`].
/// Weights print in shortest-round-trip form, so an export→import
/// cycle reproduces the graph bit-for-bit (proven by property test).
pub fn write_csv_edges<Wr: std::io::Write>(
    g: &DiGraph<f64>,
    out: &mut Wr,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut buf = String::from("from,to,weight\n");
    for e in g.edges() {
        // Writes into a String are infallible.
        let _ = writeln!(buf, "{},{},{}", e.from, e.to, e.w);
    }
    out.write_all(buf.as_bytes())
}

/// Read one little-endian `u32` array file of a CSR directory.
fn read_u32_file(dir: &Path, name: &str) -> Result<Vec<u32>, SpsepError> {
    let bytes = std::fs::read(dir.join(name))?;
    if bytes.len() % 4 != 0 {
        return Err(SpsepError::parse(format!(
            "CSR file '{name}': length {} is not a multiple of 4",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Parse a binary CSR directory (rust_road_router convention): three
/// little-endian `u32` array files — `first_out` (`n+1` entries,
/// monotone, last = `m`), `head` (`m` entries, each `< n`), and
/// `weight` (`m` entries, native integer units, e.g. travel time in
/// deciseconds). Every structural violation is a typed error.
pub fn read_csr_dir(dir: &Path) -> Result<DiGraph<f64>, SpsepError> {
    let first_out = read_u32_file(dir, "first_out")?;
    let head = read_u32_file(dir, "head")?;
    let weight = read_u32_file(dir, "weight")?;
    if first_out.is_empty() {
        return Err(SpsepError::parse("CSR file 'first_out' is empty"));
    }
    let n = first_out.len() - 1;
    let m = first_out[n] as usize;
    if head.len() != m || weight.len() != m {
        return Err(SpsepError::parse(format!(
            "CSR arc-count mismatch: first_out declares {m}, head has {}, weight has {}",
            head.len(),
            weight.len()
        )));
    }
    // Validate monotonicity before indexing `head`/`weight`: a
    // non-monotone prefix can put an earlier vertex's range past `m`
    // even though the final entry agrees with the arc count.
    for v in 0..n {
        if first_out[v] > first_out[v + 1] {
            return Err(SpsepError::parse(format!(
                "CSR file 'first_out' is not monotone at vertex {v}"
            )));
        }
    }
    let mut edges = Vec::with_capacity(m.min(1 << 24));
    for v in 0..n {
        let (lo, hi) = (first_out[v], first_out[v + 1]);
        for a in lo..hi {
            let to = head[a as usize];
            if to as usize >= n {
                return Err(SpsepError::parse(format!(
                    "CSR arc {a}: head {to} outside 0..{n}"
                )));
            }
            edges.push(Edge::new(v, to as usize, weight[a as usize] as f64));
        }
    }
    Ok(DiGraph::from_edges(n, edges))
}

/// Parse a raw instance from `path`, sniffing the container: a
/// directory is read as a [binary CSR directory](read_csr_dir), a
/// `.csv` file as a [CSV edge list](read_csv_edges), and anything else
/// (`.gr`, `.dimacs`, …) as a DIMACS `sp` file.
pub fn read_instance_path(path: &Path) -> Result<DiGraph<f64>, SpsepError> {
    if path.is_dir() {
        return read_csr_dir(path);
    }
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    match path.extension().and_then(|e| e.to_str()) {
        Some("csv") => read_csv_edges(reader),
        _ => read_dimacs(reader),
    }
}

/// One-call ingestion: [`read_instance_path`] + the [`import`] pipeline.
pub fn import_path(
    path: &Path,
    opts: ImportOptions,
) -> Result<(DiGraph<f64>, ImportReport), SpsepError> {
    let g = read_instance_path(path)?;
    import(&g, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_csv() -> &'static str {
        "from,to,weight\n0,1,1.5\n1,0,2\n1,2,0.5\n2,1,0.5\n3,0,9\n"
    }

    #[test]
    fn csv_parses_and_roundtrips() {
        let g = read_csv_edges(tiny_csv().as_bytes()).unwrap();
        assert_eq!((g.n(), g.m()), (4, 5));
        let mut buf = Vec::new();
        write_csv_edges(&g, &mut buf).unwrap();
        let g2 = read_csv_edges(buf.as_slice()).unwrap();
        assert_eq!(g.n(), g2.n());
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn csv_rejects_malformed() {
        for bad in [
            "0,1\n",                // missing weight
            "0,1,2,3\n",            // trailing field
            "0,1,nan\n",            // non-finite
            "0,1,inf\n",            // non-finite
            "0,1,-3.5\n",           // negative travel time
            "a,1,2\n",              // non-numeric id
            "0,99999999999999,1\n", // id overflows u32
        ] {
            let err = read_csv_edges(bad.as_bytes()).unwrap_err();
            assert!(matches!(err, SpsepError::Parse { .. }), "{bad:?} → {err}");
        }
    }

    #[test]
    fn scc_extraction_keeps_largest_and_preserves_order() {
        // 0↔1↔2 strongly connected; 3 dangles (arc into the SCC only).
        let g = read_csv_edges(tiny_csv().as_bytes()).unwrap();
        let (core, report) = import(&g, ImportOptions::default()).unwrap();
        assert_eq!(core.n(), 3);
        assert_eq!(report.kept, vec![0, 1, 2]);
        assert_eq!(report.scc_count, 2);
        assert_eq!(report.nodes_parsed, 4);
        assert_eq!(report.nodes_kept, 3);
        assert_eq!(report.arcs_kept, 4);
        // tarjan_scc again on the result: strongly connected.
        let (_, k) = tarjan_scc(&core);
        assert_eq!(k, 1);
    }

    #[test]
    fn normalization_reports_scale() {
        let g = read_csv_edges("0,1,10\n1,0,30\n".as_bytes()).unwrap();
        let opts = ImportOptions {
            normalize: true,
            ..Default::default()
        };
        let (out, report) = import(&g, opts).unwrap();
        assert_eq!(report.weight_scale, 20.0);
        let ws: Vec<f64> = out.edges().iter().map(|e| e.w).collect();
        assert_eq!(ws, vec![0.5, 1.5]);
    }

    #[test]
    fn ss_parses_and_validates() {
        let ss = "c sources\np aux sp ss 3\ns 1\ns 5\ns 10\n";
        assert_eq!(read_ss(ss.as_bytes(), 10).unwrap(), vec![0, 4, 9]);
        for bad in [
            "s 1\n",                        // source before problem line
            "p aux sp ss 1\n",              // count mismatch
            "p aux sp ss 1\ns 11\n",        // out of range
            "p aux sp ss 1\ns 0\n",         // ids are 1-based
            "p sp ss 1\ns 1\n",             // malformed header
            "p aux sp ss 1\ns 1\nq 2\n",    // unknown record
            "p aux sp ss 1\np aux sp ss 1\n", // duplicate header
        ] {
            let err = read_ss(bad.as_bytes(), 10).unwrap_err();
            assert!(matches!(err, SpsepError::Parse { .. }), "{bad:?} → {err}");
        }
    }

    #[test]
    fn csr_dir_roundtrip_and_rejection() {
        let dir = std::env::temp_dir().join(format!("spsep-csr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let words = |v: &[u32]| {
            v.iter()
                .flat_map(|x| x.to_le_bytes())
                .collect::<Vec<u8>>()
        };
        std::fs::write(dir.join("first_out"), words(&[0, 2, 3, 3])).unwrap();
        std::fs::write(dir.join("head"), words(&[1, 2, 0])).unwrap();
        std::fs::write(dir.join("weight"), words(&[15, 30, 45])).unwrap();
        let g = read_csr_dir(&dir).unwrap();
        assert_eq!((g.n(), g.m()), (3, 3));
        assert_eq!(g.edges()[1].w, 30.0);
        // head id out of range.
        std::fs::write(dir.join("head"), words(&[1, 9, 0])).unwrap();
        assert!(matches!(
            read_csr_dir(&dir).unwrap_err(),
            SpsepError::Parse { .. }
        ));
        // non-monotone first_out.
        std::fs::write(dir.join("head"), words(&[1, 2, 0])).unwrap();
        std::fs::write(dir.join("first_out"), words(&[0, 3, 2, 3])).unwrap();
        assert!(matches!(
            read_csr_dir(&dir).unwrap_err(),
            SpsepError::Parse { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn path_sniffing_dispatches() {
        let dir = std::env::temp_dir().join(format!("spsep-import-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let gr = dir.join("tiny.gr");
        std::fs::write(&gr, "p sp 2 2\na 1 2 1.5\na 2 1 2.5\n").unwrap();
        let csv = dir.join("tiny.csv");
        std::fs::write(&csv, "0,1,1.5\n1,0,2.5\n").unwrap();
        let a = read_instance_path(&gr).unwrap();
        let b = read_instance_path(&csv).unwrap();
        assert_eq!(a.edges(), b.edges());
        let (core, report) = import_path(&gr, ImportOptions::default()).unwrap();
        assert_eq!(core.n(), 2);
        assert_eq!(report.scc_count, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
