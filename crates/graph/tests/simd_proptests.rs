//! Property tests for the SIMD kernel tier: the auto-dispatched dense
//! kernels (AVX-512F / AVX2 on capable x86-64 hosts, the blocked scalar
//! fallback everywhere else — including `--no-default-features` builds,
//! where this whole suite degenerates to scalar-vs-naive and must still
//! hold) are required to be **bit-identical** to the naive reference on
//! adversarial matrices: NaN-free inputs that still contain `±INFINITY`
//! (so `extend` can manufacture NaN via `∞ + (−∞)` mid-kernel), signed
//! zeros, denormals, negative weights, and orders that are not multiples
//! of the 4/8-lane widths.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spsep_graph::dense::SemiMatrix;
use spsep_graph::semiring::{Boolean, Bottleneck, MaxPlus, Reliability, Semiring, Tropical};

/// Adversarial but NaN-free weight pool. `±∞` is included for every
/// semiring: under min-plus `+∞` is `0̄` (skipped), but `−∞` is a live
/// weight and `∞ + (−∞)` inside `extend` produces NaN — exactly the lane
/// semantics the cmp/blend emulation must reproduce.
fn hostile_weight(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..10u32) {
        0 => 0.0,
        1 => -0.0,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => f64::MIN_POSITIVE / 8.0,
        5 => -2.0e-310,
        6 => -(rng.gen_range(0.25..8.0)),
        _ => rng.gen_range(0.25..32.0),
    }
}

fn hostile_matrix<S: Semiring<W = f64>>(n: usize, seed: u64) -> SemiMatrix<S> {
    let mut rng = StdRng::seed_from_u64(seed);
    let flat = (0..n * n).map(|_| hostile_weight(&mut rng)).collect();
    SemiMatrix::from_flat(n, flat)
}

fn assert_bits<S: Semiring<W = f64>>(a: &SemiMatrix<S>, b: &SemiMatrix<S>, tag: &str) {
    for (idx, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{}: cell {} ({} vs {})",
            tag,
            idx,
            x,
            y
        );
    }
}

/// One semiring's full check: auto FW vs naive FW, auto square vs naive
/// square, and a pruned doubling sequence vs the naive sequence — bits,
/// ops and change flags all equal.
fn check_semiring<S: Semiring<W = f64>>(n: usize, seed: u64, tag: &str) {
    let base = hostile_matrix::<S>(n, seed);

    let mut auto_fw = base.clone();
    let mut naive_fw = base.clone();
    let oa = auto_fw.floyd_warshall();
    let on = naive_fw.floyd_warshall_naive();
    assert_bits(&auto_fw, &naive_fw, &format!("{tag} fw n={n}"));
    prop_assert_eq!(oa.ops, on.ops, "{} fw ops n={}", tag, n);
    prop_assert_eq!(oa.changed, on.changed, "{} fw changed n={}", tag, n);
    prop_assert_eq!(
        oa.absorbing_cycle,
        on.absorbing_cycle,
        "{} fw cycle n={}",
        tag,
        n
    );

    // Drive a doubling sequence so the tile-hint pruning of later steps
    // is exercised, not just the first full sweep. Two contracts hold:
    //
    // 1. Per step: from any matrix with *no* hint state, one auto step is
    //    bit-identical to one naive step (bits, ops, change flag) — even
    //    when mid-kernel NaN appears. Checked on fresh clones each round.
    // 2. Per sequence: the auto and forced-scalar blocked kernels evolve
    //    identical hint state, so the pruned sequences must agree exactly
    //    at every round.
    //
    // The naive kernel never prunes, so the *pruned sequence* is only
    // naive-equivalent while the fold is monotone; a mid-iteration NaN
    // (e.g. `∞ · 0` under reliability) voids selectivity and the
    // sequences may legitimately part ways — hence the fresh-clone form
    // of contract 1 rather than a naive sequence.
    let mut auto_sq = base.clone();
    let mut blocked_sq = base.clone();
    for round in 0..8 {
        let mut fresh_auto = SemiMatrix::<S>::from_flat(n, auto_sq.data().to_vec());
        let mut fresh_naive = SemiMatrix::<S>::from_flat(n, auto_sq.data().to_vec());
        let ofa = fresh_auto.square_step();
        let ofn = fresh_naive.square_step_naive();
        assert_bits(
            &fresh_auto,
            &fresh_naive,
            &format!("{tag} fresh square n={n} round={round}"),
        );
        prop_assert_eq!(ofa.ops, ofn.ops, "{} fresh ops n={} r={}", tag, n, round);
        prop_assert_eq!(
            ofa.changed,
            ofn.changed,
            "{} fresh changed n={} r={}",
            tag,
            n,
            round
        );

        let oa = auto_sq.square_step();
        let ob = blocked_sq.square_step_blocked();
        assert_bits(
            &auto_sq,
            &blocked_sq,
            &format!("{tag} pruned square n={n} round={round}"),
        );
        prop_assert_eq!(oa.ops, ob.ops, "{} pruned ops n={} r={}", tag, n, round);
        prop_assert_eq!(
            oa.changed,
            ob.changed,
            "{} pruned changed n={} r={}",
            tag,
            n,
            round
        );
        if !oa.changed {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// All four f64 semirings with a lane algebra, orders straddling the
    /// 4- and 8-lane widths (and their tails) by construction.
    #[test]
    fn simd_kernels_bit_identical_to_naive_on_hostile_matrices(
        n in 1usize..36, seed in any::<u64>()
    ) {
        check_semiring::<Tropical>(n, seed, "tropical");
        check_semiring::<MaxPlus>(n, seed ^ 0x1111, "maxplus");
        check_semiring::<Bottleneck>(n, seed ^ 0x2222, "bottleneck");
        check_semiring::<Reliability>(n, seed ^ 0x3333, "reliability");
    }

    /// Larger orders cross the parallel thresholds (n ≥ 64 / 128) so the
    /// vector path runs under real work distribution too.
    #[test]
    fn simd_kernels_bit_identical_past_parallel_thresholds(
        n in 129usize..140, seed in any::<u64>()
    ) {
        check_semiring::<Tropical>(n, seed, "tropical-par");
    }

    /// Non-f64 semirings must keep working untouched through the same
    /// entry points (they dispatch to the scalar tier by construction).
    #[test]
    fn scalar_only_semirings_unaffected_by_dispatch(
        n in 1usize..24, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = SemiMatrix::<Boolean>::identity(n);
        for _ in 0..2 * n {
            let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
            a.relax(i, j, true);
        }
        let mut b = a.clone();
        a.floyd_warshall();
        b.floyd_warshall_naive();
        prop_assert_eq!(a.data(), b.data());
    }
}
