//! Property tests for the graph substrate: bit matrices against a naive
//! oracle, dense semiring kernels against each other, generator
//! invariants, and the DIMACS round-trip.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spsep_graph::dense::SemiMatrix;
use spsep_graph::semiring::{Boolean, Bottleneck, Semiring, Tropical, TropicalInt};
use spsep_graph::{generators, BitMatrix, DiGraph, Edge};

fn naive_bool_multiply(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
    let mut out = BitMatrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut v = false;
            for k in 0..a.cols() {
                v |= a.get(i, k) && b.get(k, j);
            }
            out.set(i, j, v);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bitmatrix_multiply_matches_naive(
        r in 1usize..40, k in 1usize..80, c in 1usize..70, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = BitMatrix::zeros(r, k);
        let mut b = BitMatrix::zeros(k, c);
        for i in 0..r {
            for j in 0..k {
                a.set(i, j, rng.gen_bool(0.25));
            }
        }
        for i in 0..k {
            for j in 0..c {
                b.set(i, j, rng.gen_bool(0.25));
            }
        }
        prop_assert_eq!(a.multiply(&b), naive_bool_multiply(&a, &b));
    }

    #[test]
    fn transitive_closure_is_idempotent_and_reflexive(n in 1usize..50, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, rng.gen_bool(0.08));
            }
        }
        let c = m.transitive_closure();
        // Reflexive.
        for i in 0..n {
            prop_assert!(c.get(i, i));
        }
        // Idempotent (a closure is closed).
        prop_assert_eq!(c.transitive_closure(), c.clone());
        // Transitive spot check.
        for i in 0..n.min(8) {
            for j in 0..n.min(8) {
                for k in 0..n.min(8) {
                    if c.get(i, j) && c.get(j, k) {
                        prop_assert!(c.get(i, k));
                    }
                }
            }
        }
    }

    #[test]
    fn dense_fw_equals_repeated_squaring_tropical(n in 1usize..24, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = SemiMatrix::<Tropical>::identity(n);
        let mut b = SemiMatrix::<Tropical>::identity(n);
        for _ in 0..3 * n {
            let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
            let w = rng.gen_range(0.0..10.0);
            a.relax(i, j, w);
            b.relax(i, j, w);
        }
        a.floyd_warshall();
        b.repeated_squaring();
        for i in 0..n {
            for j in 0..n {
                let (x, y) = (a.get(i, j), b.get(i, j));
                if x.is_infinite() || y.is_infinite() {
                    prop_assert_eq!(x.is_infinite(), y.is_infinite());
                } else {
                    prop_assert!((x - y).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn dense_fw_equals_repeated_squaring_integer(n in 1usize..20, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = SemiMatrix::<TropicalInt>::identity(n);
        let mut b = a.clone();
        for _ in 0..4 * n {
            let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
            let w = rng.gen_range(0..100i64);
            a.relax(i, j, w);
            b.relax(i, j, w);
        }
        a.floyd_warshall();
        b.repeated_squaring();
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(a.get(i, j), b.get(i, j));
            }
        }
    }

    #[test]
    fn blocked_fw_bit_identical_to_naive(
        n in 1usize..70, density in 0.05f64..0.6, seed in any::<u64>()
    ) {
        // The k-tiled schedule must reproduce the naive kernel *bitwise*
        // (f64 min is order-sensitive through ties and NaN-free infs) and
        // report the same honest op count and absorbing verdict. Mildly
        // negative weights keep the absorbing branch alive.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = SemiMatrix::<Tropical>::identity(n);
        for i in 0..n {
            for j in 0..n {
                if i != j && rng.gen_bool(density) {
                    a.relax(i, j, rng.gen_range(-0.5..8.0));
                }
            }
        }
        let mut b = a.clone();
        let oa = a.floyd_warshall();
        let ob = b.floyd_warshall_naive();
        prop_assert_eq!(oa.ops, ob.ops);
        prop_assert_eq!(oa.absorbing_cycle, ob.absorbing_cycle);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(a.get(i, j).to_bits(), b.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn pruned_doubling_bit_identical_to_naive(n in 1usize..60, seed in any::<u64>()) {
        // A *sequence* of squarings drives the hint-pruned path (the
        // restricted k-scan only engages once per-tile change flags exist
        // from a previous step); every intermediate matrix must match the
        // clone-based naive step bit for bit.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = SemiMatrix::<Tropical>::identity(n);
        for _ in 0..3 * n {
            let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
            a.relax(i, j, rng.gen_range(0.1..10.0));
        }
        let mut b = a.clone();
        for _ in 0..4 {
            let oa = a.square_step();
            let ob = b.square_step_naive();
            prop_assert_eq!(oa.changed, ob.changed);
            prop_assert_eq!(oa.absorbing_cycle, ob.absorbing_cycle);
            for i in 0..n {
                for j in 0..n {
                    prop_assert_eq!(a.get(i, j).to_bits(), b.get(i, j).to_bits());
                }
            }
        }
    }

    #[test]
    fn dimacs_roundtrip_random_graphs(n in 1usize..60, m in 0usize..200, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnm(n, m, &mut rng);
        let mut buf = Vec::new();
        spsep_graph::io::write_dimacs(&g, &mut buf).unwrap();
        let g2 = spsep_graph::io::read_dimacs(buf.as_slice()).unwrap();
        prop_assert_eq!(g.n(), g2.n());
        prop_assert_eq!(g.m(), g2.m());
        for (a, b) in g.edges().iter().zip(g2.edges()) {
            prop_assert_eq!(a.from, b.from);
            prop_assert_eq!(a.to, b.to);
            prop_assert!((a.w - b.w).abs() < 1e-12 * (1.0 + a.w.abs()));
        }
    }

    #[test]
    fn grid_generator_degree_invariants(
        w in 1usize..10, h in 1usize..10, d in 1usize..5, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = [w, h, d];
        let (g, coords) = generators::grid(&dims, &mut rng);
        prop_assert_eq!(g.n(), w * h * d);
        prop_assert_eq!(coords.len(), g.n());
        // Out-degree = number of grid neighbours; total degree check via
        // the handshake: m = 2 · (#adjacent lattice pairs).
        let pairs = (w.saturating_sub(1)) * h * d
            + w * (h.saturating_sub(1)) * d
            + w * h * (d.saturating_sub(1));
        prop_assert_eq!(g.m(), 2 * pairs);
        // Skeleton is symmetric.
        let adj = g.undirected_skeleton();
        for (v, neigh) in adj.iter().enumerate() {
            for &u in neigh {
                prop_assert!(adj[u as usize].binary_search(&(v as u32)).is_ok());
            }
        }
    }

    #[test]
    fn skew_preserves_shortest_path_trees_up_to_potentials(
        n in 2usize..40, seed in any::<u64>()
    ) {
        // dist'(u,v) = dist(u,v) + π(u) − π(v): differences of the skewed
        // distance vectors are preserved.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnm(n, 4 * n, &mut rng);
        let skew = generators::skew_by_potentials(&g, 3.0, &mut rng);
        // Compute both distance vectors by generic Bellman–Ford.
        let d0 = bellman(&g, 0);
        let d1 = bellman(&skew, 0);
        for u in 0..n {
            for v in 0..n {
                if d0[u].is_finite() && d0[v].is_finite() {
                    // dist'(0,v) − dist'(0,u) − (dist(0,v) − dist(0,u))
                    // = (π(u) − π(v)) − (π(u) − π(v)) ... collapses to
                    // a per-pair constant; check the tree-order is sane:
                    // reachability sets agree.
                    prop_assert!(d1[u].is_finite() && d1[v].is_finite());
                }
            }
        }
    }

    #[test]
    fn bottleneck_matrix_closure_is_minimax(n in 2usize..14, seed in any::<u64>()) {
        // Closure under (max, min) gives the classic minimax path value;
        // verify against brute-force over all simple paths on tiny n via
        // FW ↔ squaring agreement plus monotonicity wrt adding edges.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = SemiMatrix::<Bottleneck>::identity(n);
        for _ in 0..2 * n {
            a.relax(rng.gen_range(0..n), rng.gen_range(0..n), rng.gen_range(0.0..5.0));
        }
        let mut b = a.clone();
        a.floyd_warshall();
        b.repeated_squaring();
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(a.get(i, j), b.get(i, j));
            }
        }
    }
}

fn bellman(g: &DiGraph<f64>, s: usize) -> Vec<f64> {
    let n = g.n();
    let mut dist = vec![f64::INFINITY; n];
    dist[s] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for e in g.edges() {
            let du = dist[e.from as usize];
            if du.is_finite() && du + e.w < dist[e.to as usize] {
                dist[e.to as usize] = du + e.w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[test]
fn boolean_semimatrix_equals_bitmatrix_closure() {
    let mut rng = StdRng::seed_from_u64(99);
    let n = 30;
    let mut dense = SemiMatrix::<Boolean>::identity(n);
    let mut bits = BitMatrix::zeros(n, n);
    for _ in 0..60 {
        let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
        dense.relax(i, j, true);
        bits.set(i, j, true);
    }
    dense.repeated_squaring();
    let closure = bits.transitive_closure();
    for i in 0..n {
        for j in 0..n {
            assert_eq!(dense.get(i, j), closure.get(i, j), "({i},{j})");
        }
    }
}

#[test]
fn edge_constructor_and_semiring_zero_interop() {
    let e = Edge::new(3, 4, Tropical::zero());
    assert!(Tropical::is_zero(e.w));
    assert_eq!(e.from, 3);
}
