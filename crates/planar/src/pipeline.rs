//! The Section 6 solve pipeline: per-hammock tables → `G′` → main
//! algorithm on `G′` → query composition.

use crate::generator::HammockGraph;
use rayon::prelude::*;
use spsep_core::{preprocess, Algorithm, Preprocessed};
use spsep_graph::semiring::Tropical;
use spsep_graph::{DiGraph, Edge};
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits};

/// Per-hammock distance tables.
struct HammockTables {
    /// `from_att[i][k]` = distance from attachment `i` to the `k`-th
    /// hammock vertex, *within the hammock*.
    from_att: Vec<Vec<f64>>,
    /// `to_att[i][k]` = distance from the `k`-th hammock vertex to
    /// attachment `i`, within the hammock.
    to_att: Vec<Vec<f64>>,
}

/// Preprocessed few-faces planar graph: answers `s`-source shortest paths
/// in `O(n + q log q)`-style work per source (the paper's Section 6
/// bound), after `O(n + q^{1.5})`-style preprocessing.
pub struct HammockSP<'a> {
    hg: &'a HammockGraph,
    tables: Vec<HammockTables>,
    /// The main algorithm of Sections 3–5 applied to `G′` (the graph on
    /// the `O(q)` attachment vertices).
    gprime: Preprocessed<Tropical>,
    /// The `G′` graph itself; edge `i` came from hammock
    /// `gprime_edge_hammock[i]` (needed to expand `G′` paths into real
    /// paths — the "compact routing table" role of Section 6).
    gprime_graph: DiGraph<f64>,
    gprime_edge_hammock: Vec<u32>,
    /// Hammock indices containing each vertex (attachments: several).
    hammocks_of: Vec<Vec<u32>>,
}

impl<'a> HammockSP<'a> {
    /// Run the preprocessing pipeline. Work/depth charged to `metrics`.
    pub fn preprocess(hg: &'a HammockGraph, metrics: &Metrics) -> HammockSP<'a> {
        // 1. Per-hammock tables, all hammocks in parallel. Each hammock is
        //    processed with the core separator machinery (ladders have
        //    O(1)-size BFS separators).
        metrics.phase(hg.hammocks.len());
        let tables: Vec<HammockTables> = hg
            .hammocks
            .par_iter()
            .map(|h| {
                let (sub, _map) = hg.graph.induced_subgraph(
                    &h.vertices.iter().map(|&v| v as usize).collect::<Vec<_>>(),
                );
                let adj = sub.undirected_skeleton();
                let tree = builders::bfs_tree(&adj, RecursionLimits::default());
                let local_metrics = Metrics::new();
                let pre = preprocess::<Tropical>(&sub, &tree, Algorithm::LeavesUp, &local_metrics)
                    .expect("hammock weights are positive");
                let rev = sub.reversed();
                let rtree = builders::bfs_tree(&rev.undirected_skeleton(), RecursionLimits::default());
                let rpre = preprocess::<Tropical>(&rev, &rtree, Algorithm::LeavesUp, &local_metrics)
                    .expect("hammock weights are positive");
                let att_local: Vec<usize> = h
                    .attachments
                    .iter()
                    .map(|&a| h.vertices.binary_search(&a).expect("attachment ∈ hammock"))
                    .collect();
                let from_att: Vec<Vec<f64>> =
                    att_local.iter().map(|&a| pre.distances_seq(a).0).collect();
                let to_att: Vec<Vec<f64>> =
                    att_local.iter().map(|&a| rpre.distances_seq(a).0).collect();
                HammockTables { from_att, to_att }
            })
            .collect();

        // 2. Assemble G′ on the skeleton vertices, remembering which
        //    hammock realizes each edge.
        let mut gp_edges: Vec<Edge<f64>> = Vec::new();
        let mut gprime_edge_hammock: Vec<u32> = Vec::new();
        for (hi, h) in hg.hammocks.iter().enumerate() {
            let t = &tables[hi];
            for (i, &ai) in h.attachments.iter().enumerate() {
                for (j, &aj) in h.attachments.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let aj_local = h.vertices.binary_search(&aj).unwrap();
                    let w = t.from_att[i][aj_local];
                    if w.is_finite() {
                        gp_edges.push(Edge::new(ai as usize, aj as usize, w));
                        gprime_edge_hammock.push(hi as u32);
                    }
                }
            }
        }
        let gprime_graph = DiGraph::from_edges(hg.q_vertices, gp_edges);

        // 3. Main algorithm on G′ with the skeleton's exact grid tree.
        let gp_tree = builders::grid_tree(&[hg.side, hg.side], RecursionLimits::default());
        let gprime = preprocess::<Tropical>(&gprime_graph, &gp_tree, Algorithm::LeavesUp, metrics)
            .expect("G′ inherits positive weights");

        // 4. Vertex → hammocks map (attachments belong to several).
        let mut hammocks_of: Vec<Vec<u32>> = vec![Vec::new(); hg.graph.n()];
        for (hi, h) in hg.hammocks.iter().enumerate() {
            for &v in &h.vertices {
                hammocks_of[v as usize].push(hi as u32);
            }
        }

        HammockSP {
            hg,
            tables,
            gprime,
            gprime_graph,
            gprime_edge_hammock,
            hammocks_of,
        }
    }

    /// `|E(G′)|` + `E⁺(G′)` diagnostics.
    pub fn gprime_stats(&self) -> spsep_core::AugmentStats {
        self.gprime.stats()
    }

    /// Single-source distances to all vertices of `G`.
    ///
    /// Composition: `d(s,x) = min( d_h(s,x) [same hammock],
    /// min_{a,a′} d_h(s→a) + d_{G′}(a→a′) + d_{h′}(a′→x) )`.
    pub fn distances(&self, source: usize) -> Vec<f64> {
        let n = self.hg.graph.n();
        let mut dist = vec![f64::INFINITY; n];
        dist[source] = 0.0;

        // Distances from `source` to the attachments of its hammock(s),
        // within those hammocks.
        let mut att_seed: Vec<(u32, f64)> = Vec::new(); // (attachment global id, d(s→a))
        for &hi in &self.hammocks_of[source] {
            let h = &self.hg.hammocks[hi as usize];
            let s_local = h.vertices.binary_search(&(source as u32)).unwrap();
            // Within-hammock distances from the source need one dedicated
            // small SSSP (the precomputed tables are attachment-rooted).
            let (sub, map) = self.hg.graph.induced_subgraph(
                &h.vertices.iter().map(|&v| v as usize).collect::<Vec<_>>(),
            );
            let local = spsep_baselines::dijkstra(&sub, s_local);
            for (k, &g_id) in map.iter().enumerate() {
                if local.dist[k] < dist[g_id] {
                    dist[g_id] = local.dist[k];
                }
            }
            for &a in &h.attachments {
                let a_local = h.vertices.binary_search(&a).unwrap();
                let d = local.dist[a_local];
                if d.is_finite() {
                    att_seed.push((a, d));
                }
            }
        }

        // G′ distances from each seeding attachment (≤ 4 of them, ≤ 2 per
        // hammock here), combined.
        let q = self.hg.q_vertices;
        let mut att_dist = vec![f64::INFINITY; q];
        for &(a, d) in &att_seed {
            let row = self.gprime.distances_seq(a as usize).0;
            for x in 0..q {
                let cand = d + row[x];
                if cand < att_dist[x] {
                    att_dist[x] = cand;
                }
            }
        }
        // Attachment ids are exactly 0..q in the generator.
        for x in 0..q {
            if att_dist[x] < dist[x] {
                dist[x] = att_dist[x];
            }
        }

        // Push attachment distances into every hammock.
        for (hi, h) in self.hg.hammocks.iter().enumerate() {
            let t = &self.tables[hi];
            for (i, &a) in h.attachments.iter().enumerate() {
                let base = att_dist[a as usize];
                if !base.is_finite() {
                    continue;
                }
                for (k, &v) in h.vertices.iter().enumerate() {
                    let cand = base + t.from_att[i][k];
                    if cand < dist[v as usize] {
                        dist[v as usize] = cand;
                    }
                }
            }
        }
        dist
    }

    /// Distances from many sources (parallel over sources).
    pub fn distances_multi(&self, sources: &[usize]) -> Vec<Vec<f64>> {
        sources.par_iter().map(|&s| self.distances(s)).collect()
    }

    /// Distance between one pair, using the within-hammock `to_att`
    /// tables so that only `O(att²)` `G′` lookups are needed.
    pub fn distance(&self, u: usize, v: usize, gprime_rows: &mut GPrimeCache<'_>) -> f64 {
        if u == v {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        // Same-hammock direct term.
        for &hi in &self.hammocks_of[u] {
            if self.hammocks_of[v].contains(&hi) {
                let h = &self.hg.hammocks[hi as usize];
                let (sub, _) = self.hg.graph.induced_subgraph(
                    &h.vertices.iter().map(|&x| x as usize).collect::<Vec<_>>(),
                );
                let ul = h.vertices.binary_search(&(u as u32)).unwrap();
                let vl = h.vertices.binary_search(&(v as u32)).unwrap();
                best = best.min(spsep_baselines::dijkstra(&sub, ul).dist[vl]);
            }
        }
        // Through-attachment term: d_h(u→a) + d_G'(a→a') + d_h'(a'→v).
        for &hu in &self.hammocks_of[u] {
            let h = &self.hg.hammocks[hu as usize];
            let t = &self.tables[hu as usize];
            let ul = h.vertices.binary_search(&(u as u32)).unwrap();
            for (i, &a) in h.attachments.iter().enumerate() {
                let d_ua = t.to_att[i][ul];
                if !d_ua.is_finite() {
                    continue;
                }
                let row = gprime_rows.row(a as usize);
                for &hv in &self.hammocks_of[v] {
                    let h2 = &self.hg.hammocks[hv as usize];
                    let t2 = &self.tables[hv as usize];
                    let vl = h2.vertices.binary_search(&(v as u32)).unwrap();
                    for (j, &a2) in h2.attachments.iter().enumerate() {
                        let cand = d_ua + row[a2 as usize] + t2.from_att[j][vl];
                        best = best.min(cand);
                    }
                }
            }
        }
        best
    }

    /// Make a `G′`-row cache for repeated [`HammockSP::distance`] calls.
    pub fn gprime_cache(&self) -> GPrimeCache<'_> {
        GPrimeCache {
            pre: &self.gprime,
            rows: std::collections::HashMap::new(),
        }
    }

    /// Shortest path within one hammock (by index), as global vertex ids.
    fn hammock_path(&self, hi: usize, u: usize, v: usize) -> Option<Vec<u32>> {
        let h = &self.hg.hammocks[hi];
        let (sub, map) = self.hg.graph.induced_subgraph(
            &h.vertices.iter().map(|&x| x as usize).collect::<Vec<_>>(),
        );
        let ul = h.vertices.binary_search(&(u as u32)).ok()?;
        let vl = h.vertices.binary_search(&(v as u32)).ok()?;
        let r = spsep_baselines::dijkstra(&sub, ul);
        let local = r.path_to(&sub, vl)?;
        Some(local.into_iter().map(|l| map[l as usize] as u32).collect())
    }

    /// Explicit shortest `u → v` path over the original graph — the
    /// routing realization of Section 6's "compact routing table"
    /// representation: within-hammock segments glued along a `G′` path,
    /// each `G′` edge expanded through the hammock that realized it.
    pub fn route(&self, u: usize, v: usize) -> Option<Vec<u32>> {
        if u == v {
            return Some(vec![u as u32]);
        }
        // Option 1: best same-hammock path.
        let mut best: Option<(f64, Vec<u32>)> = None;
        for &hi in &self.hammocks_of[u] {
            if !self.hammocks_of[v].contains(&hi) {
                continue;
            }
            if let Some(path) = self.hammock_path(hi as usize, u, v) {
                let w = self.path_weight(&path);
                if best.as_ref().is_none_or(|(bw, _)| w < *bw) {
                    best = Some((w, path));
                }
            }
        }
        // Option 2: through attachments a → a′ with a G′ middle.
        // Pick the argmin (a, a′) using the tables, then expand.
        let mut cache = self.gprime_cache();
        let mut choice: Option<(f64, usize, u32, u32, u32)> = None; // (w, hu, a, a2, hv)
        for &hu in &self.hammocks_of[u] {
            let h = &self.hg.hammocks[hu as usize];
            let t = &self.tables[hu as usize];
            let ul = h.vertices.binary_search(&(u as u32)).unwrap();
            for (i, &a) in h.attachments.iter().enumerate() {
                let d_ua = t.to_att[i][ul];
                if !d_ua.is_finite() {
                    continue;
                }
                let row = cache.row(a as usize).clone();
                for &hv in &self.hammocks_of[v] {
                    let h2 = &self.hg.hammocks[hv as usize];
                    let t2 = &self.tables[hv as usize];
                    let vl = h2.vertices.binary_search(&(v as u32)).unwrap();
                    for (j, &a2) in h2.attachments.iter().enumerate() {
                        let w = d_ua + row[a2 as usize] + t2.from_att[j][vl];
                        if w.is_finite()
                            && choice.as_ref().is_none_or(|(cw, ..)| w < *cw)
                        {
                            choice = Some((w, hu as usize, a, a2, hv));
                        }
                    }
                }
            }
        }
        if let Some((w, hu, a, a2, hv_tail)) = choice {
            if best.as_ref().is_none_or(|(bw, _)| w < *bw - 1e-12) {
                // Expand: u → a within hammock hu, then the G′ path
                // a → a2 edge by edge, then a2 → v within some hammock of v.
                let mut path = self.hammock_path(hu, u, a as usize)?;
                // G′ tight-edge tree from a.
                let (gdist, _) = self.gprime.distances_seq(a as usize);
                let parent = spsep_core::query::shortest_path_tree::<Tropical>(
                    &self.gprime_graph,
                    a as usize,
                    &gdist,
                );
                let gpath = spsep_core::query::path_from_tree(
                    &self.gprime_graph,
                    &parent,
                    a as usize,
                    a2 as usize,
                )?;
                // Expand each G′ tree edge through its hammock.
                let mut cur = a as usize;
                for hop in gpath.windows(2) {
                    let eid = {
                        // The parent table stores edge ids; rewalk to get it.
                        parent[hop[1] as usize]
                    };
                    let hi = self.gprime_edge_hammock[eid as usize] as usize;
                    let seg = self.hammock_path(hi, hop[0] as usize, hop[1] as usize)?;
                    path.extend_from_slice(&seg[1..]);
                    cur = hop[1] as usize;
                }
                // Tail: a2 → v within the argmin hammock.
                let seg = self.hammock_path(hv_tail as usize, cur, v)?;
                path.extend_from_slice(&seg[1..]);
                let pw = self.path_weight(&path);
                if best.as_ref().is_none_or(|(bw, _)| pw < *bw) {
                    best = Some((pw, path));
                }
            }
        }
        best.map(|(_, p)| p)
    }

    /// Total weight of a vertex path (best parallel edge per hop).
    fn path_weight(&self, path: &[u32]) -> f64 {
        let mut total = 0.0;
        for pair in path.windows(2) {
            let w = self
                .hg
                .graph
                .out_edges(pair[0] as usize)
                .filter(|e| e.to == pair[1])
                .map(|e| e.w)
                .fold(f64::INFINITY, f64::min);
            total += w;
        }
        total
    }
}

/// Memoized single-source rows of `G′` (each row costs one scheduled
/// query of the core engine; `k` pair queries touch ≤ `4k` rows).
pub struct GPrimeCache<'a> {
    pre: &'a Preprocessed<Tropical>,
    rows: std::collections::HashMap<usize, Vec<f64>>,
}

impl GPrimeCache<'_> {
    fn row(&mut self, a: usize) -> &Vec<f64> {
        self.rows
            .entry(a)
            .or_insert_with(|| self.pre.distances_seq(a).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_hammock_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distances_match_dijkstra_on_full_graph() {
        let mut rng = StdRng::seed_from_u64(21);
        let hg = generate_hammock_graph(3, 3, &mut rng);
        let metrics = Metrics::new();
        let sp = HammockSP::preprocess(&hg, &metrics);
        for s in [0usize, 8, 15, hg.graph.n() - 1] {
            let got = sp.distances(s);
            let want = spsep_baselines::dijkstra(&hg.graph, s).dist;
            for v in 0..hg.graph.n() {
                assert!(
                    (got[v] - want[v]).abs() < 1e-6 * (1.0 + want[v].abs()),
                    "source {s} vertex {v}: {} vs {}",
                    got[v],
                    want[v]
                );
            }
        }
    }

    #[test]
    fn pair_queries_match() {
        let mut rng = StdRng::seed_from_u64(22);
        let hg = generate_hammock_graph(3, 2, &mut rng);
        let metrics = Metrics::new();
        let sp = HammockSP::preprocess(&hg, &metrics);
        let mut cache = sp.gprime_cache();
        let truth0 = spsep_baselines::dijkstra(&hg.graph, 5).dist;
        for v in [0usize, 3, 10, 20, hg.graph.n() - 1] {
            let got = sp.distance(5, v, &mut cache);
            assert!(
                (got - truth0[v]).abs() < 1e-6 * (1.0 + truth0[v].abs()),
                "pair (5,{v}): {} vs {}",
                got,
                truth0[v]
            );
        }
    }

    #[test]
    fn multi_source_parallel() {
        let mut rng = StdRng::seed_from_u64(23);
        let hg = generate_hammock_graph(2, 2, &mut rng);
        let metrics = Metrics::new();
        let sp = HammockSP::preprocess(&hg, &metrics);
        let multi = sp.distances_multi(&[0, 1, 2]);
        for (i, &s) in [0usize, 1, 2].iter().enumerate() {
            assert_eq!(multi[i], sp.distances(s));
        }
    }

    #[test]
    fn gprime_is_small() {
        let mut rng = StdRng::seed_from_u64(24);
        let hg = generate_hammock_graph(4, 6, &mut rng);
        let metrics = Metrics::new();
        let sp = HammockSP::preprocess(&hg, &metrics);
        // G′ lives on q = 16 vertices regardless of n = 16 + 24·12.
        assert!(sp.gprime_stats().eplus_edges <= 16 * 16);
    }
}
