//! Generator for few-faces planar graphs with a known hammock
//! decomposition.
//!
//! Construction: a `side × side` planar grid **skeleton** supplies the
//! attachment vertices; every skeleton edge is replaced by a *ladder*
//! hammock — two parallel directed-both-ways rails of `ladder_len` rungs
//! — whose rail ends tie to the edge's two endpoints. Ladders are
//! outerplanar and meet the rest of the graph in exactly two attachment
//! vertices (Frederickson allows up to four). All non-attachment vertices
//! lie on the `O(side²)` faces adjacent to the skeleton, so
//! `q = Θ(side²)` while `n = Θ(side² · ladder_len)` — the `q ≪ n` regime
//! Section 6 targets.

use rand::Rng;
use spsep_graph::{DiGraph, Edge};

/// One hammock: its vertex set and its attachment vertices.
#[derive(Clone, Debug)]
pub struct Hammock {
    /// Global ids of all vertices of the hammock (sorted; includes the
    /// attachments).
    pub vertices: Vec<u32>,
    /// Global ids of the attachment vertices (≤ 4; here exactly 2).
    pub attachments: Vec<u32>,
}

/// A few-faces planar graph with its hammock decomposition.
#[derive(Clone, Debug)]
pub struct HammockGraph {
    /// The full graph `G`.
    pub graph: DiGraph<f64>,
    /// The hammocks (vertex sets partition `V` up to shared attachments).
    pub hammocks: Vec<Hammock>,
    /// Number of skeleton (attachment) vertices = ids `0..q_vertices`.
    pub q_vertices: usize,
    /// Skeleton grid side (the `G′` separator tree is the grid tree of
    /// `side × side`).
    pub side: usize,
    /// For every vertex, one hammock containing it (attachments belong to
    /// several; the first claimant is recorded).
    vertex_hammock: Vec<u32>,
}

impl HammockGraph {
    /// A hammock index containing vertex `v` (attachments belong to
    /// several; an arbitrary one is returned — query composition handles
    /// attachments uniformly anyway).
    pub fn hammock_of(&self, v: usize) -> usize {
        self.vertex_hammock[v] as usize
    }
}

/// Generate a hammock graph: `side × side` skeleton, every skeleton edge
/// replaced by a ladder of `ladder_len` rungs, weights uniform in `[1,2)`
/// scaled by per-edge jitter.
pub fn generate_hammock_graph(
    side: usize,
    ladder_len: usize,
    rng: &mut impl Rng,
) -> HammockGraph {
    assert!(side >= 2 && ladder_len >= 1);
    let q = side * side;
    let mut edges: Vec<Edge<f64>> = Vec::new();
    let mut hammocks: Vec<Hammock> = Vec::new();
    let mut next_vertex = q; // ladder vertices allocated after skeleton ids
    let mut vertex_hammock: Vec<u32> = vec![u32::MAX; q];

    let add_bidi = |edges: &mut Vec<Edge<f64>>, a: usize, b: usize, rng: &mut dyn rand::RngCore| {
        let r = |rng: &mut dyn rand::RngCore| {
            // Uniform in [1, 2).
            1.0 + (rng.next_u64() as f64 / u64::MAX as f64)
        };
        edges.push(Edge::new(a, b, r(rng)));
        edges.push(Edge::new(b, a, r(rng)));
    };

    let skeleton_id = |r: usize, c: usize| r * side + c;
    let mut skeleton_edges: Vec<(usize, usize)> = Vec::new();
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                skeleton_edges.push((skeleton_id(r, c), skeleton_id(r, c + 1)));
            }
            if r + 1 < side {
                skeleton_edges.push((skeleton_id(r, c), skeleton_id(r + 1, c)));
            }
        }
    }

    for (a, b) in skeleton_edges {
        // Two rails of `ladder_len` vertices each.
        let rail1: Vec<usize> = (0..ladder_len).map(|i| next_vertex + i).collect();
        let rail2: Vec<usize> = (0..ladder_len)
            .map(|i| next_vertex + ladder_len + i)
            .collect();
        next_vertex += 2 * ladder_len;
        // Rail chains.
        for rail in [&rail1, &rail2] {
            for w in rail.windows(2) {
                add_bidi(&mut edges, w[0], w[1], rng);
            }
        }
        // Rungs between the rails (outerplanar ladder).
        for i in 0..ladder_len {
            add_bidi(&mut edges, rail1[i], rail2[i], rng);
        }
        // Tie rail ends to the attachments.
        add_bidi(&mut edges, a, rail1[0], rng);
        add_bidi(&mut edges, a, rail2[0], rng);
        add_bidi(&mut edges, b, rail1[ladder_len - 1], rng);
        add_bidi(&mut edges, b, rail2[ladder_len - 1], rng);
        let mut vertices: Vec<u32> = rail1
            .iter()
            .chain(&rail2)
            .map(|&v| v as u32)
            .collect();
        vertices.push(a as u32);
        vertices.push(b as u32);
        vertices.sort_unstable();
        hammocks.push(Hammock {
            vertices,
            attachments: vec![a as u32, b as u32],
        });
    }

    let n = next_vertex;
    vertex_hammock.resize(n, u32::MAX);
    for (hi, h) in hammocks.iter().enumerate() {
        for &v in &h.vertices {
            // Attachments keep the first hammock that claimed them.
            if vertex_hammock[v as usize] == u32::MAX {
                vertex_hammock[v as usize] = hi as u32;
            }
        }
    }

    HammockGraph {
        graph: DiGraph::from_edges(n, edges),
        hammocks,
        q_vertices: q,
        side,
        vertex_hammock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let hg = generate_hammock_graph(3, 4, &mut rng);
        assert_eq!(hg.q_vertices, 9);
        // Skeleton edges: 2·3·2 = 12 hammocks.
        assert_eq!(hg.hammocks.len(), 12);
        assert_eq!(hg.graph.n(), 9 + 12 * 8);
        for h in &hg.hammocks {
            assert_eq!(h.attachments.len(), 2);
            assert_eq!(h.vertices.len(), 2 * 4 + 2);
            for &a in &h.attachments {
                assert!(h.vertices.binary_search(&a).is_ok());
            }
        }
    }

    #[test]
    fn hammocks_only_touch_via_attachments() {
        let mut rng = StdRng::seed_from_u64(2);
        let hg = generate_hammock_graph(3, 3, &mut rng);
        // Every edge must be internal to exactly one hammock.
        for e in hg.graph.edges() {
            let containing = hg
                .hammocks
                .iter()
                .filter(|h| {
                    h.vertices.binary_search(&e.from).is_ok()
                        && h.vertices.binary_search(&e.to).is_ok()
                })
                .count();
            assert_eq!(containing, 1, "edge {}→{}", e.from, e.to);
        }
        // Non-attachment vertices belong to exactly one hammock.
        for v in hg.q_vertices..hg.graph.n() {
            let count = hg
                .hammocks
                .iter()
                .filter(|h| h.vertices.binary_search(&(v as u32)).is_ok())
                .count();
            assert_eq!(count, 1, "vertex {v}");
        }
    }

    #[test]
    fn graph_is_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        let hg = generate_hammock_graph(4, 2, &mut rng);
        let comp =
            spsep_graph::traversal::undirected_components(&hg.graph.undirected_skeleton());
        assert!(comp.iter().all(|&c| c == 0));
    }
}
