//! Section 6: planar digraphs whose vertices lie on few faces.
//!
//! Frederickson's *hammock decomposition* splits such a graph into `O(q)`
//! outerplanar subgraphs ("hammocks"), each attached to the rest of the
//! graph through at most four vertices. The Pantziou–Spirakis–Zaroliagis
//! parallelization — which the paper improves — reduces shortest paths to
//! a graph `G′` on the `O(q)` attachment vertices; the paper's
//! contribution is to solve `G′` with a `k^{1/2}`-separator decomposition
//! instead of dense methods, giving `O(q^{1.5} + s(n + q log q))`-style
//! work.
//!
//! **Substitution (DESIGN.md):** Frederickson's decomposition *algorithm*
//! operates on an arbitrary embedding; here the [`generator`] produces a
//! few-faces planar graph *together with* its hammock decomposition
//! (ladders glued on a planar skeleton), and [`pipeline`] implements the
//! full solve path the paper describes:
//!
//! 1. per-hammock all-pairs between attachments, and attachment ↔ vertex
//!    tables (each hammock handled by the core separator machinery —
//!    outerplanar ladders have `O(1)` BFS separators);
//! 2. assembly of `G′` over the attachment vertices;
//! 3. the main algorithm of Sections 3–5 on `G′` with its grid separator
//!    tree;
//! 4. query composition `d(u,v) = min_{a,a′} d_h(u→a) ⊕ d_{G′}(a→a′) ⊕
//!    d_{h′}(a′→v)` (plus the within-hammock direct term).

pub mod generator;
pub mod pipeline;

pub use generator::{generate_hammock_graph, Hammock, HammockGraph};
pub use pipeline::HammockSP;
