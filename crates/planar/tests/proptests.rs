//! Property tests for the Section 6 pipeline: random hammock graphs must
//! produce exact distances through the `G′` reduction, from both full
//! queries and point queries.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep_planar::{generate_hammock_graph, HammockSP};
use spsep_pram::Metrics;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn hammock_distances_match_dijkstra(
        side in 2usize..5,
        ladder in 1usize..6,
        seed in any::<u64>(),
        src_sel in 0usize..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hg = generate_hammock_graph(side, ladder, &mut rng);
        let metrics = Metrics::new();
        let sp = HammockSP::preprocess(&hg, &metrics);
        let n = hg.graph.n();
        let source = src_sel % n;
        let got = sp.distances(source);
        let want = spsep_baselines::dijkstra(&hg.graph, source).dist;
        for v in 0..n {
            prop_assert!(
                (got[v] - want[v]).abs() < 1e-6 * (1.0 + want[v].abs()),
                "source {} vertex {}: {} vs {}", source, v, got[v], want[v]
            );
        }
    }

    #[test]
    fn hammock_point_queries_match(
        side in 2usize..4,
        ladder in 1usize..4,
        seed in any::<u64>(),
        u_sel in 0usize..1000,
        v_sel in 0usize..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hg = generate_hammock_graph(side, ladder, &mut rng);
        let metrics = Metrics::new();
        let sp = HammockSP::preprocess(&hg, &metrics);
        let n = hg.graph.n();
        let (u, v) = (u_sel % n, v_sel % n);
        let mut cache = sp.gprime_cache();
        let got = sp.distance(u, v, &mut cache);
        let want = spsep_baselines::dijkstra(&hg.graph, u).dist[v];
        prop_assert!(
            (got - want).abs() < 1e-6 * (1.0 + want.abs()),
            "pair ({u},{v}): {got} vs {want}"
        );
    }

    #[test]
    fn routed_paths_are_real_and_optimal(
        side in 2usize..4,
        ladder in 1usize..4,
        seed in any::<u64>(),
        u_sel in 0usize..1000,
        v_sel in 0usize..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hg = generate_hammock_graph(side, ladder, &mut rng);
        let metrics = Metrics::new();
        let sp = HammockSP::preprocess(&hg, &metrics);
        let n = hg.graph.n();
        let (u, v) = (u_sel % n, v_sel % n);
        let want = spsep_baselines::dijkstra(&hg.graph, u).dist[v];
        let path = sp.route(u, v).expect("hammock graphs are strongly connected");
        prop_assert_eq!(path[0] as usize, u);
        prop_assert_eq!(*path.last().unwrap() as usize, v);
        // Path must be real (consecutive arcs exist) and optimal.
        let mut total = 0.0;
        for pair in path.windows(2) {
            let w = hg
                .graph
                .out_edges(pair[0] as usize)
                .filter(|e| e.to == pair[1])
                .map(|e| e.w)
                .fold(f64::INFINITY, f64::min);
            prop_assert!(w.is_finite(), "arc {}→{} missing", pair[0], pair[1]);
            total += w;
        }
        prop_assert!(
            (total - want).abs() < 1e-6 * (1.0 + want.abs()),
            "routed weight {total} vs optimal {want}"
        );
    }

    #[test]
    fn generator_structure(side in 2usize..6, ladder in 1usize..8, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hg = generate_hammock_graph(side, ladder, &mut rng);
        // q skeleton vertices + 2·ladder vertices per hammock.
        let skeleton_edges = 2 * side * (side - 1);
        prop_assert_eq!(hg.hammocks.len(), skeleton_edges);
        prop_assert_eq!(hg.graph.n(), side * side + skeleton_edges * 2 * ladder);
        // Every vertex belongs to ≥ 1 hammock; interior ladder vertices
        // to exactly one.
        for v in hg.q_vertices..hg.graph.n() {
            let count = hg
                .hammocks
                .iter()
                .filter(|h| h.vertices.binary_search(&(v as u32)).is_ok())
                .count();
            prop_assert_eq!(count, 1);
        }
    }
}
