//! The workspace-wide error taxonomy, re-exported at the pipeline layer.
//!
//! [`SpsepError`] is *defined* in `spsep_graph` (the root of the crate
//! DAG, so that `spsep_separator` can also return it), but `spsep_core`
//! is the crate users interact with, so the taxonomy is surfaced here
//! too. See the [`spsep_graph::error`] module docs for the table mapping
//! each variant to the paper invariant it guards.

pub use spsep_graph::error::SpsepError;
