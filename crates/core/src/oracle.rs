//! The serving layer: prepare once, query many.
//!
//! The paper's cost model (Table 1) splits the problem into an expensive
//! **preprocessing** stage (build `E⁺`, Sections 3–5) and a cheap
//! **query** stage (`O(l·|E| + |E ∪ E⁺|)` work per source, Section 3.2).
//! That split only pays off if the preprocessing can be amortized over
//! many queries — which is exactly what [`Oracle`] packages:
//!
//! * [`Oracle::prepare`] runs the full pipeline once and
//!   [`Oracle::save`] persists the result as a versioned, checksummed
//!   `spsep-oracle/v1` snapshot ([`crate::io::write_snapshot`]);
//! * [`Oracle::load`] rehydrates a query-ready oracle from that snapshot
//!   in milliseconds — no augmentation re-run, only the cheap schedule
//!   compilation ([`crate::Preprocessed::compile`]);
//! * [`Oracle::distance`] / [`Oracle::source_table`] /
//!   [`Oracle::batch`] answer point-to-point, single-source, and bulk
//!   pair queries over the loaded instance.
//!
//! Distances computed through a saved-and-reloaded oracle are
//! **bit-identical** to those of the freshly prepared one (weights
//! travel as IEEE-754 bit patterns, and the schedule executes the same
//! deterministic relaxation order), at any thread count — the
//! differential suite in `crates/testkit` enforces this.
//!
//! # Caching
//!
//! Queries from the same source share one scheduled run: the oracle
//! keeps an LRU cache of materialized per-source distance tables
//! (capacity [`Oracle::set_cache_capacity`], default
//! [`DEFAULT_CACHE_CAPACITY`]). Hits, misses, and evictions are counted
//! ([`Oracle::cache_stats`]) and every query charges its relaxations to
//! the caller's [`Metrics`] and emits a `spsep_trace` span, so serving
//! workloads are observable with the same `--metrics`/`--trace` tooling
//! as the preprocessing pipeline.
//!
//! The cache is **sharded** for concurrent serving (the daemon in
//! `spsep-serve` hits one shared oracle from many worker threads): a
//! source maps to the shard `source % shards`, each shard holds its own
//! LRU state behind its own lock and its own hit/miss/eviction
//! counters, so concurrent queries for different shards never contend.
//! Within a shard, eviction is deterministic (least-recently-used by a
//! monotone access stamp), and [`Oracle::batch`] materializes missing
//! rows in sorted source order — the cache state after a batch is a
//! pure function of the query stream, independent of thread count.
//! Sharding never changes *answers* (a cached row is immutable and
//! bit-identical to a fresh scheduled run); it only partitions which
//! rows are resident.
//!
//! [`Oracle::set_cache_capacity`] takes `&self` and is safe to call
//! concurrently with in-flight queries — reconfiguration swaps the
//! whole sharded cache behind an `RwLock` that queries hold only for
//! the duration of a lookup or insert, never while computing a row.

use crate::augment::Augmentation;
use crate::io::{snapshot_from_bytes, write_snapshot, Snapshot};
use crate::iov2::{self, SnapshotV2};
use crate::query::Preprocessed;
use crate::{preprocess, Algorithm, AugmentStats};
use rayon::prelude::*;
use spsep_graph::semiring::Tropical;
use spsep_graph::{DiGraph, SlabBytes, SpsepError, Store};
use spsep_pram::{Counter, Metrics};
use spsep_separator::SepTree;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default capacity (in source rows) of the oracle's LRU table cache.
///
/// One row costs `8·n` bytes; 64 rows of a 10⁵-vertex graph are ~50 MB —
/// small enough to be a safe default, large enough that skewed query
/// streams (a few hot sources) hit almost always.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Upper bound on the number of lock shards of the row cache.
///
/// The actual shard count is `min(capacity, MAX_CACHE_SHARDS)` so that
/// every shard owns at least one row slot; 8 shards keep lock
/// contention negligible for the daemon's worker counts (1–8) without
/// fragmenting small caches.
pub const MAX_CACHE_SHARDS: usize = 8;

/// Counters of one lock shard of the row cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardCacheStats {
    /// Queries answered from this shard's cached tables.
    pub hits: u64,
    /// Queries that had to materialize a table in this shard.
    pub misses: u64,
    /// Tables this shard evicted to respect its capacity slice.
    pub evictions: u64,
    /// Tables currently resident in this shard.
    pub entries: usize,
    /// This shard's slice of the total capacity.
    pub capacity: usize,
}

/// Counters of the oracle's per-source table cache (aggregated over all
/// shards, with the per-shard breakdown in [`CacheStats::shards`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from a cached table.
    pub hits: u64,
    /// Queries that had to materialize a table.
    pub misses: u64,
    /// Tables evicted to respect the capacity bound.
    pub evictions: u64,
    /// Tables currently resident.
    pub entries: usize,
    /// Capacity bound (0 = caching disabled).
    pub capacity: usize,
    /// Per-shard breakdown (one entry per lock shard).
    pub shards: Vec<ShardCacheStats>,
}

/// Sharded LRU cache of materialized per-source distance tables.
///
/// Hand-rolled (the workspace vendors no external crates): sources map
/// to the shard `source % shards.len()`; each shard is a map from
/// source to `(access stamp, row)` plus a monotone tick behind its own
/// mutex, so concurrent lookups of different shards never contend.
/// Eviction removes the smallest stamp *within the shard*; stamps are
/// unique per shard, so eviction order is deterministic for a given
/// query stream.
struct RowCache {
    capacity: usize,
    shards: Vec<CacheShard>,
}

struct CacheShard {
    capacity: usize,
    inner: Mutex<RowCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

struct RowCacheInner {
    tick: u64,
    rows: HashMap<usize, (u64, Arc<[f64]>)>,
}

impl CacheShard {
    fn new(capacity: usize) -> CacheShard {
        CacheShard {
            capacity,
            inner: Mutex::new(RowCacheInner {
                tick: 0,
                rows: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up `source`, bumping its recency on a hit. Counts the
    /// hit/miss either way.
    fn get(&self, source: usize) -> Option<Arc<[f64]>> {
        // A poisoned lock (a panic while held — which the critical
        // sections below cannot cause) degrades to "always miss".
        let row = self.inner.lock().ok().and_then(|mut inner| {
            inner.tick += 1;
            let tick = inner.tick;
            inner.rows.get_mut(&source).map(|slot| {
                slot.0 = tick;
                Arc::clone(&slot.1)
            })
        });
        match &row {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        row
    }

    /// Insert a freshly computed row, evicting the least recently used
    /// entry of this shard if at capacity. No-op when capacity is 0.
    fn insert(&self, source: usize, row: Arc<[f64]>) {
        if self.capacity == 0 {
            return;
        }
        if let Ok(mut inner) = self.inner.lock() {
            inner.tick += 1;
            let tick = inner.tick;
            if !inner.rows.contains_key(&source) && inner.rows.len() >= self.capacity {
                if let Some(&victim) = inner
                    .rows
                    .iter()
                    .min_by_key(|(_, (stamp, _))| *stamp)
                    .map(|(s, _)| s)
                {
                    inner.rows.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            inner.rows.insert(source, (tick, row));
        }
    }

    fn stats(&self) -> ShardCacheStats {
        ShardCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().map(|i| i.rows.len()).unwrap_or(0),
            capacity: self.capacity,
        }
    }
}

impl RowCache {
    fn new(capacity: usize) -> RowCache {
        let num_shards = capacity.clamp(1, MAX_CACHE_SHARDS);
        // Distribute the capacity across shards, earlier shards first;
        // num_shards ≤ capacity, so every shard gets at least one slot
        // (unless capacity is 0, which disables caching entirely).
        let base = capacity / num_shards;
        let extra = capacity % num_shards;
        let shards = (0..num_shards)
            .map(|i| CacheShard::new(base + usize::from(i < extra)))
            .collect();
        RowCache { capacity, shards }
    }

    fn shard(&self, source: usize) -> &CacheShard {
        &self.shards[source % self.shards.len()]
    }

    fn get(&self, source: usize) -> Option<Arc<[f64]>> {
        self.shard(source).get(source)
    }

    fn insert(&self, source: usize, row: Arc<[f64]>) {
        if self.capacity == 0 {
            return;
        }
        self.shard(source).insert(source, row);
    }

    fn stats(&self) -> CacheStats {
        let shards: Vec<ShardCacheStats> = self.shards.iter().map(CacheShard::stats).collect();
        let mut agg = CacheStats {
            capacity: self.capacity,
            ..CacheStats::default()
        };
        for s in &shards {
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.evictions += s.evictions;
            agg.entries += s.entries;
        }
        agg.shards = shards;
        agg
    }
}

/// The separator tree of an oracle, possibly still in its serialized
/// form.
///
/// Queries never touch the tree — only re-exporting the oracle as a v1
/// snapshot does — so an oracle loaded from a `spsep-oracle/v2`
/// snapshot keeps the tree as the opaque (checksummed) `TREE` section
/// bytes and decodes it lazily on first use. A semantically corrupt
/// tree section therefore surfaces as a typed error from
/// [`Oracle::save`], never as load-time work or a panic.
enum TreeRepr {
    /// A decoded, validated tree (freshly prepared or v1-loaded).
    Decoded(SepTree),
    /// The undecoded v1 tree section payload out of a v2 snapshot.
    Encoded(Store<u8>),
}

/// A query-ready distance oracle over a preprocessed instance.
///
/// Build one with [`Oracle::prepare`] (fresh preprocessing) or
/// [`Oracle::load`] (from a persisted snapshot); both yield the same
/// answers bit-for-bit.
///
/// ```
/// use spsep_core::{oracle::Oracle, Algorithm};
/// use spsep_pram::Metrics;
/// use spsep_separator::{builders, RecursionLimits};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let (g, _) = spsep_graph::generators::grid(&[6, 6], &mut rng);
/// let tree = builders::grid_tree(&[6, 6], RecursionLimits::default());
///
/// let metrics = Metrics::new();
/// let oracle = Oracle::prepare(g, tree, Algorithm::LeavesUp, &metrics)?;
///
/// // Persist, reload, and query: prepare once, serve many.
/// let mut snapshot = Vec::new();
/// oracle.save(&mut snapshot)?;
/// let served = Oracle::load(snapshot.as_slice())?;
/// let d = served.distance(0, 35, &metrics)?;
/// assert!(d.is_finite());
/// assert_eq!(d.to_bits(), oracle.distance(0, 35, &metrics)?.to_bits());
/// # Ok::<(), spsep_core::SpsepError>(())
/// ```
pub struct Oracle {
    graph: DiGraph<f64>,
    tree: TreeRepr,
    algo: Algorithm,
    pre: Preprocessed<Tropical>,
    /// The sharded row cache. The outer `RwLock` exists only so
    /// [`Oracle::set_cache_capacity`] can swap the whole cache from
    /// `&self` while queries are in flight; the query path holds the
    /// read lock only across a shard lookup or insert, never while a
    /// row is being computed.
    cache: RwLock<RowCache>,
    /// The Theorem 4.1/5.1 work/depth envelope check taken right after
    /// preprocessing. `None` for oracles rehydrated from a snapshot
    /// (the measured counters existed only in the preparing process);
    /// the CLI persists it next to the snapshot instead (see
    /// [`crate::analysis::ledger_to_text`]).
    ledger: Option<crate::analysis::WorkLedger>,
}

impl Oracle {
    /// Run the full preprocessing pipeline (validation, `E⁺`
    /// construction with `algo`, schedule compilation) and wrap the
    /// result in a query-ready oracle. Work and depth are charged to
    /// `metrics`.
    ///
    /// # Errors
    ///
    /// Everything [`crate::preprocess`] can report:
    /// [`SpsepError::InvalidDecomposition`],
    /// [`SpsepError::AbsorbingCycle`], [`SpsepError::Executor`].
    pub fn prepare(
        graph: DiGraph<f64>,
        tree: SepTree,
        algo: Algorithm,
        metrics: &Metrics,
    ) -> Result<Oracle, SpsepError> {
        let pre = preprocess::<Tropical>(&graph, &tree, algo, metrics)?;
        // Snapshot the envelope check now: the report must reflect
        // preprocessing only, before query-time relaxations pollute the
        // measured side.
        let ledger = crate::analysis::work_ledger(&tree, algo, &metrics.report(), None);
        Ok(Oracle {
            graph,
            tree: TreeRepr::Decoded(tree),
            algo,
            pre,
            cache: RwLock::new(RowCache::new(DEFAULT_CACHE_CAPACITY)),
            ledger: Some(ledger),
        })
    }

    /// Wrap an already-deserialized [`Snapshot`] (the snapshot reader
    /// has validated it) — only the cheap schedule compilation runs.
    pub fn from_snapshot(snapshot: Snapshot) -> Oracle {
        let _span = spsep_trace::span!("oracle.compile", n = snapshot.graph.n());
        let Snapshot {
            graph,
            tree,
            algo,
            augmentation,
        } = snapshot;
        let pre = Preprocessed::compile(&graph, &tree, augmentation);
        Oracle {
            graph,
            tree: TreeRepr::Decoded(tree),
            algo,
            pre,
            cache: RwLock::new(RowCache::new(DEFAULT_CACHE_CAPACITY)),
            ledger: None,
        }
    }

    /// Wrap a validated zero-copy [`SnapshotV2`] — no compilation at
    /// all: the compiled query state is borrowed from the snapshot
    /// buffer, and the tree stays in its serialized form until first
    /// needed (see [`Oracle::save`]).
    pub fn from_snapshot_v2(snapshot: SnapshotV2) -> Oracle {
        let SnapshotV2 {
            graph,
            tree_bytes,
            algo,
            pre,
        } = snapshot;
        Oracle {
            graph,
            tree: TreeRepr::Encoded(tree_bytes),
            algo,
            pre,
            cache: RwLock::new(RowCache::new(DEFAULT_CACHE_CAPACITY)),
            ledger: None,
        }
    }

    /// Persist this oracle as an `spsep-oracle/v1` snapshot.
    ///
    /// # Errors
    ///
    /// [`SpsepError::Io`] if writing to `out` fails;
    /// [`SpsepError::Parse`] if the oracle was loaded from a v2
    /// snapshot whose (checksummed but lazily decoded) tree section
    /// turns out to be semantically corrupt.
    pub fn save<W: Write>(&self, out: &mut W) -> Result<(), SpsepError> {
        let mut span = spsep_trace::span!("oracle.save", n = self.graph.n());
        let augmentation = Augmentation::<Tropical> {
            eplus: self.pre.eplus().to_vec(),
            stats: self.pre.stats(),
        };
        let bytes_before = self.graph.m() + augmentation.eplus.len();
        span.add_ops(bytes_before as u64);
        match &self.tree {
            TreeRepr::Decoded(tree) => {
                write_snapshot(&self.graph, tree, self.algo, &augmentation, out)
            }
            TreeRepr::Encoded(bytes) => {
                let tree = spsep_separator::io::tree_from_bytes(bytes)?;
                write_snapshot(&self.graph, &tree, self.algo, &augmentation, out)
            }
        }
    }

    /// Persist this oracle as a zero-copy `spsep-oracle/v2` snapshot
    /// (see [`crate::iov2`]): the compiled query state is laid out as
    /// aligned slabs that [`Oracle::load_path`] can borrow straight out
    /// of a memory mapping.
    ///
    /// # Errors
    ///
    /// [`SpsepError::Io`] if writing to `out` fails;
    /// [`SpsepError::Parse`] on a big-endian host (the format is
    /// little-endian only).
    pub fn save_v2<W: Write>(&self, out: &mut W) -> Result<(), SpsepError> {
        let mut span = spsep_trace::span!("oracle.save_v2", n = self.graph.n());
        span.add_ops((self.graph.m() + self.pre.eplus().len()) as u64);
        let bytes = match &self.tree {
            TreeRepr::Decoded(tree) => {
                let tb = spsep_separator::io::tree_to_bytes(tree);
                iov2::snapshot_v2_to_bytes(&self.graph, &tb, self.algo, &self.pre)?
            }
            TreeRepr::Encoded(tb) => {
                iov2::snapshot_v2_to_bytes(&self.graph, tb, self.algo, &self.pre)?
            }
        };
        out.write_all(&bytes)?;
        Ok(())
    }

    /// Rehydrate an oracle from an owned byte buffer, dispatching on
    /// the sniffed format version (v1 decodes and recompiles; v2
    /// borrows the compiled state out of an aligned copy of the bytes).
    fn from_bytes(bytes: Vec<u8>) -> Result<Oracle, SpsepError> {
        if iov2::sniff_version(&bytes) == Some(iov2::SNAPSHOT_VERSION_V2) {
            let snapshot = {
                let _span = spsep_trace::span!("oracle.load_v2");
                iov2::snapshot_v2_from_slab(Arc::new(SlabBytes::from_vec(bytes)))?
            };
            return Ok(Oracle::from_snapshot_v2(snapshot));
        }
        let snapshot = {
            let _span = spsep_trace::span!("oracle.load");
            snapshot_from_bytes(&bytes)?
        };
        Ok(Oracle::from_snapshot(snapshot))
    }

    /// Load an oracle from a snapshot previously written by
    /// [`Oracle::save`] or [`Oracle::save_v2`] (or `spsep-cli
    /// prepare`). The format version is sniffed from the header, so one
    /// entry point serves both generations.
    ///
    /// # Errors
    ///
    /// [`SpsepError::Io`] on read failure; [`SpsepError::Parse`] on any
    /// corruption (bad magic, version skew — including v1 bytes
    /// relabelled as v2 and vice versa — checksum mismatch, truncation,
    /// semantic damage caught by the section parsers);
    /// [`SpsepError::InvalidDecomposition`] if a v1 graph and tree do
    /// not form a valid instance.
    pub fn load<R: Read>(mut input: R) -> Result<Oracle, SpsepError> {
        let mut bytes = Vec::new();
        input.read_to_end(&mut bytes)?;
        Oracle::from_bytes(bytes)
    }

    /// Load an oracle from a snapshot file, **memory-mapping** v2
    /// snapshots instead of reading them: the CSR arrays, relaxation
    /// buckets, and edge slabs are borrowed from the `MAP_SHARED`
    /// read-only mapping, so load time is dominated by the checksum +
    /// validation sweep (no per-edge decode, no copies) and every
    /// process serving the same file shares one physical page-cache
    /// copy. v1 snapshots fall back to the streaming [`Oracle::load`].
    ///
    /// # Errors
    ///
    /// As [`Oracle::load`], plus [`SpsepError::Io`] if the file cannot
    /// be opened or mapped.
    pub fn load_path(path: &Path) -> Result<Oracle, SpsepError> {
        let mut file = std::fs::File::open(path)?;
        let mut head = [0u8; 12];
        let mut filled = 0usize;
        while filled < head.len() {
            match file.read(&mut head[filled..])? {
                0 => break,
                k => filled += k,
            }
        }
        if iov2::sniff_version(&head[..filled]) == Some(iov2::SNAPSHOT_VERSION_V2) {
            let snapshot = {
                let _span = spsep_trace::span!("oracle.load_v2_mmap");
                let slab = SlabBytes::map_file(&file)?;
                iov2::snapshot_v2_from_slab(Arc::new(slab))?
            };
            return Ok(Oracle::from_snapshot_v2(snapshot));
        }
        use std::io::Seek;
        file.seek(std::io::SeekFrom::Start(0))?;
        Oracle::load(std::io::BufReader::new(file))
    }

    /// Whether this oracle's arrays are borrowed from a snapshot slab
    /// (v2 load) rather than owned (fresh prepare / v1 load). Purely
    /// observational — answers are identical either way.
    pub fn is_slab_backed(&self) -> bool {
        matches!(self.pre.aug_edges, Store::Slab(_))
    }

    /// Replace the table cache with an empty one of capacity `capacity`
    /// (rows; 0 disables caching). Resets the cache counters.
    ///
    /// Safe to call concurrently with in-flight queries and with other
    /// reconfigurations (the serving daemon shares the oracle as
    /// `Arc<Oracle>` across worker threads): the swap happens under a
    /// write lock that queries only hold across individual cache
    /// operations, so a query racing a resize either sees the old cache
    /// or the new (empty) one — its *answer* is unaffected either way,
    /// because cached rows are immutable and bit-identical to fresh
    /// scheduled runs.
    pub fn set_cache_capacity(&self, capacity: usize) {
        let mut guard = match self.cache.write() {
            Ok(g) => g,
            // A poisoned lock cannot leave RowCache in a broken state
            // (the writer only swaps the value); recover and proceed.
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard = RowCache::new(capacity);
    }

    /// Builder-style [`Oracle::set_cache_capacity`].
    #[must_use]
    pub fn with_cache_capacity(self, capacity: usize) -> Oracle {
        self.set_cache_capacity(capacity);
        self
    }

    /// Run `f` with a read guard on the current cache. The guard is
    /// held only for the duration of `f` — callers must not compute
    /// rows inside it. A poisoned lock (impossible from the cache's own
    /// critical sections) is recovered, not propagated.
    fn with_cache<T>(&self, f: impl FnOnce(&RowCache) -> T) -> T {
        match self.cache.read() {
            Ok(guard) => f(&guard),
            Err(poisoned) => f(&poisoned.into_inner()),
        }
    }

    fn check_vertex(&self, v: usize, role: &str) -> Result<(), SpsepError> {
        if v >= self.graph.n() {
            return Err(SpsepError::invalid_vertex(
                v.min(u32::MAX as usize) as u32,
                format!("query {role} out of range 0..{}", self.graph.n()),
            ));
        }
        Ok(())
    }

    /// Materialize (or fetch from cache) the full distance table from
    /// `source`. Relaxations of a cache miss are charged to `metrics`.
    fn row(&self, source: usize, metrics: &Metrics) -> Arc<[f64]> {
        if let Some(row) = self.with_cache(|c| c.get(source)) {
            return row;
        }
        let (dist, relaxations) = self.pre.schedule().run_seq(source);
        metrics.work(Counter::Relaxation, relaxations);
        let row: Arc<[f64]> = dist.into();
        self.with_cache(|c| c.insert(source, Arc::clone(&row)));
        row
    }

    /// Point-to-point distance `u → v` (`f64::INFINITY` if `v` is
    /// unreachable). One scheduled run on a cache miss, a table lookup
    /// on a hit.
    ///
    /// # Errors
    ///
    /// [`SpsepError::InvalidGraph`] if either endpoint is out of range.
    pub fn distance(&self, u: usize, v: usize, metrics: &Metrics) -> Result<f64, SpsepError> {
        self.check_vertex(u, "source")?;
        self.check_vertex(v, "target")?;
        let _span = spsep_trace::span!("oracle.distance", source = u, target = v);
        Ok(self.row(u, metrics)[v])
    }

    /// The full single-source distance table from `u`, shared with the
    /// cache (cheap to clone, immutable).
    ///
    /// # Errors
    ///
    /// [`SpsepError::InvalidGraph`] if `u` is out of range.
    pub fn source_table(&self, u: usize, metrics: &Metrics) -> Result<Arc<[f64]>, SpsepError> {
        self.check_vertex(u, "source")?;
        let _span = spsep_trace::span!("oracle.source_table", source = u);
        Ok(self.row(u, metrics))
    }

    /// Bulk point-to-point queries: distances for `pairs`, in input
    /// order.
    ///
    /// Pairs are grouped by source; tables the cache already holds are
    /// reused (one hit per distinct source), and the missing tables are
    /// materialized **in parallel** across sources through the rayon
    /// pool. Each table is computed by the sequential schedule run, so
    /// results — and the final cache state, filled in ascending source
    /// order — are bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// [`SpsepError::InvalidGraph`] if any endpoint is out of range
    /// (checked up front; no partial work).
    pub fn batch(
        &self,
        pairs: &[(usize, usize)],
        metrics: &Metrics,
    ) -> Result<Vec<f64>, SpsepError> {
        for &(u, v) in pairs {
            self.check_vertex(u, "source")?;
            self.check_vertex(v, "target")?;
        }
        let mut span = spsep_trace::span!("oracle.batch", pairs = pairs.len());
        // Distinct sources, ascending: deterministic compute + insert order.
        let mut sources: Vec<usize> = pairs.iter().map(|&(u, _)| u).collect();
        sources.sort_unstable();
        sources.dedup();
        // Rows this batch needs, pinned locally so evictions during the
        // fill cannot invalidate answers mid-batch.
        let mut local: HashMap<usize, Arc<[f64]>> = HashMap::new();
        let mut missing: Vec<usize> = Vec::new();
        for &s in &sources {
            match self.with_cache(|c| c.get(s)) {
                Some(row) => {
                    local.insert(s, row);
                }
                None => missing.push(s),
            }
        }
        span.add_ops(missing.len() as u64);
        let computed: Vec<(Vec<f64>, u64)> = missing
            .par_iter()
            .map(|&s| self.pre.schedule().run_seq(s))
            .collect();
        for (&s, (dist, relaxations)) in missing.iter().zip(computed) {
            metrics.work(Counter::Relaxation, relaxations);
            let row: Arc<[f64]> = dist.into();
            self.with_cache(|c| c.insert(s, Arc::clone(&row)));
            local.insert(s, row);
        }
        Ok(pairs
            .iter()
            .map(|&(u, v)| {
                let Some(row) = local.get(&u) else {
                    // Every source was resolved into `local` above.
                    unreachable!("batch source {u} missing from the local row set")
                };
                row[v]
            })
            .collect())
    }

    /// Cache counters (hits, misses, evictions, occupancy), aggregated
    /// over all shards with the per-shard breakdown attached.
    pub fn cache_stats(&self) -> CacheStats {
        self.with_cache(RowCache::stats)
    }

    /// Total row-cache hits only — no shard mutexes, just one relaxed
    /// atomic load per shard, so the serving daemon can sample it
    /// before and after every request to attribute per-request hits in
    /// its flight recorder.
    pub fn cache_hits_total(&self) -> u64 {
        self.with_cache(|cache| {
            cache
                .shards
                .iter()
                .map(|s| s.hits.load(Ordering::Relaxed))
                .sum()
        })
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Number of original edges.
    pub fn m(&self) -> usize {
        self.graph.m()
    }

    /// Which `E⁺` construction prepared this oracle.
    pub fn algo(&self) -> Algorithm {
        self.algo
    }

    /// Augmentation statistics (`|E⁺|`, `d_G`, leaf bound, raw pairs).
    pub fn stats(&self) -> AugmentStats {
        self.pre.stats()
    }

    /// The Theorem 4.1/5.1 envelope check captured by
    /// [`Oracle::prepare`]; `None` for snapshot-loaded oracles (load
    /// the persisted sidecar instead, see
    /// [`crate::analysis::ledger_from_text`]).
    pub fn ledger(&self) -> Option<&crate::analysis::WorkLedger> {
        self.ledger.as_ref()
    }

    /// Attach a work/depth ledger (e.g. one reloaded from a sidecar
    /// file) to a snapshot-loaded oracle so downstream telemetry can
    /// export it.
    pub fn set_ledger(&mut self, ledger: crate::analysis::WorkLedger) {
        self.ledger = Some(ledger);
    }

    /// Per-source arc-scan bound of the compiled schedule.
    pub fn arcs_per_query(&self) -> u64 {
        self.pre.arcs_per_query()
    }

    /// The underlying preprocessed instance (advanced use: path
    /// recovery, custom schedule runs).
    pub fn preprocessed(&self) -> &Preprocessed<Tropical> {
        &self.pre
    }

    /// The graph this oracle serves.
    pub fn graph(&self) -> &DiGraph<f64> {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spsep_separator::{builders, RecursionLimits};

    fn grid_oracle(dims: [usize; 2], seed: u64) -> Oracle {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (g, _) = spsep_graph::generators::grid(&dims, &mut rng);
        let tree = builders::grid_tree(&dims, RecursionLimits::default());
        Oracle::prepare(g, tree, Algorithm::LeavesUp, &Metrics::new()).unwrap()
    }

    #[test]
    fn save_load_roundtrip_is_bit_identical() {
        let oracle = grid_oracle([7, 6], 21);
        let metrics = Metrics::new();
        let mut buf = Vec::new();
        oracle.save(&mut buf).unwrap();
        let served = Oracle::load(buf.as_slice()).unwrap();
        assert_eq!(served.n(), oracle.n());
        assert_eq!(served.m(), oracle.m());
        assert_eq!(served.algo(), oracle.algo());
        assert_eq!(served.stats().eplus_edges, oracle.stats().eplus_edges);
        for s in 0..oracle.n() {
            let a = oracle.source_table(s, &metrics).unwrap();
            let b = served.source_table(s, &metrics).unwrap();
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "source {s}");
            }
        }
    }

    #[test]
    fn save_v2_load_roundtrip_is_bit_identical_and_slab_backed() {
        let oracle = grid_oracle([7, 6], 29);
        let metrics = Metrics::new();
        let mut v2 = Vec::new();
        oracle.save_v2(&mut v2).unwrap();
        let served = Oracle::load(v2.as_slice()).unwrap();
        assert!(served.is_slab_backed());
        assert!(!oracle.is_slab_backed());
        assert_eq!(served.n(), oracle.n());
        assert_eq!(served.m(), oracle.m());
        assert_eq!(served.algo(), oracle.algo());
        assert_eq!(served.stats().eplus_edges, oracle.stats().eplus_edges);
        assert_eq!(served.arcs_per_query(), oracle.arcs_per_query());
        for s in 0..oracle.n() {
            let a = oracle.source_table(s, &metrics).unwrap();
            let b = served.source_table(s, &metrics).unwrap();
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "source {s}");
            }
        }
        // A v2-loaded oracle can re-export both formats (the lazily
        // decoded tree round-trips through the opaque TREE section).
        let mut v1 = Vec::new();
        served.save(&mut v1).unwrap();
        let via_v1 = Oracle::load(v1.as_slice()).unwrap();
        let mut v2_again = Vec::new();
        served.save_v2(&mut v2_again).unwrap();
        assert_eq!(v2, v2_again, "v2 snapshots are canonical bytes");
        let d1 = via_v1.distance(0, 17, &metrics).unwrap();
        let d2 = served.distance(0, 17, &metrics).unwrap();
        assert_eq!(d1.to_bits(), d2.to_bits());
    }

    #[test]
    fn load_path_memory_maps_v2_and_streams_v1() {
        let oracle = grid_oracle([6, 6], 30);
        let metrics = Metrics::new();
        let dir = std::env::temp_dir().join(format!("spsep-oracle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let v1_path = dir.join("snap.v1");
        let v2_path = dir.join("snap.v2");
        oracle.save(&mut std::fs::File::create(&v1_path).unwrap()).unwrap();
        oracle.save_v2(&mut std::fs::File::create(&v2_path).unwrap()).unwrap();
        let from_v1 = Oracle::load_path(&v1_path).unwrap();
        let from_v2 = Oracle::load_path(&v2_path).unwrap();
        assert!(!from_v1.is_slab_backed());
        #[cfg(unix)]
        assert!(from_v2.is_slab_backed());
        for s in [0usize, 7, 35] {
            let a = from_v1.source_table(s, &metrics).unwrap();
            let b = from_v2.source_table(s, &metrics).unwrap();
            let c = oracle.source_table(s, &metrics).unwrap();
            for ((x, y), z) in a.iter().zip(b.iter()).zip(c.iter()) {
                assert_eq!(x.to_bits(), z.to_bits(), "v1 source {s}");
                assert_eq!(y.to_bits(), z.to_bits(), "v2 source {s}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_skew_both_directions_is_a_typed_error() {
        let oracle = grid_oracle([5, 5], 31);
        let mut v1 = Vec::new();
        oracle.save(&mut v1).unwrap();
        let mut v2 = Vec::new();
        oracle.save_v2(&mut v2).unwrap();
        // v1 bytes relabelled as v2: the v2 parser rejects them.
        let mut skew = v1.clone();
        skew[8..12].copy_from_slice(&2u32.to_le_bytes());
        let Err(err) = Oracle::load(skew.as_slice()) else {
            panic!("v1 bytes relabelled as v2 must fail")
        };
        assert!(matches!(err, SpsepError::Parse { .. }), "{err}");
        // v2 bytes relabelled as v1: the v1 parser rejects them.
        let mut skew = v2.clone();
        skew[8..12].copy_from_slice(&1u32.to_le_bytes());
        let Err(err) = Oracle::load(skew.as_slice()) else {
            panic!("v2 bytes relabelled as v1 must fail")
        };
        assert!(matches!(err, SpsepError::Parse { .. }), "{err}");
        // An unknown future version is rejected with its number named.
        let mut skew = v2;
        skew[8..12].copy_from_slice(&7u32.to_le_bytes());
        let Err(err) = Oracle::load(skew.as_slice()) else {
            panic!("unknown version must fail")
        };
        assert!(err.to_string().contains('7'), "{err}");
    }

    #[test]
    fn distance_agrees_with_preprocessed_and_counts_cache() {
        let oracle = grid_oracle([6, 6], 22);
        let metrics = Metrics::new();
        let (row0, _) = oracle.preprocessed().distances_seq(0);
        let d = oracle.distance(0, 35, &metrics).unwrap();
        assert_eq!(d.to_bits(), row0[35].to_bits());
        // Second query from the same source hits the cache.
        let before = metrics.work_of(Counter::Relaxation);
        let d2 = oracle.distance(0, 17, &metrics).unwrap();
        assert_eq!(d2.to_bits(), row0[17].to_bits());
        assert_eq!(metrics.work_of(Counter::Relaxation), before);
        let stats = oracle.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_row_within_a_shard() {
        // Capacity 16 → MAX_CACHE_SHARDS (8) shards of 2 rows each.
        // Sources 0, 8, 16 all land in shard 0 (source % 8).
        let oracle = grid_oracle([6, 6], 23).with_cache_capacity(16);
        let metrics = Metrics::new();
        oracle.distance(0, 1, &metrics).unwrap(); // shard 0: {0}
        oracle.distance(8, 2, &metrics).unwrap(); // shard 0: {0, 8}
        oracle.distance(0, 3, &metrics).unwrap(); // hit → 0 most recent
        oracle.distance(16, 3, &metrics).unwrap(); // full → evicts 8
        let stats = oracle.cache_stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.shards.len(), MAX_CACHE_SHARDS);
        assert_eq!(stats.shards[0].entries, 2);
        assert_eq!(stats.shards[0].evictions, 1);
        // 8 was evicted: querying it again misses; 0 still hits.
        let misses = oracle.cache_stats().misses;
        oracle.distance(0, 4, &metrics).unwrap();
        assert_eq!(oracle.cache_stats().misses, misses);
        oracle.distance(8, 4, &metrics).unwrap();
        assert_eq!(oracle.cache_stats().misses, misses + 1);
    }

    #[test]
    fn shard_layout_splits_the_capacity_exactly() {
        let oracle = grid_oracle([5, 5], 27);
        for capacity in [0, 1, 2, 7, 8, 9, 64] {
            oracle.set_cache_capacity(capacity);
            let stats = oracle.cache_stats();
            assert_eq!(stats.capacity, capacity);
            assert_eq!(
                stats.shards.len(),
                capacity.clamp(1, MAX_CACHE_SHARDS),
                "capacity {capacity}"
            );
            let total: usize = stats.shards.iter().map(|s| s.capacity).sum();
            assert_eq!(total, capacity, "capacity {capacity}");
            if capacity > 0 {
                assert!(stats.shards.iter().all(|s| s.capacity >= 1));
            }
        }
    }

    #[test]
    fn concurrent_queries_and_resizes_never_change_answers() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let oracle = std::sync::Arc::new(grid_oracle([6, 6], 28));
        let metrics = Metrics::new();
        let expected: Vec<u64> = (0..36)
            .map(|v| oracle.distance(0, v, &metrics).unwrap().to_bits())
            .collect();
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let resizer = {
            let oracle = std::sync::Arc::clone(&oracle);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut cap = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    oracle.set_cache_capacity(cap % 5);
                    cap += 1;
                }
            })
        };
        let workers: Vec<_> = (0..4)
            .map(|t| {
                let oracle = std::sync::Arc::clone(&oracle);
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let metrics = Metrics::new();
                    for i in 0..200 {
                        let v = (t * 7 + i) % 36;
                        let d = oracle.distance(0, v, &metrics).unwrap();
                        assert_eq!(d.to_bits(), expected[v], "target {v}");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        resizer.join().unwrap();
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let oracle = grid_oracle([5, 5], 24).with_cache_capacity(0);
        let metrics = Metrics::new();
        oracle.distance(3, 4, &metrics).unwrap();
        oracle.distance(3, 5, &metrics).unwrap();
        let stats = oracle.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn batch_matches_individual_queries() {
        let oracle = grid_oracle([7, 5], 25);
        let metrics = Metrics::new();
        let pairs: Vec<(usize, usize)> = (0..20).map(|i| (i % 5, (i * 7) % 35)).collect();
        let bulk = oracle.batch(&pairs, &metrics).unwrap();
        let fresh = grid_oracle([7, 5], 25);
        for (&(u, v), d) in pairs.iter().zip(&bulk) {
            let single = fresh.distance(u, v, &metrics).unwrap();
            assert_eq!(d.to_bits(), single.to_bits(), "pair ({u}, {v})");
        }
        // 5 distinct sources → 5 misses, and the next batch is all hits.
        assert_eq!(oracle.cache_stats().misses, 5);
        let again = oracle.batch(&pairs, &metrics).unwrap();
        assert_eq!(again, bulk);
        assert_eq!(oracle.cache_stats().misses, 5);
        assert_eq!(oracle.cache_stats().hits, 5);
    }

    #[test]
    fn out_of_range_queries_are_typed_errors() {
        let oracle = grid_oracle([4, 4], 26);
        let metrics = Metrics::new();
        assert!(oracle.distance(99, 0, &metrics).is_err());
        assert!(oracle.distance(0, 99, &metrics).is_err());
        assert!(oracle.source_table(99, &metrics).is_err());
        assert!(oracle.batch(&[(0, 1), (99, 0)], &metrics).is_err());
        // A failed batch does no partial work.
        assert_eq!(oracle.cache_stats().misses, 0);
    }
}
