//! The `spsep-oracle/v2` zero-copy snapshot format.
//!
//! Where `spsep-oracle/v1` (see [`crate::io`]) serializes the *inputs*
//! of query compilation (graph + tree + `E⁺`) and recompiles the
//! schedule on every load, v2 persists the **compiled query state
//! itself** — the CSR arrays of the graph, the augmented edge slab, the
//! relaxation buckets, the phase sequence, the separator-locality rank —
//! as aligned little-endian sections that are *borrowed* straight out
//! of the snapshot buffer ([`spsep_graph::Slab`]). Loading validates
//! headers, checksums, and semantic invariants, then hands out views:
//! no per-edge decode, no per-element allocation. With
//! [`spsep_graph::SlabBytes::map_file`] the buffer is a `MAP_SHARED`
//! read-only mapping, so any number of daemon processes serving the
//! same snapshot share one physical page-cache copy.
//!
//! # Layout
//!
//! All integers little-endian; the format is rejected with a typed
//! error on big-endian hosts (both directions — nothing silently
//! byte-swaps).
//!
//! ```text
//! offset 0    magic    "SPSEPORC"                  (8 bytes)
//! offset 8    u32      version (= 2)
//! offset 12   u32      augmentation algorithm (0 | 1 | 2)
//! offset 16   u32      section count (= 14)
//! offset 20   u32      reserved (= 0)
//! offset 24   section table: 14 × 32-byte entries
//!                 tag      4 bytes
//!                 pad      4 bytes (= 0)
//!                 u64      payload offset (absolute, 64-byte aligned)
//!                 u64      payload length in bytes
//!                 u64      FNV-1a 64 checksum of the payload
//! payloads    each starting at the 64-byte boundary after its
//!             predecessor, the gap zero-filled; the first at the
//!             boundary after the section table
//! trailer     "SPSEPEND" immediately after the last payload (8 bytes)
//! ```
//!
//! The layout is **canonical**: offsets are fully determined by the
//! lengths, padding must be zero, and sections appear in the fixed
//! order below — the same oracle always snapshots to byte-identical
//! files, and any deviation (shifted offset, tampered padding, trailing
//! bytes) is a typed [`SpsepError::Parse`].
//!
//! | tag    | element type      | contents                                   |
//! |--------|-------------------|--------------------------------------------|
//! | `META` | scalars (80 B)    | `n, m, |E⁺|, d_G, leaf bound, raw pairs, max sources, total phases, bucket count, sequence length` |
//! | `AEDG` | `Edge<f64>` ×(m+A)| `E` then `E⁺` (the augmented edge slab)    |
//! | `OOFF` | `u32` ×(n+1)      | out-CSR offsets of `G`                     |
//! | `OADJ` | `u32` ×m          | out-CSR edge ids                           |
//! | `IOFF` | `u32` ×(n+1)      | in-CSR offsets                             |
//! | `IADJ` | `u32` ×m          | in-CSR edge ids                            |
//! | `LVLS` | `u32` ×n          | vertex levels (`u32::MAX` = undefined)     |
//! | `NORD` | `u32` ×n          | separator-locality rank (a permutation)    |
//! | `SEQN` | `u32` ×phases     | bucket index per compiled phase            |
//! | `BOFF` | `u64` ×3(nb+1)    | per-bucket prefix offsets into BSRC/BGRP/BARC |
//! | `BSRC` | `u32`             | concatenated bucket source lists           |
//! | `BGRP` | `Group` (12 B)    | concatenated per-target reduction groups   |
//! | `BARC` | `ArcRec<f64>`     | concatenated relaxation arcs (16 B)        |
//! | `TREE` | bytes             | the v1 tree section payload, **opaque**    |
//!
//! The `TREE` payload is carried as-is (checksummed but not decoded at
//! load time): queries never touch the tree, so it is only parsed
//! lazily if the oracle is re-exported as a v1 snapshot
//! ([`crate::oracle::Oracle::save`]). A semantically corrupt tree
//! section therefore surfaces as a typed error at *save* time, never a
//! panic.
//!
//! # Load-time validation
//!
//! Beyond the structural checks above, the reader runs an
//! `O(n + m + A + arcs)` semantic sweep before trusting any index:
//! CSR offsets monotone and in range (via
//! [`spsep_graph::DiGraph::from_csr_parts`]), shortcut endpoints in
//! range, no NaN weights, levels `≤ d_G`, the rank array a permutation,
//! phase indices within the bucket table, bucket offset tables
//! monotone, group ranges an exact partition of each bucket's arcs, and
//! every arc cross-checked against the augmented edge it claims to be
//! (`from`/`to`/weight bits) — corrupt-but-checksummed snapshots are
//! rejected with typed errors instead of producing wrong answers.

use crate::augment::AugmentStats;
use crate::io::{SNAPSHOT_MAGIC, SNAPSHOT_TRAILER};
use crate::query::Preprocessed;
use crate::schedule::{ArcRec, Bucket, Group, Schedule};
use crate::Algorithm;
use spsep_graph::bytes::{fnv1a64, ByteReader, ByteWriter};
use spsep_graph::semiring::Tropical;
use spsep_graph::slab::Pod;
use spsep_graph::{DiGraph, Edge, Slab, SlabBytes, SpsepError, Store};
use std::sync::Arc;

/// Format version written and read by this module.
pub const SNAPSHOT_VERSION_V2: u32 = 2;
/// Alignment (bytes) of every section payload.
pub const SECTION_ALIGN: usize = 64;
/// Number of sections in a v2 snapshot.
pub const SECTION_COUNT: usize = 14;
/// Byte length of the fixed v2 header (magic + version + algo + count +
/// reserved).
pub const HEADER_LEN: usize = 24;
/// Byte length of one section-table entry.
pub const TABLE_ENTRY_LEN: usize = 32;
/// Byte length of the `META` section payload.
pub const META_LEN: usize = 80;

/// Section tags, in their mandatory file order.
pub const SECTION_TAGS: [&[u8; 4]; SECTION_COUNT] = [
    b"META", b"AEDG", b"OOFF", b"OADJ", b"IOFF", b"IADJ", b"LVLS", b"NORD", b"SEQN", b"BOFF",
    b"BSRC", b"BGRP", b"BARC", b"TREE",
];

const S_META: usize = 0;
const S_AEDG: usize = 1;
const S_OOFF: usize = 2;
const S_OADJ: usize = 3;
const S_IOFF: usize = 4;
const S_IADJ: usize = 5;
const S_LVLS: usize = 6;
const S_NORD: usize = 7;
const S_SEQN: usize = 8;
const S_BOFF: usize = 9;
const S_BSRC: usize = 10;
const S_BGRP: usize = 11;
const S_BARC: usize = 12;
const S_TREE: usize = 13;

/// A fully validated, zero-copy view of a v2 snapshot: the graph and
/// the compiled query state borrow the snapshot buffer; the tree
/// travels as opaque bytes (decoded lazily, see the module docs).
pub struct SnapshotV2 {
    /// The weighted digraph `G`, CSR arrays borrowed from the snapshot.
    pub graph: DiGraph<f64>,
    /// The v1 `TREE` section payload, undecoded.
    pub tree_bytes: Store<u8>,
    /// Which `E⁺` construction produced the augmentation.
    pub algo: Algorithm,
    /// The compiled query state, every array borrowed from the snapshot.
    pub pre: Preprocessed<Tropical>,
}

// Manual impl: `Preprocessed` has no Debug (its semiring parameter is
// not required to), so summarize the shape instead of deriving.
impl std::fmt::Debug for SnapshotV2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotV2")
            .field("n", &self.graph.n())
            .field("m", &self.graph.m())
            .field("algo", &self.algo)
            .field("eplus", &self.pre.stats().eplus_edges)
            .finish_non_exhaustive()
    }
}

fn require_little_endian(verb: &str) -> Result<(), SpsepError> {
    if cfg!(target_endian = "big") {
        return Err(SpsepError::parse(format!(
            "spsep-oracle/v2 snapshots are little-endian only; cannot {verb} on a big-endian host"
        )));
    }
    Ok(())
}

fn pad_to_align(off: usize) -> usize {
    off.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

fn algo_code(algo: Algorithm) -> u32 {
    match algo {
        Algorithm::LeavesUp => 0,
        Algorithm::PathDoubling => 1,
        Algorithm::SharedDoubling => 2,
    }
}

fn algo_from_code(code: u32) -> Result<Algorithm, SpsepError> {
    match code {
        0 => Ok(Algorithm::LeavesUp),
        1 => Ok(Algorithm::PathDoubling),
        2 => Ok(Algorithm::SharedDoubling),
        other => Err(SpsepError::parse(format!(
            "unknown augmentation algorithm code {other}"
        ))),
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn put_u32s(w: &mut ByteWriter, vals: &[u32]) {
    for &v in vals {
        w.u32(v);
    }
}

fn put_edges(w: &mut ByteWriter, edges: &[Edge<f64>]) {
    for e in edges {
        w.u32(e.from);
        w.u32(e.to);
        w.f64(e.w);
    }
}

/// Serialize a prepared instance as a canonical v2 snapshot.
///
/// `tree_bytes` is the v1 tree section payload
/// (`spsep_separator::io::tree_to_bytes`), carried opaquely.
///
/// # Errors
///
/// [`SpsepError::Parse`] on a big-endian host (the format is
/// little-endian only and never byte-swaps).
pub fn snapshot_v2_to_bytes(
    graph: &DiGraph<f64>,
    tree_bytes: &[u8],
    algo: Algorithm,
    pre: &Preprocessed<Tropical>,
) -> Result<Vec<u8>, SpsepError> {
    require_little_endian("write")?;
    let n = graph.n();
    let m = graph.m();
    let aug_edges = pre.augmented_edges();
    let a = aug_edges.len() - m;
    let schedule = pre.schedule();
    let buckets = schedule.buckets();

    // META.
    let mut meta = ByteWriter::new();
    meta.u64(n as u64);
    meta.u64(m as u64);
    meta.u64(a as u64);
    meta.u32(pre.stats().d_g);
    meta.u32(0); // reserved
    meta.u64(pre.stats().leaf_bound as u64);
    meta.u64(pre.stats().raw_pairs as u64);
    meta.u64(schedule.max_sources() as u64);
    meta.u64(schedule.total_phases() as u64);
    meta.u64(buckets.len() as u64);
    meta.u64(schedule.sequence().len() as u64);

    // AEDG: the whole augmented edge slab (base edges, then E⁺).
    let mut aedg = ByteWriter::new();
    put_edges(&mut aedg, aug_edges);

    // Graph CSR.
    let mut ooff = ByteWriter::new();
    put_u32s(&mut ooff, graph.first_out());
    let mut oadj = ByteWriter::new();
    put_u32s(&mut oadj, graph.out_adjacency());
    let mut ioff = ByteWriter::new();
    put_u32s(&mut ioff, graph.first_in());
    let mut iadj = ByteWriter::new();
    put_u32s(&mut iadj, graph.in_adjacency());

    // Per-vertex tables.
    let mut lvls = ByteWriter::new();
    put_u32s(&mut lvls, pre.levels());
    let mut nord = ByteWriter::new();
    put_u32s(&mut nord, pre.order_rank());

    // Schedule: phase sequence + concatenated buckets with prefix
    // offsets.
    let mut seqn = ByteWriter::new();
    put_u32s(&mut seqn, schedule.sequence());
    let mut boff = ByteWriter::new();
    let mut bsrc = ByteWriter::new();
    let mut bgrp = ByteWriter::new();
    let mut barc = ByteWriter::new();
    let mut acc = [0u64; 3];
    let mut offs: [Vec<u64>; 3] = [vec![0], vec![0], vec![0]];
    for b in buckets {
        acc[0] += b.sources().len() as u64;
        acc[1] += b.groups().len() as u64;
        acc[2] += b.arcs().len() as u64;
        for (o, &a) in offs.iter_mut().zip(acc.iter()) {
            o.push(a);
        }
        put_u32s(&mut bsrc, b.sources());
        for g in b.groups() {
            bgrp.u32(g.target);
            bgrp.u32(g.start);
            bgrp.u32(g.end);
        }
        for arc in b.arcs() {
            barc.u32(arc.slot);
            barc.u32(arc.id);
            barc.f64(arc.w);
        }
    }
    for o in &offs {
        for &v in o {
            boff.u64(v);
        }
    }

    let payloads: [Vec<u8>; SECTION_COUNT] = [
        meta.into_inner(),
        aedg.into_inner(),
        ooff.into_inner(),
        oadj.into_inner(),
        ioff.into_inner(),
        iadj.into_inner(),
        lvls.into_inner(),
        nord.into_inner(),
        seqn.into_inner(),
        boff.into_inner(),
        bsrc.into_inner(),
        bgrp.into_inner(),
        barc.into_inner(),
        tree_bytes.to_vec(),
    ];

    // Canonical layout: offsets are a pure function of the lengths.
    let table_end = HEADER_LEN + TABLE_ENTRY_LEN * SECTION_COUNT;
    let mut offsets = [0u64; SECTION_COUNT];
    let mut cursor = pad_to_align(table_end);
    for (i, p) in payloads.iter().enumerate() {
        offsets[i] = cursor as u64;
        cursor += p.len();
        if i + 1 < SECTION_COUNT {
            cursor = pad_to_align(cursor);
        }
    }

    let mut w = ByteWriter::new();
    w.bytes(SNAPSHOT_MAGIC);
    w.u32(SNAPSHOT_VERSION_V2);
    w.u32(algo_code(algo));
    w.u32(SECTION_COUNT as u32);
    w.u32(0); // reserved
    for (i, p) in payloads.iter().enumerate() {
        w.bytes(SECTION_TAGS[i]);
        w.u32(0); // tag pad
        w.u64(offsets[i]);
        w.u64(p.len() as u64);
        w.u64(fnv1a64(p));
    }
    for (i, p) in payloads.iter().enumerate() {
        while w.len() < offsets[i] as usize {
            w.u8(0);
        }
        w.bytes(p);
    }
    w.bytes(SNAPSHOT_TRAILER);
    Ok(w.into_inner())
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

struct SectionEntry {
    off: usize,
    len: usize,
}

/// Checked `u64 → usize` for offsets/lengths from untrusted headers.
fn to_usize(v: u64, what: &str) -> Result<usize, SpsepError> {
    usize::try_from(v).map_err(|_| SpsepError::parse(format!("{what} {v} overflows usize")))
}

/// Borrow a whole section as a typed slab, checking the byte length
/// matches the expected element count exactly.
fn section_slab<T: Pod>(
    bytes: &Arc<SlabBytes>,
    ent: &SectionEntry,
    tag: &str,
    count: usize,
) -> Result<Slab<T>, SpsepError> {
    let elem = std::mem::size_of::<T>();
    if ent.len != count.saturating_mul(elem) {
        return Err(SpsepError::parse(format!(
            "section '{tag}' is {} bytes but {count} elements of {elem} bytes were declared",
            ent.len
        )));
    }
    Slab::new(Arc::clone(bytes), ent.off, count)
}

/// Parse and validate a v2 snapshot held in an aligned buffer (owned
/// bytes or a memory-mapped file), borrowing every array out of it.
///
/// # Errors
///
/// [`SpsepError::Parse`] for every form of corruption: bad magic or
/// version, unknown algorithm, wrong section count/order, misaligned or
/// non-canonical section offsets, tampered padding, truncation,
/// checksum mismatch, or any semantic invariant violation (see the
/// module docs); [`SpsepError::InvalidGraph`] if the CSR arrays are
/// inconsistent. Never panics on hostile bytes.
pub fn snapshot_v2_from_slab(bytes: Arc<SlabBytes>) -> Result<SnapshotV2, SpsepError> {
    require_little_endian("read")?;
    let buf = bytes.bytes();
    let mut r = ByteReader::new(buf);
    let magic = r.take(8, "snapshot magic")?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SpsepError::parse(
            "bad magic: not an spsep-oracle snapshot".to_string(),
        ));
    }
    let version = r.u32("snapshot version")?;
    if version != SNAPSHOT_VERSION_V2 {
        return Err(SpsepError::parse(format!(
            "snapshot version {version} unsupported (this reader handles v{SNAPSHOT_VERSION_V2})"
        )));
    }
    let algo = algo_from_code(r.u32("algorithm code")?)?;
    let sections = r.u32("section count")?;
    if sections as usize != SECTION_COUNT {
        return Err(SpsepError::parse(format!(
            "expected {SECTION_COUNT} sections, header declares {sections}"
        )));
    }
    if r.u32("header reserved word")? != 0 {
        return Err(SpsepError::parse("header reserved word is not zero"));
    }

    // Section table: fixed tag order, canonical offsets.
    let mut entries: Vec<SectionEntry> = Vec::with_capacity(SECTION_COUNT);
    let mut sums = [0u64; SECTION_COUNT];
    for (i, tag) in SECTION_TAGS.iter().enumerate() {
        let got = r.take(4, "section tag")?;
        if got != *tag {
            return Err(SpsepError::parse(format!(
                "section {i}: expected tag '{}', found '{}'",
                String::from_utf8_lossy(*tag),
                String::from_utf8_lossy(got)
            )));
        }
        if r.u32("section tag pad")? != 0 {
            return Err(SpsepError::parse(format!(
                "section {i}: tag padding is not zero"
            )));
        }
        let off = to_usize(r.u64("section offset")?, "section offset")?;
        let len = to_usize(r.u64("section length")?, "section length")?;
        sums[i] = r.u64("section checksum")?;
        entries.push(SectionEntry { off, len });
    }

    // Canonical layout walk: each section starts at the aligned
    // boundary after its predecessor, padding zero-filled, trailer
    // flush at the end.
    let mut expected = pad_to_align(HEADER_LEN + TABLE_ENTRY_LEN * SECTION_COUNT);
    for (i, ent) in entries.iter().enumerate() {
        if ent.off != expected {
            return Err(SpsepError::parse(format!(
                "section {i} offset {} breaks the canonical layout (expected {expected})",
                ent.off
            )));
        }
        let end = ent
            .off
            .checked_add(ent.len)
            .ok_or_else(|| SpsepError::parse("section end overflows"))?;
        if end > buf.len() {
            return Err(SpsepError::parse(format!(
                "section {i} [{}..{end}] exceeds the {}-byte snapshot",
                ent.off,
                buf.len()
            )));
        }
        expected = if i + 1 < SECTION_COUNT {
            pad_to_align(end)
        } else {
            end
        };
    }
    let trailer_off = expected;
    if buf.len() != trailer_off + SNAPSHOT_TRAILER.len() {
        return Err(SpsepError::parse(format!(
            "snapshot is {} bytes, expected {} (truncated or trailing bytes)",
            buf.len(),
            trailer_off + SNAPSHOT_TRAILER.len()
        )));
    }
    if &buf[trailer_off..] != SNAPSHOT_TRAILER {
        return Err(SpsepError::parse(
            "bad trailer: snapshot is truncated or corrupt".to_string(),
        ));
    }
    // Zero padding between the table and the first section and between
    // consecutive sections.
    let mut gap_start = HEADER_LEN + TABLE_ENTRY_LEN * SECTION_COUNT;
    for (i, ent) in entries.iter().enumerate() {
        if buf[gap_start..ent.off].iter().any(|&b| b != 0) {
            return Err(SpsepError::parse(format!(
                "nonzero padding before section {i}"
            )));
        }
        gap_start = ent.off + ent.len;
    }
    // Checksums.
    for (i, ent) in entries.iter().enumerate() {
        let actual = fnv1a64(&buf[ent.off..ent.off + ent.len]);
        if actual != sums[i] {
            return Err(SpsepError::parse(format!(
                "checksum mismatch in section '{}': stored {:#018x}, computed {actual:#018x}",
                String::from_utf8_lossy(SECTION_TAGS[i]),
                sums[i]
            )));
        }
    }

    // META scalars.
    if entries[S_META].len != META_LEN {
        return Err(SpsepError::parse(format!(
            "META section is {} bytes, expected {META_LEN}",
            entries[S_META].len
        )));
    }
    let meta = &buf[entries[S_META].off..entries[S_META].off + META_LEN];
    let mut mr = ByteReader::new(meta);
    let n = to_usize(mr.u64("n")?, "n")?;
    let m = to_usize(mr.u64("m")?, "m")?;
    let a = to_usize(mr.u64("eplus count")?, "eplus count")?;
    let d_g = mr.u32("d_g")?;
    if mr.u32("meta reserved word")? != 0 {
        return Err(SpsepError::parse("META reserved word is not zero"));
    }
    let leaf_bound = to_usize(mr.u64("leaf bound")?, "leaf bound")?;
    let raw_pairs = to_usize(mr.u64("raw pairs")?, "raw pairs")?;
    let max_sources = to_usize(mr.u64("max sources")?, "max sources")?;
    let total_phases = to_usize(mr.u64("total phases")?, "total phases")?;
    let num_buckets = to_usize(mr.u64("bucket count")?, "bucket count")?;
    let seq_len = to_usize(mr.u64("sequence length")?, "sequence length")?;
    mr.expect_exhausted("META payload")?;

    // Structural cross-checks that pin the compiled shape to d_G.
    if num_buckets != 3 * (d_g as usize + 1) + 1 {
        return Err(SpsepError::parse(format!(
            "bucket count {num_buckets} inconsistent with d_G = {d_g} (expected {})",
            3 * (d_g as usize + 1) + 1
        )));
    }
    if total_phases != 2 * leaf_bound + 4 * d_g as usize + 1 {
        return Err(SpsepError::parse(format!(
            "total phases {total_phases} inconsistent with l = {leaf_bound}, d_G = {d_g}"
        )));
    }
    let aug_count = m
        .checked_add(a)
        .ok_or_else(|| SpsepError::parse("edge counts overflow"))?;

    // Borrow the typed slabs (lengths pinned to the META counts).
    let aedg: Slab<Edge<f64>> = section_slab(&bytes, &entries[S_AEDG], "AEDG", aug_count)?;
    let ooff: Slab<u32> = section_slab(&bytes, &entries[S_OOFF], "OOFF", n + 1)?;
    let oadj: Slab<u32> = section_slab(&bytes, &entries[S_OADJ], "OADJ", m)?;
    let ioff: Slab<u32> = section_slab(&bytes, &entries[S_IOFF], "IOFF", n + 1)?;
    let iadj: Slab<u32> = section_slab(&bytes, &entries[S_IADJ], "IADJ", m)?;
    let lvls: Slab<u32> = section_slab(&bytes, &entries[S_LVLS], "LVLS", n)?;
    let nord: Slab<u32> = section_slab(&bytes, &entries[S_NORD], "NORD", n)?;
    let seqn: Slab<u32> = section_slab(&bytes, &entries[S_SEQN], "SEQN", seq_len)?;
    let boff: Slab<u64> = section_slab(&bytes, &entries[S_BOFF], "BOFF", 3 * (num_buckets + 1))?;
    let nsrc = entries[S_BSRC].len / 4;
    let ngrp = entries[S_BGRP].len / std::mem::size_of::<Group>();
    let narc = entries[S_BARC].len / std::mem::size_of::<ArcRec<f64>>();
    let bsrc: Slab<u32> = section_slab(&bytes, &entries[S_BSRC], "BSRC", nsrc)?;
    let bgrp: Slab<Group> = section_slab(&bytes, &entries[S_BGRP], "BGRP", ngrp)?;
    let barc: Slab<ArcRec<f64>> = section_slab(&bytes, &entries[S_BARC], "BARC", narc)?;
    let tree_bytes: Slab<u8> =
        section_slab(&bytes, &entries[S_TREE], "TREE", entries[S_TREE].len)?;

    // Semantic sweep 1: the graph CSR (validated by from_csr_parts) and
    // the augmented edge slab.
    let graph_edges = aedg.subslab(0, m)?;
    let graph = DiGraph::from_csr_parts(
        n,
        graph_edges.into(),
        ooff.into(),
        oadj.into(),
        ioff.into(),
        iadj.into(),
    )?;
    for (i, e) in aedg.as_slice().iter().enumerate() {
        if e.from as usize >= n || e.to as usize >= n {
            return Err(SpsepError::parse(format!(
                "augmented edge #{i} endpoint {}→{} out of range 0..{n}",
                e.from, e.to
            )));
        }
        if e.w.is_nan() {
            return Err(SpsepError::parse(format!(
                "augmented edge #{i} weight is NaN"
            )));
        }
    }

    // Semantic sweep 2: per-vertex tables.
    for (v, &lvl) in lvls.as_slice().iter().enumerate() {
        if lvl != u32::MAX && lvl > d_g {
            return Err(SpsepError::parse(format!(
                "level {lvl} of vertex {v} exceeds d_G = {d_g}"
            )));
        }
    }
    let mut seen = vec![0u64; n.div_ceil(64)];
    for (v, &rank) in nord.as_slice().iter().enumerate() {
        let r = rank as usize;
        if r >= n || seen[r / 64] & (1 << (r % 64)) != 0 {
            return Err(SpsepError::parse(format!(
                "rank array is not a permutation at vertex {v} (rank {rank})"
            )));
        }
        seen[r / 64] |= 1 << (r % 64);
    }

    // Semantic sweep 3: the schedule. Bucket offsets must be monotone
    // prefix sums ending exactly at the concatenated section lengths.
    let offs = boff.as_slice();
    let check_offsets = |base: usize, total: usize, what: &str| -> Result<(), SpsepError> {
        let row = &offs[base * (num_buckets + 1)..(base + 1) * (num_buckets + 1)];
        if row[0] != 0 || row[num_buckets] != total as u64 {
            return Err(SpsepError::parse(format!(
                "{what} offsets do not span 0..{total}"
            )));
        }
        if row.windows(2).any(|w| w[0] > w[1]) {
            return Err(SpsepError::parse(format!("{what} offsets are not monotone")));
        }
        Ok(())
    };
    check_offsets(0, nsrc, "bucket source")?;
    check_offsets(1, ngrp, "bucket group")?;
    check_offsets(2, narc, "bucket arc")?;
    for &bi in seqn.as_slice() {
        if bi as usize >= num_buckets {
            return Err(SpsepError::parse(format!(
                "phase sequence references bucket {bi} of {num_buckets}"
            )));
        }
    }

    let aug = aedg.as_slice();
    let mut buckets: Vec<Bucket<f64>> = Vec::with_capacity(num_buckets);
    let mut observed_max_sources = 0usize;
    for b in 0..num_buckets {
        let (s0, s1) = (offs[b] as usize, offs[b + 1] as usize);
        let g_base = num_buckets + 1;
        let (g0, g1) = (offs[g_base + b] as usize, offs[g_base + b + 1] as usize);
        let a_base = 2 * (num_buckets + 1);
        let (a0, a1) = (offs[a_base + b] as usize, offs[a_base + b + 1] as usize);
        let sources = bsrc.subslab(s0, s1)?;
        let groups = bgrp.subslab(g0, g1)?;
        let arcs = barc.subslab(a0, a1)?;
        let srcs = sources.as_slice();
        if srcs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SpsepError::parse(format!(
                "bucket {b}: source list is not strictly increasing"
            )));
        }
        if srcs.last().is_some_and(|&s| s as usize >= n) {
            return Err(SpsepError::parse(format!(
                "bucket {b}: source out of range 0..{n}"
            )));
        }
        observed_max_sources = observed_max_sources.max(srcs.len());
        let bucket_arcs = arcs.as_slice();
        let mut cursor = 0u32;
        for (gi, g) in groups.as_slice().iter().enumerate() {
            if g.start != cursor || g.end < g.start || g.end as usize > bucket_arcs.len() {
                return Err(SpsepError::parse(format!(
                    "bucket {b} group {gi} range {}..{} does not partition {} arcs",
                    g.start,
                    g.end,
                    bucket_arcs.len()
                )));
            }
            cursor = g.end;
            if g.target as usize >= n {
                return Err(SpsepError::parse(format!(
                    "bucket {b} group {gi} target {} out of range 0..{n}",
                    g.target
                )));
            }
            for arc in &bucket_arcs[g.start as usize..g.end as usize] {
                if arc.slot as usize >= srcs.len() || arc.id as usize >= aug_count {
                    return Err(SpsepError::parse(format!(
                        "bucket {b} group {gi}: arc slot {} / edge id {} out of range",
                        arc.slot, arc.id
                    )));
                }
                // Cross-check the arc against the edge it claims to be:
                // a checksummed-but-semantically-patched bucket cannot
                // silently change answers.
                let e = &aug[arc.id as usize];
                if e.from != srcs[arc.slot as usize]
                    || e.to != g.target
                    || e.w.to_bits() != arc.w.to_bits()
                {
                    return Err(SpsepError::parse(format!(
                        "bucket {b} group {gi}: arc disagrees with augmented edge {}",
                        arc.id
                    )));
                }
            }
        }
        if cursor as usize != bucket_arcs.len() {
            return Err(SpsepError::parse(format!(
                "bucket {b}: groups cover {cursor} of {} arcs",
                bucket_arcs.len()
            )));
        }
        buckets.push(Bucket {
            sources: sources.into(),
            groups: groups.into(),
            arcs: arcs.into(),
        });
    }
    if observed_max_sources != max_sources {
        return Err(SpsepError::parse(format!(
            "max sources {max_sources} disagrees with the bucket contents ({observed_max_sources})"
        )));
    }

    let schedule = Schedule::<Tropical> {
        n,
        buckets,
        sequence: seqn.into(),
        max_sources,
        total_phases,
    };
    let pre = Preprocessed::<Tropical> {
        n,
        aug_edges: aedg.into(),
        base_m: m,
        levels: lvls.into(),
        order_rank: nord.into(),
        schedule,
        stats: AugmentStats {
            eplus_edges: a,
            raw_pairs,
            d_g,
            leaf_bound,
        },
    };
    Ok(SnapshotV2 {
        graph,
        tree_bytes: tree_bytes.into(),
        algo,
        pre,
    })
}

/// Sniff the format version of a snapshot prefix: `Some(version)` when
/// the magic matches, `None` otherwise. Needs at least 12 bytes.
pub fn sniff_version(bytes: &[u8]) -> Option<u32> {
    if bytes.len() >= 12 && &bytes[..8] == SNAPSHOT_MAGIC {
        let Ok(v) = <[u8; 4]>::try_from(&bytes[8..12]) else {
            return None;
        };
        Some(u32::from_le_bytes(v))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{alg41, Preprocessed};
    use rand::SeedableRng;
    use spsep_pram::Metrics;
    use spsep_separator::{builders, RecursionLimits, SepTree};

    fn instance(dims: [usize; 2], seed: u64) -> (DiGraph<f64>, SepTree, Preprocessed<Tropical>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (g, _) = spsep_graph::generators::grid(&dims, &mut rng);
        let tree = builders::grid_tree(&dims, RecursionLimits::default());
        let metrics = Metrics::new();
        let aug = alg41::augment_leaves_up::<Tropical>(&g, &tree, &metrics).unwrap();
        let pre = Preprocessed::compile(&g, &tree, aug);
        (g, tree, pre)
    }

    fn snapshot(dims: [usize; 2], seed: u64) -> (Vec<u8>, DiGraph<f64>, Preprocessed<Tropical>) {
        let (g, tree, pre) = instance(dims, seed);
        let tb = spsep_separator::io::tree_to_bytes(&tree);
        let bytes = snapshot_v2_to_bytes(&g, &tb, Algorithm::LeavesUp, &pre).unwrap();
        (bytes, g, pre)
    }

    fn load(bytes: Vec<u8>) -> Result<SnapshotV2, SpsepError> {
        snapshot_v2_from_slab(Arc::new(SlabBytes::from_vec(bytes)))
    }

    #[test]
    fn roundtrip_is_bit_identical_and_zero_copy() {
        let (bytes, g, pre) = snapshot([7, 6], 31);
        let snap = load(bytes).unwrap();
        assert_eq!(snap.graph.n(), g.n());
        assert_eq!(snap.graph.m(), g.m());
        assert_eq!(snap.graph.edges(), g.edges());
        assert_eq!(snap.algo, Algorithm::LeavesUp);
        assert_eq!(snap.pre.stats().eplus_edges, pre.stats().eplus_edges);
        assert_eq!(snap.pre.order_rank(), pre.order_rank());
        for s in 0..g.n() {
            let (d1, _) = pre.distances_seq(s);
            let (d2, _) = snap.pre.distances_seq(s);
            for (a, b) in d1.iter().zip(&d2) {
                assert_eq!(a.to_bits(), b.to_bits(), "source {s}");
            }
        }
        // The reconstituted arrays are slabs, not copies.
        assert!(matches!(snap.pre.aug_edges, Store::Slab(_)));
        assert!(matches!(snap.pre.schedule.sequence, Store::Slab(_)));
        assert!(matches!(snap.pre.schedule.buckets[0].arcs, Store::Slab(_)));
        assert!(matches!(snap.tree_bytes, Store::Slab(_)));
    }

    #[test]
    fn snapshots_are_canonical_bytes() {
        let (b1, _, _) = snapshot([6, 6], 33);
        let (b2, _, _) = snapshot([6, 6], 33);
        assert_eq!(b1, b2, "same instance must snapshot to identical bytes");
    }

    #[test]
    fn tree_bytes_roundtrip_opaquely() {
        let (g, tree, pre) = instance([5, 5], 34);
        let tb = spsep_separator::io::tree_to_bytes(&tree);
        let bytes = snapshot_v2_to_bytes(&g, &tb, Algorithm::PathDoubling, &pre).unwrap();
        let snap = load(bytes).unwrap();
        assert_eq!(&snap.tree_bytes[..], &tb[..]);
        let back = spsep_separator::io::tree_from_bytes(&snap.tree_bytes).unwrap();
        assert_eq!(back.n(), tree.n());
    }

    #[test]
    fn header_and_layout_corruptions_are_typed_errors() {
        let (bytes, _, _) = snapshot([5, 5], 35);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(load(bad), Err(SpsepError::Parse { .. })));
        // Version skew (v2 bytes claiming v3).
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&3u32.to_le_bytes());
        let err = load(bad).unwrap_err();
        assert!(err.to_string().contains("version 3"), "{err}");
        // Unknown algorithm.
        let mut bad = bytes.clone();
        bad[12..16].copy_from_slice(&9u32.to_le_bytes());
        assert!(load(bad).is_err());
        // Shifted section offset (entry 1's offset field at 24+32+8).
        let mut bad = bytes.clone();
        let field = HEADER_LEN + TABLE_ENTRY_LEN + 8;
        let off = u64::from_le_bytes(bad[field..field + 8].try_into().unwrap());
        bad[field..field + 8].copy_from_slice(&(off + 64).to_le_bytes());
        let err = load(bad).unwrap_err();
        assert!(err.to_string().contains("canonical layout"), "{err}");
        // Tampered padding between table and first section.
        let mut bad = bytes.clone();
        bad[HEADER_LEN + TABLE_ENTRY_LEN * SECTION_COUNT] = 0xAB;
        let err = load(bad).unwrap_err();
        assert!(err.to_string().contains("padding"), "{err}");
        // Flipped payload byte → checksum mismatch.
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0xff;
        assert!(matches!(load(bad), Err(SpsepError::Parse { .. })));
        // Truncation at a sample of byte positions (the testkit catalog
        // covers every header byte and the slab page boundaries).
        for cut in (0..bytes.len()).step_by(131) {
            assert!(load(bytes[..cut].to_vec()).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn sniff_distinguishes_versions() {
        let (v2, _, _) = snapshot([4, 4], 36);
        assert_eq!(sniff_version(&v2), Some(2));
        assert_eq!(sniff_version(b"SPSEPORC\x01\x00\x00\x00"), Some(1));
        assert_eq!(sniff_version(b"NOTMAGIC\x02\x00\x00\x00"), None);
        assert_eq!(sniff_version(b"SPSE"), None);
    }
}
