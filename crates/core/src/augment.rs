//! Shared augmentation types: the `E⁺` edge set and per-node interface
//! bookkeeping used by both construction algorithms.

use spsep_graph::{Edge, Semiring};
use spsep_separator::{tree::sorted_union, SepNode, SepTree};

/// Statistics about one `E⁺` construction.
#[derive(Copy, Clone, Debug, Default)]
pub struct AugmentStats {
    /// `|E⁺|` after parallel-edge deduplication.
    pub eplus_edges: usize,
    /// Candidate pairs emitted before deduplication
    /// (`Σ_t |S(t)|² + |B(t)|²`, minus diagonals / unreachable pairs).
    pub raw_pairs: usize,
    /// Tree height `d_G`.
    pub d_g: u32,
    /// Leaf size bound: `l ≤ max_leaf_size − 1` (Theorem 3.1's `l`).
    pub leaf_bound: usize,
}

/// Result of computing `E⁺`: the deduplicated shortcut edges with their
/// `dist_{G(t)}` weights.
#[derive(Clone, Debug)]
pub struct Augmentation<S: Semiring> {
    /// The shortcut edges (no parallel duplicates; the better weight won).
    pub eplus: Vec<Edge<S::W>>,
    /// Construction statistics.
    pub stats: AugmentStats,
}

/// The *interface* of a tree node: `I(t) = B(t) ∪ S(t)`, sorted by global
/// vertex id, with the positions of the boundary and separator members.
///
/// Both construction algorithms compute dense matrices over `I(t)`: the
/// parent of `t` only ever reads `B(t)×B(t)` entries, while `E_t` emits
/// `S(t)×S(t) ∪ B(t)×B(t)` entries (Section 3.1).
#[derive(Clone, Debug)]
pub struct Interface {
    /// Sorted global ids of `B(t) ∪ S(t)`.
    pub verts: Vec<u32>,
    /// Positions (into `verts`) of the separator members.
    pub sep_pos: Vec<u32>,
    /// Positions (into `verts`) of the boundary members.
    pub bnd_pos: Vec<u32>,
}

impl Interface {
    /// Interface of `node`. For leaves the boundary is the whole
    /// interface (separators are empty there).
    pub fn of(node: &SepNode) -> Interface {
        let verts = sorted_union(&node.separator, &node.boundary);
        let pos = |set: &[u32]| {
            set.iter()
                .map(|v| {
                    verts
                        .binary_search(v)
                        .unwrap_or_else(|_| unreachable!("member of union"))
                        as u32
                })
                .collect()
        };
        Interface {
            sep_pos: pos(&node.separator),
            bnd_pos: pos(&node.boundary),
            verts,
        }
    }

    /// Number of interface vertices.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// `true` if the interface is empty (e.g. the root of a tree with an
    /// empty separator and no boundary).
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Local position of global vertex `v`, if present.
    #[inline]
    pub fn local(&self, v: u32) -> Option<usize> {
        self.verts.binary_search(&v).ok()
    }
}

/// Deduplicate parallel shortcut edges, keeping the `combine`-better
/// weight, dropping self-loops and `0̄` (no-path) entries.
pub fn dedupe_eplus<S: Semiring>(mut edges: Vec<Edge<S::W>>) -> Vec<Edge<S::W>> {
    edges.retain(|e| e.from != e.to && !S::is_zero(e.w));
    edges.sort_unstable_by_key(|e| (e.from, e.to));
    let mut out: Vec<Edge<S::W>> = Vec::with_capacity(edges.len());
    for e in edges {
        match out.last_mut() {
            Some(last) if last.from == e.from && last.to == e.to => {
                last.w = S::combine(last.w, e.w);
            }
            _ => out.push(e),
        }
    }
    out
}

/// Emit the `E_t` entries of one node from its interface matrix `mat`
/// (row-major over `iface.verts`): all `S×S` and `B×B` pairs.
pub fn emit_node_edges<S: Semiring>(
    iface: &Interface,
    mat: &[S::W],
    out: &mut Vec<Edge<S::W>>,
    raw_pairs: &mut usize,
) {
    let n = iface.len();
    let mut emit_set = |pos: &[u32]| {
        for &a in pos {
            for &b in pos {
                if a == b {
                    continue;
                }
                *raw_pairs += 1;
                let w = mat[a as usize * n + b as usize];
                if !S::is_zero(w) {
                    out.push(Edge {
                        from: iface.verts[a as usize],
                        to: iface.verts[b as usize],
                        w,
                    });
                }
            }
        }
    };
    emit_set(&iface.sep_pos);
    emit_set(&iface.bnd_pos);
}

/// Precompute, for every tree node, its [`Interface`].
pub fn interfaces(tree: &SepTree) -> Vec<Interface> {
    use rayon::prelude::*;
    tree.nodes().par_iter().map(Interface::of).collect()
}

/// Leaves with at least this many vertices consider the sparse
/// (multi-source Dijkstra) path; below it, dense Floyd–Warshall is
/// trivially cheap.
const SPARSE_LEAF_MIN_VERTS: usize = 24;
/// … and the leaf must have at most this many edges per vertex
/// (`m ≤ SPARSE_LEAF_MAX_AVG_DEGREE · k`, the "`m = O(k)`" density gate).
const SPARSE_LEAF_MAX_AVG_DEGREE: usize = 6;

/// How a leaf's interface matrix was computed and what it cost — lets
/// callers charge the right [`spsep_pram::Counter`] (Floyd–Warshall vs
/// Dijkstra) for the work/depth ledger.
#[derive(Copy, Clone, Debug)]
pub struct LeafOutcome {
    /// Primitive ops performed by the chosen engine.
    pub ops: u64,
    /// `true` if the sparse multi-source Dijkstra engine ran.
    pub sparse: bool,
    /// `true` if an absorbing cycle was detected (dense engine only).
    pub absorbing_cycle: bool,
}

/// Exact `dist_{G(t)}` over a **leaf**'s interface, allocating fresh
/// buffers. Thin wrapper over [`leaf_iface_matrix_ws`] for callers
/// without a workspace (tests, one-off uses).
pub fn leaf_iface_matrix<S: Semiring>(
    g: &spsep_graph::DiGraph<S::W>,
    vertices: &[u32],
    iface: &Interface,
) -> (Vec<S::W>, LeafOutcome) {
    let mut ws = crate::workspace::NodeWorkspace::new();
    leaf_iface_matrix_ws::<S>(g, vertices, iface, &mut ws)
}

/// Exact `dist_{G(t)}` over a **leaf**'s interface, projected to the
/// interface positions; scratch comes from `ws` (reset on use). Returns
/// the matrix plus a [`LeafOutcome`] describing the engine and its cost.
///
/// Two engines behind one contract:
///
/// * **dense** — Floyd–Warshall on the induced subgraph (the paper's
///   leaves have O(1) vertices, where this is optimal);
/// * **sparse** — when the leaf is large (`k ≥ SPARSE_LEAF_MIN_VERTS`)
///   but has `m = O(k)` edges, the semiring is selective, and every edge
///   weight is non-improving (so label-setting is valid and no absorbing
///   cycle can exist), multi-source Dijkstra from the interface vertices
///   computes the same `|iface|²` projection in `O(|iface| · m log k)`
///   instead of `k³`.
///
/// The gate is a pure function of the leaf, so the engine choice — and
/// hence every output bit — is identical at every thread count.
pub fn leaf_iface_matrix_ws<S: Semiring>(
    g: &spsep_graph::DiGraph<S::W>,
    vertices: &[u32],
    iface: &Interface,
    ws: &mut crate::workspace::NodeWorkspace<S>,
) -> (Vec<S::W>, LeafOutcome) {
    let k = vertices.len();
    // Build the leaf CSR (local ids = positions in the sorted `vertices`)
    // and check the label-setting precondition along the way.
    ws.leaf_off.clear();
    ws.leaf_to.clear();
    ws.leaf_w.clear();
    ws.leaf_off.push(0);
    let mut nonimproving = true;
    for &v in vertices {
        for e in g.out_edges(v as usize) {
            if let Ok(lj) = vertices.binary_search(&e.to) {
                ws.leaf_to.push(lj as u32);
                ws.leaf_w.push(e.w);
                nonimproving &= !S::better(e.w, S::one());
            }
        }
        ws.leaf_off.push(ws.leaf_to.len() as u32);
    }
    let m_edges = ws.leaf_to.len();

    let m = iface.len();
    let mut mat = vec![S::zero(); m * m];

    let sparse_ok = S::is_selective()
        && nonimproving
        && k >= SPARSE_LEAF_MIN_VERTS
        && m_edges <= SPARSE_LEAF_MAX_AVG_DEGREE * k;

    if sparse_ok {
        ws.sources.clear();
        for &va in &iface.verts {
            let ia = vertices
                .binary_search(&va)
                .unwrap_or_else(|_| unreachable!("iface ⊆ V(leaf)"));
            ws.sources.push(ia as u32);
        }
        let ops = spsep_baselines::sssp_semiring_multi::<S>(
            &ws.leaf_off,
            &ws.leaf_to,
            &ws.leaf_w,
            &ws.sources,
            &mut ws.dist_rows,
            &mut ws.sssp,
        );
        for a in 0..m {
            let row = &ws.dist_rows[a * k..(a + 1) * k];
            for (b, cell) in mat[a * m..(a + 1) * m].iter_mut().enumerate() {
                *cell = row[ws.sources[b] as usize];
            }
        }
        // Non-improving weights mean no cycle can beat the empty path, so
        // no absorbing cycle is possible here.
        return (
            mat,
            LeafOutcome {
                ops,
                sparse: true,
                absorbing_cycle: false,
            },
        );
    }

    let kernel = ws.kernel;
    let full = &mut ws.dense;
    full.reset_identity(k);
    for (li, off) in ws.leaf_off.windows(2).enumerate() {
        let (lo, hi) = (off[0] as usize, off[1] as usize);
        for (&lj, &w) in ws.leaf_to[lo..hi].iter().zip(&ws.leaf_w[lo..hi]) {
            full.relax(li, lj as usize, w);
        }
    }
    let outcome = kernel.floyd_warshall(full);
    for (a, &va) in iface.verts.iter().enumerate() {
        let ia = vertices
            .binary_search(&va)
            .unwrap_or_else(|_| unreachable!("iface ⊆ V(leaf)"));
        for (b, &vb) in iface.verts.iter().enumerate() {
            let ib = vertices
                .binary_search(&vb)
                .unwrap_or_else(|_| unreachable!("iface ⊆ V(leaf)"));
            mat[a * m + b] = full.get(ia, ib);
        }
    }
    (
        mat,
        LeafOutcome {
            ops: outcome.ops,
            sparse: false,
            absorbing_cycle: outcome.absorbing_cycle,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsep_graph::semiring::Tropical;

    #[test]
    fn dedupe_keeps_best_and_drops_loops() {
        let edges = vec![
            Edge::new(0, 1, 3.0),
            Edge::new(0, 1, 1.0),
            Edge::new(1, 1, 0.0),
            Edge::new(1, 2, f64::INFINITY),
            Edge::new(0, 1, 2.0),
            Edge::new(2, 0, 5.0),
        ];
        let out = dedupe_eplus::<Tropical>(edges);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].from, 0);
        assert_eq!(out[0].w, 1.0);
        assert_eq!(out[1].from, 2);
    }

    #[test]
    fn interface_positions() {
        let node = SepNode {
            vertices: vec![0, 1, 2, 3, 4, 5],
            separator: vec![2, 4],
            boundary: vec![0, 4],
            children: None,
            parent: None,
            level: 0,
        };
        let iface = Interface::of(&node);
        assert_eq!(iface.verts, vec![0, 2, 4]);
        assert_eq!(iface.sep_pos, vec![1, 2]);
        assert_eq!(iface.bnd_pos, vec![0, 2]);
        assert_eq!(iface.local(4), Some(2));
        assert_eq!(iface.local(3), None);
    }

    #[test]
    fn emit_covers_s_and_b_pairs() {
        let node = SepNode {
            vertices: vec![0, 1, 2],
            separator: vec![1, 2],
            boundary: vec![0],
            children: None,
            parent: None,
            level: 0,
        };
        let iface = Interface::of(&node);
        // iface.verts = [0,1,2]; matrix rows over these.
        let inf = f64::INFINITY;
        #[rustfmt::skip]
        let mat = vec![
            0.0, 1.0, 2.0,
            3.0, 0.0, 4.0,
            inf, 5.0, 0.0,
        ];
        let mut out = Vec::new();
        let mut raw = 0usize;
        emit_node_edges::<Tropical>(&iface, &mat, &mut out, &mut raw);
        // S×S pairs: (1,2) w=4, (2,1) w=5. B×B: only vertex 0 → none.
        assert_eq!(raw, 2);
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|e| e.from == 1 && e.to == 2 && e.w == 4.0));
        assert!(out.iter().any(|e| e.from == 2 && e.to == 1 && e.w == 5.0));
    }
}
