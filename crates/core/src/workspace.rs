//! Reusable per-node scratch for the augmentation drivers.
//!
//! Processing one tree node (Algorithms 4.1/4.3/4.4) needs a handful of
//! transient buffers: the leaf CSR and its dense closure matrix, the
//! separator/boundary vertex lists, the rectangular blocks of the
//! 3-limited product, and the Dijkstra scratch of the sparse-leaf path.
//! The seed allocated all of these fresh at every node; a tree has
//! `O(n / leaf)` nodes, so the allocator sat squarely on the hot path.
//!
//! [`NodeWorkspace`] owns one set of those buffers, and [`WorkspacePool`]
//! recycles workspaces across nodes: a worker takes one off the free
//! list, processes a node (every buffer is reset-on-use, so a dirty
//! workspace is indistinguishable from a fresh one — tested), and puts it
//! back. In steady state a level of the tree allocates nothing but its
//! *outputs* (the interface matrices and `E_t` edge lists).
//!
//! Determinism: buffers never carry information between nodes (reset
//! before use), so which worker gets which workspace cannot affect any
//! result bit. The pool's `Mutex` only orders the free list.

use spsep_baselines::SemiringSsspScratch;
use spsep_graph::dense::{select_kernel, MinPlusKernel, SemiMatrix};
use spsep_graph::Semiring;
use std::sync::Mutex;

/// Scratch buffers for processing one tree node. All buffers are
/// reset-on-use; contents between uses are meaningless.
#[derive(Debug)]
pub struct NodeWorkspace<S: Semiring> {
    /// Dense matrix: the leaf closure (`G(t)` for leaves) or `H_S` (for
    /// internal nodes). Owns its own kernel scratch, so repeated
    /// Floyd–Warshall calls are allocation-free too.
    pub(crate) dense: SemiMatrix<S>,
    /// Dense kernel tier, resolved once when the workspace is created
    /// (feature detection + semiring dispatch happen here, not per node).
    /// Kernels are stateless ZSTs, so sharing the `'static` reference
    /// across workers is free and cannot affect result bits.
    pub(crate) kernel: &'static dyn MinPlusKernel<S>,
    /// Global ids of the node's separator vertices.
    pub(crate) sep_verts: Vec<u32>,
    /// Global ids of the node's boundary vertices.
    pub(crate) bnd_verts: Vec<u32>,
    /// `R[b][s]` block of the 3-limited product (`B → S`).
    pub(crate) r: Vec<S::W>,
    /// `C[s][b]` block (`S → B`).
    pub(crate) c: Vec<S::W>,
    /// `T = R ⊗ H_S*` intermediate.
    pub(crate) t: Vec<S::W>,
    /// `direct[b][b']` block, accumulated into the `B×B` result.
    pub(crate) direct: Vec<S::W>,
    /// Leaf CSR offsets (`k + 1` entries).
    pub(crate) leaf_off: Vec<u32>,
    /// Leaf CSR targets (local vertex ids).
    pub(crate) leaf_to: Vec<u32>,
    /// Leaf CSR weights.
    pub(crate) leaf_w: Vec<S::W>,
    /// Interface vertices as local leaf indices (the Dijkstra sources).
    pub(crate) sources: Vec<u32>,
    /// Multi-source Dijkstra output rows (`|iface| × k`).
    pub(crate) dist_rows: Vec<S::W>,
    /// Dijkstra labels + heap.
    pub(crate) sssp: SemiringSsspScratch<S>,
}

impl<S: Semiring> Default for NodeWorkspace<S> {
    fn default() -> Self {
        NodeWorkspace {
            dense: SemiMatrix::empty(0),
            kernel: select_kernel::<S>(),
            sep_verts: Vec::new(),
            bnd_verts: Vec::new(),
            r: Vec::new(),
            c: Vec::new(),
            t: Vec::new(),
            direct: Vec::new(),
            leaf_off: Vec::new(),
            leaf_to: Vec::new(),
            leaf_w: Vec::new(),
            sources: Vec::new(),
            dist_rows: Vec::new(),
            sssp: SemiringSsspScratch::new(),
        }
    }
}

impl<S: Semiring> NodeWorkspace<S> {
    /// Fresh workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes held by all buffers (capacities) — feeds the per-phase
    /// peak-memory accounting.
    pub fn heap_bytes(&self) -> u64 {
        let w = std::mem::size_of::<S::W>();
        let u = std::mem::size_of::<u32>();
        (self.dense.heap_bytes()
            + w * (self.r.capacity()
                + self.c.capacity()
                + self.t.capacity()
                + self.direct.capacity()
                + self.leaf_w.capacity()
                + self.dist_rows.capacity())
            + u * (self.sep_verts.capacity()
                + self.bnd_verts.capacity()
                + self.leaf_off.capacity()
                + self.leaf_to.capacity()
                + self.sources.capacity())
            + self.sssp.heap_bytes()) as u64
    }
}

/// A free list of [`NodeWorkspace`]s shared by the workers of one
/// augmentation run.
#[derive(Debug)]
pub struct WorkspacePool<S: Semiring> {
    free: Mutex<Vec<NodeWorkspace<S>>>,
}

impl<S: Semiring> Default for WorkspacePool<S> {
    fn default() -> Self {
        Self {
            free: Mutex::new(Vec::new()),
        }
    }
}

impl<S: Semiring> WorkspacePool<S> {
    /// Empty pool; workspaces are created on demand and retained on
    /// release.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a workspace off the free list (or create one).
    pub fn acquire(&self) -> NodeWorkspace<S> {
        self.free
            .lock()
            .ok()
            .and_then(|mut f| f.pop())
            .unwrap_or_default()
    }

    /// Return a workspace for reuse.
    pub fn release(&self, ws: NodeWorkspace<S>) {
        if let Ok(mut f) = self.free.lock() {
            f.push(ws);
        }
    }

    /// Total bytes currently parked on the free list. Between levels all
    /// workspaces are released, so this is the pool's real footprint.
    pub fn heap_bytes(&self) -> u64 {
        self.free
            .lock()
            .map(|f| f.iter().map(NodeWorkspace::heap_bytes).sum())
            .unwrap_or(0)
    }

    /// Number of workspaces parked on the free list.
    pub fn idle(&self) -> usize {
        self.free.lock().map(|f| f.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsep_graph::semiring::Tropical;

    #[test]
    fn pool_recycles_workspaces() {
        let pool = WorkspacePool::<Tropical>::new();
        assert_eq!(pool.idle(), 0);
        let mut ws = pool.acquire();
        ws.r.resize(128, 0.0);
        ws.leaf_to.resize(64, 0);
        let bytes = ws.heap_bytes();
        assert!(bytes >= 128 * 8 + 64 * 4);
        pool.release(ws);
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.heap_bytes(), bytes);
        let again = pool.acquire();
        assert!(again.r.capacity() >= 128, "buffers must be recycled");
        assert_eq!(pool.idle(), 0);
    }
}
