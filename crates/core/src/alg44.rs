//! Remark 4.4: path doubling over a **shared** edge table.
//!
//! Algorithm 4.3 "performs some redundant work": when three vertices
//! `u₁, u₂, u₃` are co-resident in several tree nodes, every such node
//! pairs the edges `(u₁,u₂)` and `(u₂,u₃)` in every round, each against
//! its own copy of the weights. The remark's fix: keep **one** copy of
//! every edge of `∪_t E_H(t)` (its weight the `min` over nodes), and one
//! **pairing table** of the triples
//!
//! ```text
//! { (u₁,u₂,u₃) : ∃ t ∈ T_G with {u₁,u₂,u₃} ⊆ V_H(t) }
//! ```
//!
//! pairing each triple once per round against the shared weights. The
//! table depends only on the interface sets, so it is built once; the
//! child-merge step of Algorithm 4.3 disappears entirely (a shared edge
//! *is* the min over nodes).
//!
//! Soundness: every shared weight is the weight of a real path of `G`
//! (pairings concatenate real paths), so shortcuts never undercut true
//! distances — Theorem 3.1(i) holds. Completeness: by induction the
//! shared weight of an edge is `≤` its weight in every node's copy under
//! Algorithm 4.3, so after the same `2⌈log n⌉ + 2·d_G` rounds each
//! emitted `E_t` entry is `≤ dist_{G(t)}` — which is all the Theorem
//! 3.1(ii) shortcut argument needs.
//!
//! Note one intended deviation from Algorithms 4.1/4.3: because pairings
//! may concatenate subpaths discovered by *different* nodes, a shared
//! weight can be **better** than `min_t dist_{G(t)}` (it is still the
//! weight of a real path of `G`, just not one confined to a single
//! `G(t)`), and an `E_t` pair unreachable inside every common `G(t)` can
//! still receive a finite shared weight. `E⁺` is therefore weight-wise
//! `≤` and set-wise `⊇` the other algorithms' output; tests pin down
//! exactly this relation plus end-to-end distance correctness.

use crate::augment::{
    dedupe_eplus, interfaces, leaf_iface_matrix_ws, AugmentStats, Augmentation,
};
use crate::workspace::NodeWorkspace;
use crate::AbsorbingCycle;
use rayon::prelude::*;
use spsep_graph::{DiGraph, Edge, Semiring};
use spsep_pram::{Counter, Metrics, PhaseRecord};
use spsep_separator::SepTree;
use std::collections::HashMap;
use std::time::Instant;

/// Compute `E⁺` with the Remark 4.4 shared-table doubling.
///
/// # Memory
/// The pairing table materializes up to `Σ_t (|S(t)|+|B(t)|)³` triples
/// (12 bytes each) before deduplication — fine for `μ ≤ 1/2` families
/// and bounded treewidth, but for 3-D grids at large `n` the table can
/// exceed RAM; prefer [`crate::alg43`] there (the whole point of the
/// remark is trading memory for de-duplicated pairing work).
pub fn augment_shared_doubling<S: Semiring>(
    g: &DiGraph<S::W>,
    tree: &SepTree,
    metrics: &Metrics,
) -> Result<Augmentation<S>, AbsorbingCycle> {
    assert_eq!(g.n(), tree.n(), "tree and graph disagree on n");
    let ifaces = interfaces(tree);

    // --- Shared pair registry: (u, v) → slot. -------------------------
    let mut pair_slot: HashMap<(u32, u32), u32> = HashMap::new();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut slot_of = |u: u32, v: u32, pairs: &mut Vec<(u32, u32)>| -> u32 {
        *pair_slot.entry((u, v)).or_insert_with(|| {
            pairs.push((u, v));
            pairs.len() as u32 - 1
        })
    };
    // Register every ordered interface pair of every node.
    for iface in &ifaces {
        for (i, &u) in iface.verts.iter().enumerate() {
            for (j, &v) in iface.verts.iter().enumerate() {
                if i != j {
                    slot_of(u, v, &mut pairs);
                }
            }
        }
    }
    let num_pairs = pairs.len();
    let mut weight: Vec<S::W> = vec![S::zero(); num_pairs];

    // --- Initialization (step i of Alg 4.3, shared): -------------------
    // leaves contribute dist_{G(leaf)}; original edges contribute w(e).
    let shared_bytes = |pairs: &Vec<(u32, u32)>, weight: &Vec<S::W>| {
        (pairs.capacity() * std::mem::size_of::<(u32, u32)>()
            + weight.capacity() * std::mem::size_of::<S::W>()) as u64
    };
    let mut absorbing = false;
    let mut init_span = spsep_trace::span!("alg44.init", width = tree.nodes().len());
    let init_start = Instant::now();
    let init_work_before = metrics.total_work();
    metrics.phase(tree.nodes().len());
    // One workspace serves the whole sequential init scan.
    let mut ws = NodeWorkspace::<S>::new();
    for (id, node) in tree.nodes().iter().enumerate() {
        let iface = &ifaces[id];
        if node.is_leaf() {
            let (mat, outcome) = leaf_iface_matrix_ws::<S>(g, &node.vertices, iface, &mut ws);
            let kind = if outcome.sparse {
                Counter::Dijkstra
            } else {
                Counter::FloydWarshall
            };
            metrics.work(kind, outcome.ops);
            absorbing |= outcome.absorbing_cycle;
            let k = iface.len();
            for a in 0..k {
                for b in 0..k {
                    if a == b {
                        continue;
                    }
                    let w = mat[a * k + b];
                    if S::is_zero(w) {
                        continue;
                    }
                    let slot = pair_slot[&(iface.verts[a], iface.verts[b])] as usize;
                    weight[slot] = S::combine(weight[slot], w);
                }
            }
        } else {
            for (a, &va) in iface.verts.iter().enumerate() {
                for e in g.out_edges(va as usize) {
                    if let Some(b) = iface.local(e.to) {
                        if b != a {
                            let slot = pair_slot[&(va, e.to)] as usize;
                            weight[slot] = S::combine(weight[slot], e.w);
                        }
                    }
                }
            }
        }
    }
    let init_ops = metrics.total_work() - init_work_before;
    init_span.add_ops(init_ops);
    init_span.add_bytes(shared_bytes(&pairs, &weight));
    drop(init_span);
    metrics.record_phase(PhaseRecord {
        label: "alg44/init".into(),
        width: tree.nodes().len(),
        wall_ns: init_start.elapsed().as_nanos() as u64,
        ops: init_ops,
        peak_bytes: shared_bytes(&pairs, &weight),
    });
    if absorbing {
        return Err(AbsorbingCycle);
    }

    // --- The pairing table (built once; Remark 4.4's "compact table").
    // Triple (u1,u2,u3) ⇒ relax slot(u1,u3) by slot(u1,u2) ⊗ slot(u2,u3).
    // Grouped by the *target* slot so rounds can run group-parallel
    // without write conflicts.
    let mut table_span = spsep_trace::span!("alg44.table");
    let table_start = Instant::now();
    let table_work_before = metrics.total_work();
    let mut triples: Vec<(u32, u32, u32)> = Vec::new(); // (target, left, right)
    for iface in &ifaces {
        let k = iface.len();
        for a in 0..k {
            for b in 0..k {
                if a == b {
                    continue;
                }
                for c in 0..k {
                    if c == a || c == b {
                        continue;
                    }
                    let target = pair_slot[&(iface.verts[a], iface.verts[c])];
                    let left = pair_slot[&(iface.verts[a], iface.verts[b])];
                    let right = pair_slot[&(iface.verts[b], iface.verts[c])];
                    triples.push((target, left, right));
                }
            }
        }
    }
    triples.par_sort_unstable();
    triples.dedup();
    metrics.work(Counter::Other, triples.len() as u64);
    // Group boundaries by target slot.
    let mut groups: Vec<(u32, u32, u32)> = Vec::new(); // (target, start, end)
    {
        let mut i = 0;
        while i < triples.len() {
            let target = triples[i].0;
            let start = i as u32;
            while i < triples.len() && triples[i].0 == target {
                i += 1;
            }
            groups.push((target, start, i as u32));
        }
    }
    let table_bytes = (triples.capacity() * std::mem::size_of::<(u32, u32, u32)>()
        + groups.capacity() * std::mem::size_of::<(u32, u32, u32)>()) as u64
        + shared_bytes(&pairs, &weight);
    let table_ops = metrics.total_work() - table_work_before;
    table_span.add_ops(table_ops);
    table_span.add_bytes(table_bytes);
    drop(table_span);
    metrics.record_phase(PhaseRecord {
        label: "alg44/table".into(),
        width: tree.nodes().len(),
        wall_ns: table_start.elapsed().as_nanos() as u64,
        ops: table_ops,
        peak_bytes: table_bytes,
    });

    // --- Doubling rounds. ----------------------------------------------
    let max_rounds = 2 * (usize::BITS - g.n().max(2).leading_zeros()) as usize
        + 2 * tree.height() as usize
        + 2;
    for round in 0..max_rounds {
        let mut round_span =
            spsep_trace::span!("alg44.round", round = round, width = groups.len());
        let round_start = Instant::now();
        let round_work_before = metrics.total_work();
        metrics.phase(groups.len().max(1));
        metrics.work(Counter::Doubling, triples.len() as u64);
        let updates: Vec<(u32, S::W)> = groups
            .par_iter()
            .filter_map(|&(target, start, end)| {
                let mut best = weight[target as usize];
                let mut any = false;
                for &(_, left, right) in &triples[start as usize..end as usize] {
                    let lw = weight[left as usize];
                    if S::is_zero(lw) {
                        continue;
                    }
                    let cand = S::extend(lw, weight[right as usize]);
                    let merged = S::combine(best, cand);
                    if merged != best {
                        best = merged;
                        any = true;
                    }
                }
                any.then_some((target, best))
            })
            .collect();
        let round_ops = metrics.total_work() - round_work_before;
        round_span.add_ops(round_ops);
        round_span.add_bytes(table_bytes);
        drop(round_span);
        metrics.record_phase(PhaseRecord {
            label: format!("alg44/round {round}"),
            width: groups.len().max(1),
            wall_ns: round_start.elapsed().as_nanos() as u64,
            ops: round_ops,
            peak_bytes: table_bytes,
        });
        if updates.is_empty() {
            break;
        }
        for (slot, w) in updates {
            weight[slot as usize] = w;
        }
    }

    // Absorbing cycles show up as a pair (u,u)? Self-pairs are never
    // registered; detect via u→v→u products instead.
    for &(u, v) in &pairs {
        if let Some(&back) = pair_slot.get(&(v, u)) {
            let cyc = S::extend(weight[pair_slot[&(u, v)] as usize], weight[back as usize]);
            if S::absorbing_cycle(cyc) {
                return Err(AbsorbingCycle);
            }
        }
    }

    // --- Emit E_t from the shared weights. ------------------------------
    let mut eplus: Vec<Edge<S::W>> = Vec::new();
    let mut raw_pairs = 0usize;
    for (id, _node) in tree.nodes().iter().enumerate() {
        let iface = &ifaces[id];
        let mut emit_set = |pos: &[u32]| {
            for &a in pos {
                for &b in pos {
                    if a == b {
                        continue;
                    }
                    raw_pairs += 1;
                    let (u, v) = (iface.verts[a as usize], iface.verts[b as usize]);
                    let w = weight[pair_slot[&(u, v)] as usize];
                    if !S::is_zero(w) {
                        eplus.push(Edge { from: u, to: v, w });
                    }
                }
            }
        };
        emit_set(&iface.sep_pos);
        emit_set(&iface.bnd_pos);
    }
    let eplus = dedupe_eplus::<S>(eplus);
    let stats = AugmentStats {
        eplus_edges: eplus.len(),
        raw_pairs,
        d_g: tree.height(),
        leaf_bound: tree.max_leaf_size().saturating_sub(1),
    };
    Ok(Augmentation { eplus, stats })
}
