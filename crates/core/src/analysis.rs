//! Measurement utilities for verifying the paper's structural claims:
//! minimum-weight diameter (Theorem 3.1), growth-exponent fitting for
//! the Table 1 experiments, and the [`WorkLedger`] that checks measured
//! work/depth against the predicted envelopes of Theorems 4.1/5.1 after
//! every preprocessing run.

use crate::AbsorbingCycle;
use crate::Algorithm;
use rayon::prelude::*;
use spsep_graph::{DiGraph, Edge, Semiring, SpsepError};
use spsep_pram::Report;
use spsep_separator::SepTree;

/// Minimum size (hop count) of a minimum-weight path from `source` to
/// every vertex of the graph formed by `edges` over `0..n`. `0̄` marks
/// unreachable vertices; entry `usize::MAX` in the result marks them.
///
/// Two passes: Bellman–Ford to a fixpoint for exact weights, then BFS
/// across *tight* edges (`dist(u) ⊗ w ≈ dist(v)`) for hop counts — every
/// tight path's weight telescopes to the exact distance, and every
/// hop-minimal optimal path is all-tight.
pub fn min_hops_at_optimum<S: Semiring>(
    g: &DiGraph<S::W>,
    source: usize,
) -> Result<Vec<usize>, AbsorbingCycle> {
    let n = g.n();
    let mut dist = vec![S::zero(); n];
    dist[source] = S::one();
    let mut settled = false;
    for _round in 0..=n {
        let mut changed = false;
        for e in g.edges() {
            let du = dist[e.from as usize];
            if S::is_zero(du) {
                continue;
            }
            let cand = S::extend(du, e.w);
            let cur = dist[e.to as usize];
            let merged = S::combine(cur, cand);
            if merged != cur {
                dist[e.to as usize] = merged;
                changed = true;
            }
        }
        if !changed {
            settled = true;
            break;
        }
    }
    if !settled {
        return Err(AbsorbingCycle);
    }
    // BFS over tight edges.
    let mut hops = vec![usize::MAX; n];
    hops[source] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(source as u32);
    while let Some(v) = queue.pop_front() {
        let hv = hops[v as usize];
        for e in g.out_edges(v as usize) {
            let u = e.to as usize;
            if hops[u] != usize::MAX || S::is_zero(dist[u]) {
                continue;
            }
            if S::approx_eq(S::extend(dist[v as usize], e.w), dist[u]) {
                hops[u] = hv + 1;
                queue.push_back(e.to);
            }
        }
    }
    Ok(hops)
}

/// The minimum-weight diameter (Section 2.2) of the graph formed by
/// `edges` over `0..n`: the max over all ordered reachable pairs of the
/// minimum size of an optimal path. Exact but `O(n·m)` — use on
/// experiment-sized graphs.
pub fn min_weight_diameter<S: Semiring>(
    n: usize,
    edges: &[Edge<S::W>],
) -> Result<usize, AbsorbingCycle> {
    let sources: Vec<usize> = (0..n).collect();
    min_weight_diameter_sampled::<S>(n, edges, &sources)
}

/// Like [`min_weight_diameter`] but restricted to paths *from* the given
/// sample of sources — an `O(|sources|·m)` lower bound on the true
/// diameter, used by the larger-scale experiments.
pub fn min_weight_diameter_sampled<S: Semiring>(
    n: usize,
    edges: &[Edge<S::W>],
    sources: &[usize],
) -> Result<usize, AbsorbingCycle> {
    let g = DiGraph::from_edges(n, edges.to_vec());
    sources
        .par_iter()
        .map(|&s| {
            min_hops_at_optimum::<S>(&g, s).map(|hops| {
                hops.into_iter()
                    .filter(|&h| h != usize::MAX)
                    .max()
                    .unwrap_or(0)
            })
        })
        .try_reduce(|| 0, |a, b| Ok(a.max(b)))
}

/// Minimum-weight diameter of the augmented graph `G⁺ = (V, E ∪ E⁺)` —
/// the measured side of the Theorem 3.1 entry of [`work_ledger`]. Exact
/// (`O(n·m⁺)`): use on experiment-sized instances.
pub fn augmented_diameter<S: Semiring>(
    pre: &crate::query::Preprocessed<S>,
) -> Result<usize, AbsorbingCycle> {
    min_weight_diameter::<S>(pre.n(), pre.augmented_edges())
}

/// Least-squares slope of `log(y)` against `log(x)` — the measured growth
/// exponent reported next to Table 1's predicted exponents.
pub fn fit_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points to fit");
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.max(1e-12).ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    cov / var
}

// ---------------------------------------------------------------------
// Work/depth ledger (Theorems 3.1, 4.1, 5.1)
// ---------------------------------------------------------------------

/// One measured-vs-predicted comparison of the [`WorkLedger`].
#[derive(Clone, Debug)]
pub struct LedgerEntry {
    /// What is being compared (`"augment work"`, `"depth"`, `"diameter"`).
    pub label: String,
    /// The measured quantity (counter total, model depth, or hop count).
    pub measured: u64,
    /// The envelope predicted from the decomposition's shape.
    pub predicted: u64,
    /// `measured / predicted` (0 when `predicted` is 0).
    pub ratio: f64,
    /// Slack multiplier of the one-sided check.
    pub slack: f64,
    /// `measured ≤ slack × predicted` — the paper's bounds are upper
    /// bounds, so only this direction is a violation.
    pub within: bool,
}

/// The predicted-vs-measured work/depth check run after `preprocess`.
///
/// Predictions are computed from the decomposition's *shape* only — leaf
/// sizes, interface sizes `k_t = |S(t) ∪ B(t)|`, tree height `d_G`, the
/// round bound `2⌈log₂ n⌉ + 2·d_G + 2` — mirroring how Theorems 4.1/5.1
/// charge each algorithm:
///
/// * **Alg 4.1**: `Σ_leaf k³` (per-leaf closure) plus
///   `Σ_internal (|S|³ + |B||S|² + |B|²|S|)` (steps ii + iv);
/// * **Alg 4.3**: leaf init plus `rounds × Σ_t k_t³` squaring steps
///   (plus one merge op per node per round);
/// * **Remark 4.4**: leaf init plus `rounds × Σ_t k_t³` pairings — the
///   shared table holds at most `Σ_t k_t(k_t−1)(k_t−2)` triples;
/// * **depth**: one `⌈log₂ width⌉ + 1` charge per parallel phase, with
///   the per-algorithm phase count;
/// * **diameter** (optional): Theorem 3.1's `4·d_G + 2·l + 1` bound on
///   the augmented min-weight diameter, exact — no slack.
///
/// Measured sides come from a [`Report`] snapshot taken right after
/// preprocessing (later queries would add unrelated relaxation work).
/// All kernel `ops` counters undercount their nominal loop bounds (they
/// skip `0̄` entries), so the checks are one-sided: `measured ≤ slack ×
/// predicted`.
#[derive(Clone, Debug)]
pub struct WorkLedger {
    /// Which construction the prediction models.
    pub algo: Algorithm,
    /// The individual comparisons.
    pub entries: Vec<LedgerEntry>,
}

impl WorkLedger {
    /// `true` when every entry is within its predicted envelope.
    pub fn all_within(&self) -> bool {
        self.entries.iter().all(|e| e.within)
    }
}

impl std::fmt::Display for WorkLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "work ledger ({:?})", self.algo)?;
        for e in &self.entries {
            writeln!(
                f,
                "  {:<14} measured={:<14} predicted={:<14} ratio={:.4} [{}]",
                e.label,
                e.measured,
                e.predicted,
                e.ratio,
                if e.within { "ok" } else { "OVER BUDGET" },
            )?;
        }
        Ok(())
    }
}

/// Slack multiplier for the work/depth entries: the predictions are exact
/// loop bounds, but merge bookkeeping and `Counter::Other` attribution
/// leave a small measured overhang on tiny instances.
const LEDGER_SLACK: f64 = 1.25;

fn ledger_entry(label: &str, measured: u64, predicted: u64, slack: f64) -> LedgerEntry {
    let ratio = if predicted == 0 {
        0.0
    } else {
        measured as f64 / predicted as f64
    };
    LedgerEntry {
        label: label.to_owned(),
        measured,
        predicted,
        ratio,
        slack,
        within: (measured as f64) <= slack * (predicted as f64),
    }
}

/// Build the [`WorkLedger`] for one finished preprocessing run.
///
/// `report` must be a [`spsep_pram::Metrics::report`] snapshot taken
/// *after `preprocess` and before any queries*. `measured_diameter`, when
/// given (it costs `O(n·m)` to compute — see [`min_weight_diameter`]),
/// adds the Theorem 3.1 diameter entry.
pub fn work_ledger(
    tree: &SepTree,
    algo: Algorithm,
    report: &Report,
    measured_diameter: Option<usize>,
) -> WorkLedger {
    let cube = |k: usize| (k as u64).pow(3);
    let mut sum_leaf_cube = 0u64; // Σ_leaf |V(leaf)|³
    let mut sum_iface_cube = 0u64; // Σ_t k_t³
    let mut sum_iface_sq = 0u64; // Σ_t k_t²
    let mut sum_internal = 0u64; // Σ_internal |S|³ + |B||S|² + |B|²|S|
    for node in tree.nodes() {
        let iface = crate::augment::Interface::of(node);
        let k = iface.len() as u64;
        sum_iface_cube += k * k * k;
        sum_iface_sq += k * k;
        if node.is_leaf() {
            sum_leaf_cube += cube(node.vertices.len());
        } else {
            let ns = iface.sep_pos.len() as u64;
            let nb = iface.bnd_pos.len() as u64;
            sum_internal += ns * ns * ns + nb * ns * ns + nb * nb * ns;
        }
    }
    let n = tree.n().max(2);
    let d_g = tree.height() as u64;
    let num_nodes = tree.nodes().len() as u64;
    let rounds_bound = 2 * (usize::BITS - n.leading_zeros()) as u64 + 2 * d_g + 2;
    // Depth of one parallel phase over `w` items: ⌈log₂ w⌉ + 1.
    let phase_depth = |w: u64| (u64::BITS - w.max(1).leading_zeros()) as u64 + 1;

    let (work_measured, work_predicted, phases_predicted) = match algo {
        Algorithm::LeavesUp => (
            report.floyd_warshall + report.dijkstra + report.limited,
            sum_leaf_cube + sum_internal,
            (d_g + 1) * phase_depth(num_nodes),
        ),
        Algorithm::PathDoubling => (
            report.floyd_warshall + report.dijkstra + report.doubling,
            sum_leaf_cube + rounds_bound * (sum_iface_cube + num_nodes),
            // init + per round: one squaring phase + one merge sub-phase
            // per tree level.
            (1 + rounds_bound * (d_g + 2)) * phase_depth(num_nodes),
        ),
        Algorithm::SharedDoubling => (
            report.floyd_warshall + report.dijkstra + report.doubling,
            sum_leaf_cube + rounds_bound * sum_iface_cube,
            // init + one pairing phase per round over ≤ Σ k² groups.
            (1 + rounds_bound) * phase_depth(sum_iface_sq),
        ),
    };

    let mut entries = vec![
        ledger_entry("augment work", work_measured, work_predicted, LEDGER_SLACK),
        ledger_entry("depth", report.depth, phases_predicted, LEDGER_SLACK),
    ];
    if let Some(diam) = measured_diameter {
        let l = tree.max_leaf_size().saturating_sub(1) as u64;
        // Theorem 3.1: diam(G⁺) ≤ 4·d_G + 2·l + 1, exact — no slack.
        entries.push(ledger_entry("diameter", diam as u64, 4 * d_g + 2 * l + 1, 1.0));
    }
    WorkLedger { algo, entries }
}

// ---------------------------------------------------------------------
// Ledger sidecar (spsep-ledger/v1)
// ---------------------------------------------------------------------

fn algo_label(algo: Algorithm) -> u32 {
    match algo {
        Algorithm::LeavesUp => 41,
        Algorithm::PathDoubling => 43,
        Algorithm::SharedDoubling => 44,
    }
}

fn algo_from_label(label: u32) -> Result<Algorithm, SpsepError> {
    match label {
        41 => Ok(Algorithm::LeavesUp),
        43 => Ok(Algorithm::PathDoubling),
        44 => Ok(Algorithm::SharedDoubling),
        other => Err(SpsepError::parse(format!("unknown algorithm label {other}"))),
    }
}

/// Serialize a ledger as the `spsep-ledger/v1` sidecar text the CLI
/// writes next to a prepared snapshot: one header line, then one
/// tab-separated line per entry. The measured side of the envelope
/// check exists only in the preparing process, so this is how a later
/// `serve --listen` of the snapshot learns the verdict it should
/// export on `/metrics`.
pub fn ledger_to_text(ledger: &WorkLedger) -> String {
    let mut out = format!("spsep-ledger/v1 algo={}\n", algo_label(ledger.algo));
    for e in &ledger.entries {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            e.label,
            e.measured,
            e.predicted,
            e.slack,
            if e.within { 1 } else { 0 }
        ));
    }
    out
}

/// Parse an `spsep-ledger/v1` sidecar produced by [`ledger_to_text`].
/// The `ratio` field is recomputed from `measured`/`predicted`.
///
/// # Errors
///
/// [`SpsepError::Parse`] on any header, field-count, or numeric
/// violation.
pub fn ledger_from_text(text: &str) -> Result<WorkLedger, SpsepError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| SpsepError::parse("empty ledger sidecar"))?;
    let algo = header
        .strip_prefix("spsep-ledger/v1 algo=")
        .ok_or_else(|| SpsepError::parse_at(1, format!("bad ledger header {header:?}")))?
        .trim()
        .parse::<u32>()
        .map_err(|_| SpsepError::parse_at(1, "bad algorithm label"))
        .and_then(algo_from_label)?;
    let mut entries = Vec::new();
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 5 {
            return Err(SpsepError::parse_at(
                lineno,
                format!("expected 5 tab-separated fields, got {}", fields.len()),
            ));
        }
        let measured: u64 = fields[1]
            .parse()
            .map_err(|_| SpsepError::parse_at(lineno, "bad measured"))?;
        let predicted: u64 = fields[2]
            .parse()
            .map_err(|_| SpsepError::parse_at(lineno, "bad predicted"))?;
        let slack: f64 = fields[3]
            .parse()
            .map_err(|_| SpsepError::parse_at(lineno, "bad slack"))?;
        if !slack.is_finite() || slack <= 0.0 {
            return Err(SpsepError::parse_at(lineno, "slack must be finite and positive"));
        }
        let within = match fields[4] {
            "1" => true,
            "0" => false,
            other => {
                return Err(SpsepError::parse_at(
                    lineno,
                    format!("bad within flag {other:?}"),
                ))
            }
        };
        let ratio = if predicted == 0 {
            0.0
        } else {
            measured as f64 / predicted as f64
        };
        entries.push(LedgerEntry {
            label: fields[0].to_string(),
            measured,
            predicted,
            ratio,
            slack,
            within,
        });
    }
    if entries.is_empty() {
        return Err(SpsepError::parse("ledger sidecar has no entries"));
    }
    Ok(WorkLedger { algo, entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsep_graph::semiring::Tropical;

    #[test]
    fn hops_prefer_fewer_edges_among_equal_weight() {
        // 0→1→2 with weights 1,1 and a direct 0→2 of weight 2:
        // distance 2 is achieved with 1 hop.
        let g = DiGraph::from_edges(
            3,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 1.0),
                Edge::new(0, 2, 2.0),
            ],
        );
        let hops = min_hops_at_optimum::<Tropical>(&g, 0).unwrap();
        assert_eq!(hops, vec![0, 1, 1]);
    }

    #[test]
    fn diameter_of_path() {
        let edges: Vec<Edge<f64>> = (0..4).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        assert_eq!(min_weight_diameter::<Tropical>(5, &edges).unwrap(), 4);
    }

    #[test]
    fn diameter_shrinks_with_shortcuts() {
        let mut edges: Vec<Edge<f64>> = (0..4).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        edges.push(Edge::new(0, 4, 4.0)); // exact shortcut
        assert_eq!(min_weight_diameter::<Tropical>(5, &edges).unwrap(), 3);
    }

    #[test]
    fn absorbing_cycle_detected() {
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(1, 0, -2.0)];
        assert!(min_weight_diameter::<Tropical>(2, &edges).is_err());
    }

    #[test]
    fn unreachable_ignored() {
        let edges = vec![Edge::new(0, 1, 1.0)];
        assert_eq!(min_weight_diameter::<Tropical>(3, &edges).unwrap(), 1);
    }

    #[test]
    fn exponent_fit_recovers_power_law() {
        let xs: Vec<f64> = vec![100.0, 200.0, 400.0, 800.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(1.5)).collect();
        let slope = fit_exponent(&xs, &ys);
        assert!((slope - 1.5).abs() < 1e-9, "slope {slope}");
    }

    fn grid_instance(dims: [usize; 2], seed: u64) -> (DiGraph<f64>, spsep_separator::SepTree) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (g, _) = spsep_graph::generators::grid(&dims, &mut rng);
        let tree = spsep_separator::builders::grid_tree(
            &dims,
            spsep_separator::RecursionLimits::default(),
        );
        (g, tree)
    }

    #[test]
    fn ledger_within_envelope_for_all_algorithms() {
        let (g, tree) = grid_instance([9, 8], 21);
        for algo in [
            Algorithm::LeavesUp,
            Algorithm::PathDoubling,
            Algorithm::SharedDoubling,
        ] {
            let metrics = spsep_pram::Metrics::new();
            let pre = crate::preprocess::<Tropical>(&g, &tree, algo, &metrics)
                .unwrap_or_else(|e| panic!("{e}"));
            let report = metrics.report();
            let diam = augmented_diameter::<Tropical>(&pre).unwrap();
            let ledger = work_ledger(&tree, algo, &report, Some(diam));
            assert_eq!(ledger.entries.len(), 3);
            assert!(
                ledger.all_within(),
                "{algo:?} ledger over budget:\n{ledger}"
            );
            for e in &ledger.entries {
                assert!(e.predicted > 0, "{algo:?} {}: zero prediction", e.label);
                assert!(e.ratio > 0.0, "{algo:?} {}: nothing measured", e.label);
            }
        }
    }

    #[test]
    fn ledger_flags_fabricated_overrun() {
        let (g, tree) = grid_instance([6, 6], 22);
        let metrics = spsep_pram::Metrics::new();
        crate::preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics)
            .unwrap_or_else(|e| panic!("{e}"));
        let mut report = metrics.report();
        // An instrumentation bug that inflated the measured work 100×
        // must trip the one-sided check.
        report.floyd_warshall *= 100;
        let ledger = work_ledger(&tree, Algorithm::LeavesUp, &report, None);
        assert!(!ledger.all_within(), "overrun not flagged:\n{ledger}");
        let display = ledger.to_string();
        assert!(display.contains("OVER BUDGET"), "{display}");
        assert!(display.contains("augment work"), "{display}");
    }

    #[test]
    fn ledger_diameter_entry_is_exact_bound() {
        let (g, tree) = grid_instance([7, 7], 23);
        let metrics = spsep_pram::Metrics::new();
        let pre = crate::preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics)
            .unwrap_or_else(|e| panic!("{e}"));
        let report = metrics.report();
        let diam = augmented_diameter::<Tropical>(&pre).unwrap();
        let ledger = work_ledger(&tree, Algorithm::LeavesUp, &report, Some(diam));
        let entry = ledger
            .entries
            .iter()
            .find(|e| e.label == "diameter")
            .expect("diameter entry present");
        // Theorem 3.1 is an unconditional bound: no slack tolerated.
        assert_eq!(entry.slack, 1.0);
        assert!(entry.within, "Theorem 3.1 violated: {entry:?}");
        let d_g = tree.height() as u64;
        let l = tree.max_leaf_size().saturating_sub(1) as u64;
        assert_eq!(entry.predicted, 4 * d_g + 2 * l + 1);
    }

    #[test]
    fn ledger_sidecar_roundtrips() {
        let (g, tree) = grid_instance([6, 6], 9);
        let metrics = spsep_pram::Metrics::new();
        crate::preprocess::<Tropical>(&g, &tree, Algorithm::PathDoubling, &metrics)
            .unwrap_or_else(|e| panic!("{e}"));
        let ledger = work_ledger(&tree, Algorithm::PathDoubling, &metrics.report(), None);
        let text = ledger_to_text(&ledger);
        assert!(text.starts_with("spsep-ledger/v1 algo=43\n"));
        let back = ledger_from_text(&text).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(back.algo, ledger.algo);
        assert_eq!(back.entries.len(), ledger.entries.len());
        for (a, b) in back.entries.iter().zip(ledger.entries.iter()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.measured, b.measured);
            assert_eq!(a.predicted, b.predicted);
            assert_eq!(a.within, b.within);
            assert!((a.ratio - b.ratio).abs() < 1e-12);
        }
    }

    #[test]
    fn ledger_sidecar_rejects_corruption() {
        assert!(ledger_from_text("").is_err());
        assert!(ledger_from_text("spsep-ledger/v2 algo=41\nx\t1\t1\t1\t1\n").is_err());
        assert!(ledger_from_text("spsep-ledger/v1 algo=99\nx\t1\t1\t1\t1\n").is_err());
        assert!(ledger_from_text("spsep-ledger/v1 algo=41\n").is_err());
        assert!(ledger_from_text("spsep-ledger/v1 algo=41\nx\t1\t1\t1\n").is_err());
        assert!(ledger_from_text("spsep-ledger/v1 algo=41\nx\tbad\t1\t1\t1\n").is_err());
        assert!(ledger_from_text("spsep-ledger/v1 algo=41\nx\t1\t1\t-2\t1\n").is_err());
        assert!(ledger_from_text("spsep-ledger/v1 algo=41\nx\t1\t1\t1\t2\n").is_err());
    }
}
