//! Measurement utilities for verifying the paper's structural claims:
//! minimum-weight diameter (Theorem 3.1) and growth-exponent fitting for
//! the Table 1 experiments.

use crate::AbsorbingCycle;
use rayon::prelude::*;
use spsep_graph::{DiGraph, Edge, Semiring};

/// Minimum size (hop count) of a minimum-weight path from `source` to
/// every vertex of the graph formed by `edges` over `0..n`. `0̄` marks
/// unreachable vertices; entry `usize::MAX` in the result marks them.
///
/// Two passes: Bellman–Ford to a fixpoint for exact weights, then BFS
/// across *tight* edges (`dist(u) ⊗ w ≈ dist(v)`) for hop counts — every
/// tight path's weight telescopes to the exact distance, and every
/// hop-minimal optimal path is all-tight.
pub fn min_hops_at_optimum<S: Semiring>(
    g: &DiGraph<S::W>,
    source: usize,
) -> Result<Vec<usize>, AbsorbingCycle> {
    let n = g.n();
    let mut dist = vec![S::zero(); n];
    dist[source] = S::one();
    let mut settled = false;
    for _round in 0..=n {
        let mut changed = false;
        for e in g.edges() {
            let du = dist[e.from as usize];
            if S::is_zero(du) {
                continue;
            }
            let cand = S::extend(du, e.w);
            let cur = dist[e.to as usize];
            let merged = S::combine(cur, cand);
            if merged != cur {
                dist[e.to as usize] = merged;
                changed = true;
            }
        }
        if !changed {
            settled = true;
            break;
        }
    }
    if !settled {
        return Err(AbsorbingCycle);
    }
    // BFS over tight edges.
    let mut hops = vec![usize::MAX; n];
    hops[source] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(source as u32);
    while let Some(v) = queue.pop_front() {
        let hv = hops[v as usize];
        for e in g.out_edges(v as usize) {
            let u = e.to as usize;
            if hops[u] != usize::MAX || S::is_zero(dist[u]) {
                continue;
            }
            if S::approx_eq(S::extend(dist[v as usize], e.w), dist[u]) {
                hops[u] = hv + 1;
                queue.push_back(e.to);
            }
        }
    }
    Ok(hops)
}

/// The minimum-weight diameter (Section 2.2) of the graph formed by
/// `edges` over `0..n`: the max over all ordered reachable pairs of the
/// minimum size of an optimal path. Exact but `O(n·m)` — use on
/// experiment-sized graphs.
pub fn min_weight_diameter<S: Semiring>(
    n: usize,
    edges: &[Edge<S::W>],
) -> Result<usize, AbsorbingCycle> {
    let sources: Vec<usize> = (0..n).collect();
    min_weight_diameter_sampled::<S>(n, edges, &sources)
}

/// Like [`min_weight_diameter`] but restricted to paths *from* the given
/// sample of sources — an `O(|sources|·m)` lower bound on the true
/// diameter, used by the larger-scale experiments.
pub fn min_weight_diameter_sampled<S: Semiring>(
    n: usize,
    edges: &[Edge<S::W>],
    sources: &[usize],
) -> Result<usize, AbsorbingCycle> {
    let g = DiGraph::from_edges(n, edges.to_vec());
    sources
        .par_iter()
        .map(|&s| {
            min_hops_at_optimum::<S>(&g, s).map(|hops| {
                hops.into_iter()
                    .filter(|&h| h != usize::MAX)
                    .max()
                    .unwrap_or(0)
            })
        })
        .try_reduce(|| 0, |a, b| Ok(a.max(b)))
}

/// Least-squares slope of `log(y)` against `log(x)` — the measured growth
/// exponent reported next to Table 1's predicted exponents.
pub fn fit_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points to fit");
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.max(1e-12).ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsep_graph::semiring::Tropical;

    #[test]
    fn hops_prefer_fewer_edges_among_equal_weight() {
        // 0→1→2 with weights 1,1 and a direct 0→2 of weight 2:
        // distance 2 is achieved with 1 hop.
        let g = DiGraph::from_edges(
            3,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 1.0),
                Edge::new(0, 2, 2.0),
            ],
        );
        let hops = min_hops_at_optimum::<Tropical>(&g, 0).unwrap();
        assert_eq!(hops, vec![0, 1, 1]);
    }

    #[test]
    fn diameter_of_path() {
        let edges: Vec<Edge<f64>> = (0..4).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        assert_eq!(min_weight_diameter::<Tropical>(5, &edges).unwrap(), 4);
    }

    #[test]
    fn diameter_shrinks_with_shortcuts() {
        let mut edges: Vec<Edge<f64>> = (0..4).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        edges.push(Edge::new(0, 4, 4.0)); // exact shortcut
        assert_eq!(min_weight_diameter::<Tropical>(5, &edges).unwrap(), 3);
    }

    #[test]
    fn absorbing_cycle_detected() {
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(1, 0, -2.0)];
        assert!(min_weight_diameter::<Tropical>(2, &edges).is_err());
    }

    #[test]
    fn unreachable_ignored() {
        let edges = vec![Edge::new(0, 1, 1.0)];
        assert_eq!(min_weight_diameter::<Tropical>(3, &edges).unwrap(), 1);
    }

    #[test]
    fn exponent_fit_recovers_power_law() {
        let xs: Vec<f64> = vec![100.0, 200.0, 400.0, 800.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(1.5)).collect();
        let slope = fit_exponent(&xs, &ys);
        assert!((slope - 1.5).abs() < 1e-9, "slope {slope}");
    }
}
