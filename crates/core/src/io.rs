//! Persistence for computed augmentations.
//!
//! `E⁺` is a plain weighted edge set, so a preprocessed instance can be
//! stored next to its decomposition tree (see `spsep_separator::io`) and
//! reloaded without re-running Algorithm 4.1/4.3 — the "preprocess once,
//! query forever" deployment mode.
//!
//! ```text
//! ep <n> <num_edges> <d_g> <leaf_bound> <raw_pairs>
//! e <from> <to> <weight>        (0-based, num_edges lines)
//! ```
//!
//! Weights are written with full `f64` round-trip precision.

use crate::augment::{AugmentStats, Augmentation};
use spsep_graph::semiring::Tropical;
use spsep_graph::Edge;
use std::io::{BufRead, Write};

/// Error from [`read_augmentation`].
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem.
    Format(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Serialize a tropical augmentation (`n` is the graph's vertex count,
/// needed for validation at load time).
pub fn write_augmentation<W: Write>(
    n: usize,
    aug: &Augmentation<Tropical>,
    out: &mut W,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut buf = String::new();
    writeln!(
        buf,
        "ep {} {} {} {} {}",
        n,
        aug.eplus.len(),
        aug.stats.d_g,
        aug.stats.leaf_bound,
        aug.stats.raw_pairs
    )
    .unwrap();
    for e in &aug.eplus {
        // `{:?}` prints f64 with round-trip precision.
        writeln!(buf, "e {} {} {:?}", e.from, e.to, e.w).unwrap();
    }
    out.write_all(buf.as_bytes())
}

/// Parse an augmentation previously written by [`write_augmentation`];
/// returns `(n, augmentation)`.
pub fn read_augmentation<R: BufRead>(input: R) -> Result<(usize, Augmentation<Tropical>), ParseError> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| ParseError::Format("empty input".into()))??;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("ep") {
        return Err(ParseError::Format("missing 'ep' header".into()));
    }
    let n: usize = field(parts.next(), "n")?;
    let num_edges: usize = field(parts.next(), "edge count")?;
    let d_g: u32 = field(parts.next(), "d_g")?;
    let leaf_bound: usize = field(parts.next(), "leaf bound")?;
    let raw_pairs: usize = field(parts.next(), "raw pairs")?;
    let mut eplus: Vec<Edge<f64>> = Vec::with_capacity(num_edges);
    for line in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("e") {
            return Err(ParseError::Format("expected 'e' record".into()));
        }
        let from: usize = field(parts.next(), "from")?;
        let to: usize = field(parts.next(), "to")?;
        let w: f64 = field(parts.next(), "weight")?;
        if from >= n || to >= n {
            return Err(ParseError::Format(format!(
                "edge {from}→{to} out of range 0..{n}"
            )));
        }
        eplus.push(Edge::new(from, to, w));
    }
    if eplus.len() != num_edges {
        return Err(ParseError::Format(format!(
            "declared {num_edges} edges, found {}",
            eplus.len()
        )));
    }
    let stats = AugmentStats {
        eplus_edges: eplus.len(),
        raw_pairs,
        d_g,
        leaf_bound,
    };
    Ok((n, Augmentation { eplus, stats }))
}

fn field<T: std::str::FromStr>(f: Option<&str>, what: &str) -> Result<T, ParseError> {
    f.ok_or_else(|| ParseError::Format(format!("missing {what}")))?
        .parse()
        .map_err(|_| ParseError::Format(format!("bad {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{alg41, Preprocessed};
    use rand::SeedableRng;
    use spsep_pram::Metrics;
    use spsep_separator::{builders, RecursionLimits};

    #[test]
    fn roundtrip_and_requery() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(60);
        let (g, _) = spsep_graph::generators::grid(&[9, 8], &mut rng);
        let tree = builders::grid_tree(&[9, 8], RecursionLimits::default());
        let metrics = Metrics::new();
        let aug = alg41::augment_leaves_up::<Tropical>(&g, &tree, &metrics).unwrap();

        let mut buf = Vec::new();
        write_augmentation(g.n(), &aug, &mut buf).unwrap();
        let (n, back) = read_augmentation(buf.as_slice()).unwrap();
        assert_eq!(n, g.n());
        assert_eq!(back.eplus.len(), aug.eplus.len());
        assert_eq!(back.stats.d_g, aug.stats.d_g);
        for (a, b) in aug.eplus.iter().zip(&back.eplus) {
            assert_eq!((a.from, a.to), (b.from, b.to));
            assert_eq!(a.w, b.w, "weights must round-trip bit-exactly");
        }
        // The reloaded augmentation answers queries identically.
        let pre1 = Preprocessed::compile(&g, &tree, aug);
        let pre2 = Preprocessed::compile(&g, &tree, back);
        assert_eq!(pre1.distances_seq(0).0, pre2.distances_seq(0).0);
    }

    #[test]
    fn parse_errors() {
        assert!(read_augmentation("".as_bytes()).is_err());
        assert!(read_augmentation("xx 1 0 0 0 0\n".as_bytes()).is_err());
        assert!(read_augmentation("ep 2 1 0 0 0\n".as_bytes()).is_err()); // count
        assert!(read_augmentation("ep 2 1 0 0 0\ne 0 9 1.0\n".as_bytes()).is_err()); // range
        assert!(read_augmentation("ep 2 1 0 0 0\nq 0 1 1.0\n".as_bytes()).is_err()); // record
        let ok = read_augmentation("ep 2 1 1 1 4\ne 0 1 2.5\n".as_bytes()).unwrap();
        assert_eq!(ok.1.eplus[0].w, 2.5);
    }
}
