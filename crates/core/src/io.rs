//! Persistence for computed augmentations.
//!
//! `E⁺` is a plain weighted edge set, so a preprocessed instance can be
//! stored next to its decomposition tree (see `spsep_separator::io`) and
//! reloaded without re-running Algorithm 4.1/4.3 — the "preprocess once,
//! query forever" deployment mode.
//!
//! ```text
//! ep <n> <num_edges> <d_g> <leaf_bound> <raw_pairs>
//! e <from> <to> <weight>        (0-based, num_edges lines)
//! ```
//!
//! Weights are written with full `f64` round-trip precision.
//!
//! Parsing is hardened: NaN/infinite weights, out-of-range endpoints,
//! and header/line-count mismatches are rejected with line-numbered
//! [`SpsepError::Parse`] errors.

use crate::augment::{AugmentStats, Augmentation};
use spsep_graph::semiring::Tropical;
use spsep_graph::{Edge, SpsepError};
use std::io::{BufRead, Write};

/// Error from [`read_augmentation`] (alias kept for callers of the
/// pre-taxonomy API).
pub type ParseError = SpsepError;

/// Serialize a tropical augmentation (`n` is the graph's vertex count,
/// needed for validation at load time).
pub fn write_augmentation<W: Write>(
    n: usize,
    aug: &Augmentation<Tropical>,
    out: &mut W,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut buf = String::new();
    // Writes into a String are infallible.
    let _ = writeln!(
        buf,
        "ep {} {} {} {} {}",
        n,
        aug.eplus.len(),
        aug.stats.d_g,
        aug.stats.leaf_bound,
        aug.stats.raw_pairs
    );
    for e in &aug.eplus {
        // `{:?}` prints f64 with round-trip precision.
        let _ = writeln!(buf, "e {} {} {:?}", e.from, e.to, e.w);
    }
    out.write_all(buf.as_bytes())
}

/// Parse an augmentation previously written by [`write_augmentation`];
/// returns `(n, augmentation)`.
pub fn read_augmentation<R: BufRead>(
    input: R,
) -> Result<(usize, Augmentation<Tropical>), SpsepError> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| SpsepError::parse("empty input"))??;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("ep") {
        return Err(SpsepError::parse_at(1, "missing 'ep' header"));
    }
    let n: usize = field(parts.next(), 1, "n")?;
    let num_edges: usize = field(parts.next(), 1, "edge count")?;
    let d_g: u32 = field(parts.next(), 1, "d_g")?;
    let leaf_bound: usize = field(parts.next(), 1, "leaf bound")?;
    let raw_pairs: usize = field(parts.next(), 1, "raw pairs")?;
    let mut eplus: Vec<Edge<f64>> = Vec::with_capacity(num_edges.min(1 << 24));
    for (off, line) in lines.enumerate() {
        let lineno = off + 2; // 1-based; header was line 1
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("e") {
            return Err(SpsepError::parse_at(lineno, "expected 'e' record"));
        }
        let from: usize = field(parts.next(), lineno, "from")?;
        let to: usize = field(parts.next(), lineno, "to")?;
        let w: f64 = field(parts.next(), lineno, "weight")?;
        if w.is_nan() {
            return Err(SpsepError::parse_at(lineno, "shortcut weight is NaN"));
        }
        if from >= n || to >= n {
            return Err(SpsepError::parse_at(
                lineno,
                format!("edge {from}→{to} out of range 0..{n}"),
            ));
        }
        eplus.push(Edge::new(from, to, w));
    }
    if eplus.len() != num_edges {
        return Err(SpsepError::parse(format!(
            "declared {num_edges} edges, found {}",
            eplus.len()
        )));
    }
    let stats = AugmentStats {
        eplus_edges: eplus.len(),
        raw_pairs,
        d_g,
        leaf_bound,
    };
    Ok((n, Augmentation { eplus, stats }))
}

fn field<T: std::str::FromStr>(
    f: Option<&str>,
    lineno: usize,
    what: &str,
) -> Result<T, SpsepError> {
    let raw = f.ok_or_else(|| SpsepError::parse_at(lineno, format!("missing {what}")))?;
    raw.parse()
        .map_err(|_| SpsepError::parse_at(lineno, format!("bad {what} '{raw}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{alg41, Preprocessed};
    use rand::SeedableRng;
    use spsep_pram::Metrics;
    use spsep_separator::{builders, RecursionLimits};

    #[test]
    fn roundtrip_and_requery() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(60);
        let (g, _) = spsep_graph::generators::grid(&[9, 8], &mut rng);
        let tree = builders::grid_tree(&[9, 8], RecursionLimits::default());
        let metrics = Metrics::new();
        let aug = alg41::augment_leaves_up::<Tropical>(&g, &tree, &metrics).unwrap();

        let mut buf = Vec::new();
        write_augmentation(g.n(), &aug, &mut buf).unwrap();
        let (n, back) = read_augmentation(buf.as_slice()).unwrap();
        assert_eq!(n, g.n());
        assert_eq!(back.eplus.len(), aug.eplus.len());
        assert_eq!(back.stats.d_g, aug.stats.d_g);
        for (a, b) in aug.eplus.iter().zip(&back.eplus) {
            assert_eq!((a.from, a.to), (b.from, b.to));
            assert_eq!(a.w, b.w, "weights must round-trip bit-exactly");
        }
        // The reloaded augmentation answers queries identically.
        let pre1 = Preprocessed::compile(&g, &tree, aug);
        let pre2 = Preprocessed::compile(&g, &tree, back);
        assert_eq!(pre1.distances_seq(0).0, pre2.distances_seq(0).0);
    }

    #[test]
    fn parse_errors() {
        assert!(read_augmentation("".as_bytes()).is_err());
        assert!(read_augmentation("xx 1 0 0 0 0\n".as_bytes()).is_err());
        assert!(read_augmentation("ep 2 1 0 0 0\n".as_bytes()).is_err()); // count
        assert!(read_augmentation("ep 2 1 0 0 0\ne 0 9 1.0\n".as_bytes()).is_err()); // range
        assert!(read_augmentation("ep 2 1 0 0 0\nq 0 1 1.0\n".as_bytes()).is_err()); // record
        let ok = read_augmentation("ep 2 1 1 1 4\ne 0 1 2.5\n".as_bytes()).unwrap();
        assert_eq!(ok.1.eplus[0].w, 2.5);
    }

    #[test]
    fn parse_errors_are_typed_and_line_numbered() {
        // NaN weight on the first edge line → line 2.
        assert!(matches!(
            read_augmentation("ep 2 1 0 0 0\ne 0 1 NaN\n".as_bytes()),
            Err(SpsepError::Parse { line: Some(2), .. })
        ));
        // Bad header field.
        assert!(matches!(
            read_augmentation("ep x 1 0 0 0\n".as_bytes()),
            Err(SpsepError::Parse { line: Some(1), .. })
        ));
        // Out-of-range endpoint reports its line.
        assert!(matches!(
            read_augmentation("ep 2 2 0 0 0\ne 0 1 1.0\ne 5 1 1.0\n".as_bytes()),
            Err(SpsepError::Parse { line: Some(3), .. })
        ));
    }
}
