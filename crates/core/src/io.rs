//! Persistence: text augmentations and the binary oracle snapshot.
//!
//! Two artifacts live here:
//!
//! 1. **Text augmentations** ([`write_augmentation`] /
//!    [`read_augmentation`]): `E⁺` is a plain weighted edge set, so a
//!    preprocessed instance can be stored next to its decomposition
//!    tree (see `spsep_separator::io`) and reloaded without re-running
//!    Algorithm 4.1/4.3.
//!
//!    ```text
//!    ep <n> <num_edges> <d_g> <leaf_bound> <raw_pairs>
//!    e <from> <to> <weight>        (0-based, num_edges lines)
//!    ```
//!
//!    Weights are written with full `f64` round-trip precision.
//!
//! 2. **The `spsep-oracle/v1` binary snapshot** ([`write_snapshot`] /
//!    [`read_snapshot`]): everything the serving layer
//!    ([`crate::oracle::Oracle`]) needs to answer queries — the graph,
//!    the separator tree with its per-node boundary tables, and the
//!    augmented edge set — in one versioned, checksummed file. This is
//!    the "prepare once, query many" deployment mode: the expensive
//!    Sections 3–5 preprocessing runs once (`spsep-cli prepare`) and a
//!    long-lived server reloads the result in milliseconds
//!    (`spsep-cli serve`).
//!
//!    ```text
//!    magic  "SPSEPORC" (8 bytes)
//!    u32    format version (= 1)
//!    u32    augmentation algorithm (0 = 4.1, 1 = 4.3, 2 = 4.4)
//!    u32    section count (= 3)
//!    3 × section:
//!        tag      4 bytes ("GRPH" | "TREE" | "AUGM", in this order)
//!        u64      payload length
//!        u64      FNV-1a 64 checksum of the payload
//!        payload  (see `spsep_graph::io::graph_to_bytes`,
//!                  `spsep_separator::io::tree_to_bytes`, and the
//!                  `AUGM` layout below)
//!    magic  "SPSEPEND" (8 bytes)
//!    ```
//!
//!    `AUGM` payload: `d_g: u32 · leaf_bound: u64 · raw_pairs: u64 ·
//!    count: u64 · count × (from: u32, to: u32, weight: f64 bits)`.
//!
//! Parsing of both artifacts is hardened: NaN weights, out-of-range
//! endpoints, count mismatches, truncation at any byte, unknown
//! versions, and checksum failures are rejected with typed
//! [`SpsepError::Parse`]/[`SpsepError::Io`] errors — never a panic
//! (`crates/testkit` drives a corruption catalog through every path).

use crate::augment::{AugmentStats, Augmentation};
use crate::Algorithm;
use spsep_graph::bytes::{fnv1a64, ByteReader, ByteWriter};
use spsep_graph::semiring::Tropical;
use spsep_graph::{DiGraph, Edge, SpsepError};
use spsep_separator::SepTree;
use std::io::{BufRead, Read, Write};

/// Error from [`read_augmentation`] (alias kept for callers of the
/// pre-taxonomy API).
pub type ParseError = SpsepError;

/// Serialize a tropical augmentation (`n` is the graph's vertex count,
/// needed for validation at load time).
pub fn write_augmentation<W: Write>(
    n: usize,
    aug: &Augmentation<Tropical>,
    out: &mut W,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut buf = String::new();
    // Writes into a String are infallible.
    let _ = writeln!(
        buf,
        "ep {} {} {} {} {}",
        n,
        aug.eplus.len(),
        aug.stats.d_g,
        aug.stats.leaf_bound,
        aug.stats.raw_pairs
    );
    for e in &aug.eplus {
        // `{:?}` prints f64 with round-trip precision.
        let _ = writeln!(buf, "e {} {} {:?}", e.from, e.to, e.w);
    }
    out.write_all(buf.as_bytes())
}

/// Parse an augmentation previously written by [`write_augmentation`];
/// returns `(n, augmentation)`.
pub fn read_augmentation<R: BufRead>(
    input: R,
) -> Result<(usize, Augmentation<Tropical>), SpsepError> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| SpsepError::parse("empty input"))??;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("ep") {
        return Err(SpsepError::parse_at(1, "missing 'ep' header"));
    }
    let n: usize = field(parts.next(), 1, "n")?;
    let num_edges: usize = field(parts.next(), 1, "edge count")?;
    let d_g: u32 = field(parts.next(), 1, "d_g")?;
    let leaf_bound: usize = field(parts.next(), 1, "leaf bound")?;
    let raw_pairs: usize = field(parts.next(), 1, "raw pairs")?;
    let mut eplus: Vec<Edge<f64>> = Vec::with_capacity(num_edges.min(1 << 24));
    for (off, line) in lines.enumerate() {
        let lineno = off + 2; // 1-based; header was line 1
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("e") {
            return Err(SpsepError::parse_at(lineno, "expected 'e' record"));
        }
        let from: usize = field(parts.next(), lineno, "from")?;
        let to: usize = field(parts.next(), lineno, "to")?;
        let w: f64 = field(parts.next(), lineno, "weight")?;
        if w.is_nan() {
            return Err(SpsepError::parse_at(lineno, "shortcut weight is NaN"));
        }
        if from >= n || to >= n {
            return Err(SpsepError::parse_at(
                lineno,
                format!("edge {from}→{to} out of range 0..{n}"),
            ));
        }
        eplus.push(Edge::new(from, to, w));
    }
    if eplus.len() != num_edges {
        return Err(SpsepError::parse(format!(
            "declared {num_edges} edges, found {}",
            eplus.len()
        )));
    }
    let stats = AugmentStats {
        eplus_edges: eplus.len(),
        raw_pairs,
        d_g,
        leaf_bound,
    };
    Ok((n, Augmentation { eplus, stats }))
}

/// File magic of the `spsep-oracle/v1` snapshot format.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SPSEPORC";
/// Trailer magic closing a snapshot (truncation sentinel).
pub const SNAPSHOT_TRAILER: &[u8; 8] = b"SPSEPEND";
/// Snapshot format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

const SECTION_GRAPH: &[u8; 4] = b"GRPH";
const SECTION_TREE: &[u8; 4] = b"TREE";
const SECTION_AUGMENTATION: &[u8; 4] = b"AUGM";

/// A deserialized `spsep-oracle/v1` snapshot: everything needed to
/// compile a query-ready [`crate::Preprocessed`] (via
/// [`crate::oracle::Oracle::from_snapshot`]) without re-running the
/// Sections 3–5 preprocessing.
#[derive(Debug)]
pub struct Snapshot {
    /// The weighted digraph `G`.
    pub graph: DiGraph<f64>,
    /// The separator decomposition tree, boundary tables verified.
    pub tree: SepTree,
    /// Which `E⁺` construction produced the augmentation.
    pub algo: Algorithm,
    /// The shortcut set `E⁺` with its construction statistics.
    pub augmentation: Augmentation<Tropical>,
}

fn algo_code(algo: Algorithm) -> u32 {
    match algo {
        Algorithm::LeavesUp => 0,
        Algorithm::PathDoubling => 1,
        Algorithm::SharedDoubling => 2,
    }
}

fn algo_from_code(code: u32) -> Result<Algorithm, SpsepError> {
    match code {
        0 => Ok(Algorithm::LeavesUp),
        1 => Ok(Algorithm::PathDoubling),
        2 => Ok(Algorithm::SharedDoubling),
        other => Err(SpsepError::parse(format!(
            "unknown augmentation algorithm code {other}"
        ))),
    }
}

fn put_section(out: &mut ByteWriter, tag: &[u8; 4], payload: &[u8]) {
    out.bytes(tag);
    out.u64(payload.len() as u64);
    out.u64(fnv1a64(payload));
    out.bytes(payload);
}

fn take_section<'a>(r: &mut ByteReader<'a>, tag: &[u8; 4]) -> Result<&'a [u8], SpsepError> {
    let name = String::from_utf8_lossy(tag).into_owned();
    let got = r.take(4, "section tag")?;
    if got != tag {
        return Err(SpsepError::parse(format!(
            "expected section '{name}', found '{}'",
            String::from_utf8_lossy(got)
        )));
    }
    let len = r.count(&format!("'{name}' section length"), 1)?;
    let declared = r.u64("section checksum")?;
    let payload = r.take(len, "section payload")?;
    let actual = fnv1a64(payload);
    if actual != declared {
        return Err(SpsepError::parse(format!(
            "checksum mismatch in section '{name}': \
             stored {declared:#018x}, computed {actual:#018x}"
        )));
    }
    Ok(payload)
}

fn augmentation_to_bytes(aug: &Augmentation<Tropical>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(aug.stats.d_g);
    w.u64(aug.stats.leaf_bound as u64);
    w.u64(aug.stats.raw_pairs as u64);
    w.u64(aug.eplus.len() as u64);
    for e in &aug.eplus {
        w.u32(e.from);
        w.u32(e.to);
        w.f64(e.w);
    }
    w.into_inner()
}

fn augmentation_from_bytes(
    bytes: &[u8],
    n: usize,
) -> Result<Augmentation<Tropical>, SpsepError> {
    let mut r = ByteReader::new(bytes);
    let d_g = r.u32("d_g")?;
    let leaf_bound = r.count("leaf bound", 0)?;
    let raw_pairs = r.count("raw pair count", 0)?;
    let count = r.count("shortcut count", 16)?;
    let mut eplus: Vec<Edge<f64>> = Vec::with_capacity(count);
    for i in 0..count {
        let from = r.u32("shortcut source")?;
        let to = r.u32("shortcut target")?;
        let w = r.f64("shortcut weight")?;
        if from as usize >= n || to as usize >= n {
            return Err(SpsepError::parse(format!(
                "shortcut #{i} endpoint {from}→{to} out of range 0..{n}"
            )));
        }
        if w.is_nan() {
            return Err(SpsepError::parse(format!("shortcut #{i} weight is NaN")));
        }
        eplus.push(Edge::new(from as usize, to as usize, w));
    }
    r.expect_exhausted("augmentation payload")?;
    let stats = AugmentStats {
        eplus_edges: eplus.len(),
        raw_pairs,
        d_g,
        leaf_bound,
    };
    Ok(Augmentation { eplus, stats })
}

/// Serialize a prepared instance as an `spsep-oracle/v1` snapshot.
pub fn snapshot_to_bytes(
    graph: &DiGraph<f64>,
    tree: &SepTree,
    algo: Algorithm,
    augmentation: &Augmentation<Tropical>,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.bytes(SNAPSHOT_MAGIC);
    w.u32(SNAPSHOT_VERSION);
    w.u32(algo_code(algo));
    w.u32(3);
    put_section(&mut w, SECTION_GRAPH, &spsep_graph::io::graph_to_bytes(graph));
    put_section(&mut w, SECTION_TREE, &spsep_separator::io::tree_to_bytes(tree));
    put_section(&mut w, SECTION_AUGMENTATION, &augmentation_to_bytes(augmentation));
    w.bytes(SNAPSHOT_TRAILER);
    w.into_inner()
}

/// Parse an `spsep-oracle/v1` snapshot from bytes.
///
/// Verifies, in order: header magic, format version, the per-section
/// checksums, each section's internal invariants (including the
/// per-node boundary tables of the tree section), the trailer magic,
/// and finally the cross-structure [`crate::validate_instance`]
/// pre-flight — a loaded snapshot is exactly as trustworthy as a
/// freshly preprocessed instance.
pub fn snapshot_from_bytes(bytes: &[u8]) -> Result<Snapshot, SpsepError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(8, "snapshot magic")?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SpsepError::parse(
            "bad magic: not an spsep-oracle snapshot".to_string(),
        ));
    }
    let version = r.u32("snapshot version")?;
    if version != SNAPSHOT_VERSION {
        return Err(SpsepError::parse(format!(
            "snapshot version {version} unsupported (this build reads v{SNAPSHOT_VERSION})"
        )));
    }
    let algo = algo_from_code(r.u32("algorithm code")?)?;
    let sections = r.u32("section count")?;
    if sections != 3 {
        return Err(SpsepError::parse(format!(
            "expected 3 sections, header declares {sections}"
        )));
    }
    let graph = spsep_graph::io::graph_from_bytes(take_section(&mut r, SECTION_GRAPH)?)?;
    let tree = spsep_separator::io::tree_from_bytes(take_section(&mut r, SECTION_TREE)?)?;
    let augmentation =
        augmentation_from_bytes(take_section(&mut r, SECTION_AUGMENTATION)?, graph.n())?;
    let trailer = r.take(8, "snapshot trailer")?;
    if trailer != SNAPSHOT_TRAILER {
        return Err(SpsepError::parse(
            "bad trailer: snapshot is truncated or has trailing sections".to_string(),
        ));
    }
    r.expect_exhausted("snapshot")?;
    crate::validate_instance(&graph, &tree)?;
    Ok(Snapshot {
        graph,
        tree,
        algo,
        augmentation,
    })
}

/// Write a snapshot to `out` (see [`snapshot_to_bytes`] for the format).
pub fn write_snapshot<W: Write>(
    graph: &DiGraph<f64>,
    tree: &SepTree,
    algo: Algorithm,
    augmentation: &Augmentation<Tropical>,
    out: &mut W,
) -> Result<(), SpsepError> {
    out.write_all(&snapshot_to_bytes(graph, tree, algo, augmentation))?;
    Ok(())
}

/// Read a snapshot from `input` (the whole stream is consumed).
pub fn read_snapshot<R: Read>(mut input: R) -> Result<Snapshot, SpsepError> {
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes)?;
    snapshot_from_bytes(&bytes)
}

fn field<T: std::str::FromStr>(
    f: Option<&str>,
    lineno: usize,
    what: &str,
) -> Result<T, SpsepError> {
    let raw = f.ok_or_else(|| SpsepError::parse_at(lineno, format!("missing {what}")))?;
    raw.parse()
        .map_err(|_| SpsepError::parse_at(lineno, format!("bad {what} '{raw}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{alg41, Preprocessed};
    use rand::SeedableRng;
    use spsep_pram::Metrics;
    use spsep_separator::{builders, RecursionLimits};

    #[test]
    fn roundtrip_and_requery() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(60);
        let (g, _) = spsep_graph::generators::grid(&[9, 8], &mut rng);
        let tree = builders::grid_tree(&[9, 8], RecursionLimits::default());
        let metrics = Metrics::new();
        let aug = alg41::augment_leaves_up::<Tropical>(&g, &tree, &metrics).unwrap();

        let mut buf = Vec::new();
        write_augmentation(g.n(), &aug, &mut buf).unwrap();
        let (n, back) = read_augmentation(buf.as_slice()).unwrap();
        assert_eq!(n, g.n());
        assert_eq!(back.eplus.len(), aug.eplus.len());
        assert_eq!(back.stats.d_g, aug.stats.d_g);
        for (a, b) in aug.eplus.iter().zip(&back.eplus) {
            assert_eq!((a.from, a.to), (b.from, b.to));
            assert_eq!(a.w, b.w, "weights must round-trip bit-exactly");
        }
        // The reloaded augmentation answers queries identically.
        let pre1 = Preprocessed::compile(&g, &tree, aug);
        let pre2 = Preprocessed::compile(&g, &tree, back);
        assert_eq!(pre1.distances_seq(0).0, pre2.distances_seq(0).0);
    }

    #[test]
    fn parse_errors() {
        assert!(read_augmentation("".as_bytes()).is_err());
        assert!(read_augmentation("xx 1 0 0 0 0\n".as_bytes()).is_err());
        assert!(read_augmentation("ep 2 1 0 0 0\n".as_bytes()).is_err()); // count
        assert!(read_augmentation("ep 2 1 0 0 0\ne 0 9 1.0\n".as_bytes()).is_err()); // range
        assert!(read_augmentation("ep 2 1 0 0 0\nq 0 1 1.0\n".as_bytes()).is_err()); // record
        let ok = read_augmentation("ep 2 1 1 1 4\ne 0 1 2.5\n".as_bytes()).unwrap();
        assert_eq!(ok.1.eplus[0].w, 2.5);
    }

    #[test]
    fn snapshot_roundtrip_is_bit_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let (g, _) = spsep_graph::generators::grid(&[8, 7], &mut rng);
        let tree = builders::grid_tree(&[8, 7], RecursionLimits::default());
        let metrics = Metrics::new();
        let aug = alg41::augment_leaves_up::<Tropical>(&g, &tree, &metrics).unwrap();

        let bytes = snapshot_to_bytes(&g, &tree, crate::Algorithm::LeavesUp, &aug);
        let snap = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(snap.graph.n(), g.n());
        assert_eq!(snap.graph.m(), g.m());
        assert_eq!(snap.algo, crate::Algorithm::LeavesUp);
        assert_eq!(snap.augmentation.eplus.len(), aug.eplus.len());
        assert_eq!(snap.augmentation.stats.d_g, aug.stats.d_g);
        assert_eq!(snap.augmentation.stats.leaf_bound, aug.stats.leaf_bound);
        assert_eq!(snap.augmentation.stats.raw_pairs, aug.stats.raw_pairs);
        for (a, b) in aug.eplus.iter().zip(&snap.augmentation.eplus) {
            assert_eq!((a.from, a.to), (b.from, b.to));
            assert_eq!(a.w.to_bits(), b.w.to_bits());
        }
        // Distances recomputed from the snapshot are bit-identical.
        let pre1 = Preprocessed::compile(&g, &tree, aug);
        let pre2 = Preprocessed::compile(&snap.graph, &snap.tree, snap.augmentation);
        let (d1, _) = pre1.distances_seq(0);
        let (d2, _) = pre2.distances_seq(0);
        for (a, b) in d1.iter().zip(&d2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn snapshot_header_corruptions_are_typed_errors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(62);
        let (g, _) = spsep_graph::generators::grid(&[5, 5], &mut rng);
        let tree = builders::grid_tree(&[5, 5], RecursionLimits::default());
        let metrics = Metrics::new();
        let aug = alg41::augment_leaves_up::<Tropical>(&g, &tree, &metrics).unwrap();
        let bytes = snapshot_to_bytes(&g, &tree, crate::Algorithm::PathDoubling, &aug);

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            snapshot_from_bytes(&bad),
            Err(SpsepError::Parse { .. })
        ));
        // Version skew.
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&2u32.to_le_bytes());
        let err = snapshot_from_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("version 2"), "{err}");
        // Unknown algorithm code.
        let mut bad = bytes.clone();
        bad[12..16].copy_from_slice(&9u32.to_le_bytes());
        assert!(snapshot_from_bytes(&bad).is_err());
        // Flipped payload byte → checksum mismatch.
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0xff;
        let err = snapshot_from_bytes(&bad).unwrap_err();
        assert!(
            matches!(err, SpsepError::Parse { .. }),
            "flipped byte must be caught: {err}"
        );
        // Truncation at every 97th byte (every byte is covered by the
        // testkit catalog; this keeps the unit test fast).
        for cut in (0..bytes.len()).step_by(97) {
            assert!(snapshot_from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn parse_errors_are_typed_and_line_numbered() {
        // NaN weight on the first edge line → line 2.
        assert!(matches!(
            read_augmentation("ep 2 1 0 0 0\ne 0 1 NaN\n".as_bytes()),
            Err(SpsepError::Parse { line: Some(2), .. })
        ));
        // Bad header field.
        assert!(matches!(
            read_augmentation("ep x 1 0 0 0\n".as_bytes()),
            Err(SpsepError::Parse { line: Some(1), .. })
        ));
        // Out-of-range endpoint reports its line.
        assert!(matches!(
            read_augmentation("ep 2 2 0 0 0\ne 0 1 1.0\ne 5 1 1.0\n".as_bytes()),
            Err(SpsepError::Parse { line: Some(3), .. })
        ));
    }
}
