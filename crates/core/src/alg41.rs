//! Algorithm 4.1: computing `E⁺` from the leaves up.
//!
//! One parallel phase per tree level, bottom-up. Processing a node `t`
//! with children `t₁, t₂` (paper steps i–v):
//!
//! i.   build `H_S` on `S(t)` with `w(u,v) = min(dist_{G(t₁)}, dist_{G(t₂)})`
//!      — available because `S(t) ⊆ B(t₁) ∩ B(t₂)`;
//! ii.  all-pairs shortest paths on `H_S` (Floyd–Warshall); the result is
//!      `dist_{G(t)}` restricted to `S(t)×S(t)` (Prop. 4.2);
//! iii. build `H` on `B(t) ∪ S(t)` with `B×S`/`S×B` edges from child
//!      distances and `S×S` edges from `dist_{H_S}`;
//! iv.  3-limited shortest paths in `H` from/to every boundary vertex —
//!      realized as the two rectangular min-plus products
//!      `(B×S)·(S×S)` and `(B×S)·(S×B)`, which is exactly the
//!      `O(|B(t)|²|S(t)| + |B(t)||S(t)|²)` work the paper charges;
//! v.   emit `S×S` and `B×B` distances as `E_t`, and keep the `B×B`
//!      matrix for the parent.
//!
//! Leaves compute `dist_{G(t)}` directly (Floyd–Warshall on their O(1)
//! size induced subgraph, or multi-source Dijkstra when a large leaf is
//! sparse — see [`crate::augment::leaf_iface_matrix_ws`]).
//!
//! Per-node scratch comes from a [`WorkspacePool`]: in steady state a
//! level allocates only its outputs (interface matrices, `E_t` lists),
//! and child matrices are freed the moment their parent consumed them.
//! Each level is profiled into [`Metrics`]' phase log (wall time, model
//! ops, peak live bytes of matrices + workspaces).
//!
//! Negative (absorbing) cycles surface as a strictly-better-than-`1̄`
//! diagonal in a leaf or `H_S` computation — the lowest node whose
//! separator the cycle crosses necessarily exposes it (paper comment (i)).

use crate::augment::{dedupe_eplus, emit_node_edges, interfaces, AugmentStats, Augmentation, Interface};
use crate::workspace::{NodeWorkspace, WorkspacePool};
use crate::AbsorbingCycle;
use rayon::prelude::*;
use spsep_graph::{DiGraph, Edge, Semiring};
use spsep_pram::{Counter, Metrics, PhaseRecord};
use spsep_separator::SepTree;
use std::time::Instant;

/// Per-node output: the interface matrix (row-major over
/// `Interface::verts`) and this node's `E_t` contribution.
pub(crate) struct NodeOutput<S: Semiring> {
    mat: Vec<S::W>,
    edges: Vec<Edge<S::W>>,
    raw_pairs: usize,
    fw_ops: u64,
    dijkstra_ops: u64,
    limited_ops: u64,
    absorbing: bool,
}

/// Compute `E⁺` with Algorithm 4.1.
pub fn augment_leaves_up<S: Semiring>(
    g: &DiGraph<S::W>,
    tree: &SepTree,
    metrics: &Metrics,
) -> Result<Augmentation<S>, AbsorbingCycle> {
    assert_eq!(g.n(), tree.n(), "tree and graph disagree on n");
    let ifaces = interfaces(tree);
    let mut mats: Vec<Option<Vec<S::W>>> = (0..tree.nodes().len()).map(|_| None).collect();
    let mut eplus: Vec<Edge<S::W>> = Vec::new();
    let mut raw_pairs = 0usize;
    let mut absorbing = false;
    let pool = WorkspacePool::<S>::new();
    let mat_bytes = |m: &Vec<S::W>| (m.capacity() * std::mem::size_of::<S::W>()) as u64;
    let mut live_bytes: u64 = 0;

    for depth in (0..=tree.height()).rev() {
        let range = tree.nodes_at_level(depth);
        if range.is_empty() {
            continue;
        }
        let width = range.len();
        let mut level_span = spsep_trace::span!("alg41.level", level = depth, width = width);
        let level_start = Instant::now();
        let work_before = metrics.total_work();
        metrics.phase(width);
        let outputs: Vec<(u32, NodeOutput<S>)> = range
            .into_par_iter()
            .map(|id| {
                let mut ws = pool.acquire();
                let node = tree.node(id);
                let out = if node.is_leaf() {
                    process_leaf::<S>(g, &tree.node(id).vertices, &ifaces[id as usize], &mut ws)
                } else {
                    let Some((c1, c2)) = node.children else {
                        unreachable!("non-leaf node has children")
                    };
                    let (Some(m1), Some(m2)) =
                        (mats[c1 as usize].as_deref(), mats[c2 as usize].as_deref())
                    else {
                        unreachable!("children processed before parent (BFS order)")
                    };
                    process_internal::<S>(
                        &ifaces[id as usize],
                        &ifaces[c1 as usize],
                        m1,
                        &ifaces[c2 as usize],
                        m2,
                        &mut ws,
                    )
                };
                pool.release(ws);
                (id, out)
            })
            .collect();
        let mut level_peak = live_bytes;
        for (id, out) in outputs {
            metrics.work(Counter::FloydWarshall, out.fw_ops);
            metrics.work(Counter::Dijkstra, out.dijkstra_ops);
            metrics.work(Counter::Limited, out.limited_ops);
            absorbing |= out.absorbing;
            raw_pairs += out.raw_pairs;
            eplus.extend(out.edges);
            live_bytes += mat_bytes(&out.mat);
            mats[id as usize] = Some(out.mat);
            // Parent + children all live right now: this is the peak.
            level_peak = level_peak.max(live_bytes + pool.heap_bytes());
            // Children are no longer needed; free their matrices.
            if let Some((c1, c2)) = tree.node(id).children {
                for c in [c1, c2] {
                    if let Some(cm) = mats[c as usize].take() {
                        live_bytes -= mat_bytes(&cm);
                    }
                }
            }
        }
        let level_ops = metrics.total_work() - work_before;
        level_span.add_ops(level_ops);
        level_span.add_bytes(level_peak);
        drop(level_span);
        metrics.record_phase(PhaseRecord {
            label: format!("alg41/level {depth}"),
            width,
            wall_ns: level_start.elapsed().as_nanos() as u64,
            ops: level_ops,
            peak_bytes: level_peak,
        });
        if absorbing {
            return Err(AbsorbingCycle);
        }
    }

    let eplus = dedupe_eplus::<S>(eplus);
    metrics.work(Counter::Other, eplus.len() as u64);
    let stats = AugmentStats {
        eplus_edges: eplus.len(),
        raw_pairs,
        d_g: tree.height(),
        leaf_bound: tree.max_leaf_size().saturating_sub(1),
    };
    Ok(Augmentation { eplus, stats })
}

/// Closure over the leaf's induced subgraph (dense or sparse engine),
/// projected to its interface.
fn process_leaf<S: Semiring>(
    g: &DiGraph<S::W>,
    vertices: &[u32],
    iface: &Interface,
    ws: &mut NodeWorkspace<S>,
) -> NodeOutput<S> {
    let (mat, outcome) = crate::augment::leaf_iface_matrix_ws::<S>(g, vertices, iface, ws);
    let mut edges = Vec::new();
    let mut raw_pairs = 0usize;
    emit_node_edges::<S>(iface, &mat, &mut edges, &mut raw_pairs);
    NodeOutput {
        mat,
        edges,
        raw_pairs,
        fw_ops: if outcome.sparse { 0 } else { outcome.ops },
        dijkstra_ops: if outcome.sparse { outcome.ops } else { 0 },
        limited_ops: 0,
        absorbing: outcome.absorbing_cycle,
    }
}

/// Read `dist_{G(child)}(u, v)` from a child's interface matrix, `0̄` if
/// either endpoint is outside the child's interface.
#[inline]
fn child_dist<S: Semiring>(ci: &Interface, cmat: &[S::W], u: u32, v: u32) -> S::W {
    match (ci.local(u), ci.local(v)) {
        (Some(a), Some(b)) => cmat[a * ci.len() + b],
        _ => S::zero(),
    }
}

/// Steps i–v for an internal node. All transient buffers live in `ws`;
/// only the returned interface matrix and edge list are allocated.
pub(crate) fn process_internal<S: Semiring>(
    iface: &Interface,
    ci1: &Interface,
    m1: &[S::W],
    ci2: &Interface,
    m2: &[S::W],
    ws: &mut NodeWorkspace<S>,
) -> NodeOutput<S> {
    let ns = iface.sep_pos.len();
    let nb = iface.bnd_pos.len();
    ws.sep_verts.clear();
    ws.sep_verts
        .extend(iface.sep_pos.iter().map(|&p| iface.verts[p as usize]));
    ws.bnd_verts.clear();
    ws.bnd_verts
        .extend(iface.bnd_pos.iter().map(|&p| iface.verts[p as usize]));
    let sep_verts = &ws.sep_verts;
    let bnd_verts = &ws.bnd_verts;

    let both = |u: u32, v: u32| -> S::W {
        S::combine(
            child_dist::<S>(ci1, m1, u, v),
            child_dist::<S>(ci2, m2, u, v),
        )
    };

    // Step i–ii: H_S and its closure, through the kernel tier the
    // workspace bound once at creation (scalar/SIMD dispatch is not
    // re-resolved per node).
    let kernel = ws.kernel;
    let hs = &mut ws.dense;
    hs.reset_identity(ns);
    for (a, &u) in sep_verts.iter().enumerate() {
        for (b, &v) in sep_verts.iter().enumerate() {
            if a != b {
                hs.relax(a, b, both(u, v));
            }
        }
    }
    let outcome = kernel.floyd_warshall(hs);
    let hs = &ws.dense;

    // Step iii: rectangular blocks of H.
    // R[b][s] = child dist b→s; C[s][b] = child dist s→b;
    // direct[b][b'] = child dist b→b'.
    ws.r.clear();
    ws.r.resize(nb * ns, S::zero());
    ws.c.clear();
    ws.c.resize(ns * nb, S::zero());
    ws.direct.clear();
    ws.direct.resize(nb * nb, S::zero());
    for (bi, &bv) in bnd_verts.iter().enumerate() {
        for (si, &sv) in sep_verts.iter().enumerate() {
            ws.r[bi * ns + si] = both(bv, sv);
            ws.c[si * nb + bi] = both(sv, bv);
        }
        for (bj, &bw) in bnd_verts.iter().enumerate() {
            ws.direct[bi * nb + bj] = if bi == bj { S::one() } else { both(bv, bw) };
        }
    }

    // Step iv: 3-limited distances B → S → S → B as two min-plus
    // products T = R ⊗ H_S*, OUT = direct ⊕ T ⊗ C. Rows run in parallel
    // when the product is large (the top tree levels have few nodes but
    // big matrices, so without this the critical path would be
    // sequential).
    ws.t.clear();
    ws.t.resize(nb * ns, S::zero());
    let r = &ws.r;
    let t_row = |bi: usize, row: &mut [S::W]| {
        for (s2, cell) in row.iter_mut().enumerate() {
            let mut acc = S::zero();
            for s1 in 0..ns {
                let rv = r[bi * ns + s1];
                if S::is_zero(rv) {
                    continue;
                }
                acc = S::combine(acc, S::extend(rv, hs.get(s1, s2)));
            }
            *cell = acc;
        }
    };
    if nb * ns * ns >= 1 << 16 {
        ws.t.par_chunks_mut(ns.max(1))
            .enumerate()
            .for_each(|(bi, row)| t_row(bi, row));
    } else {
        for (bi, row) in ws.t.chunks_mut(ns.max(1)).enumerate() {
            t_row(bi, row);
        }
    }
    let t = &ws.t;
    let c = &ws.c;
    let out_bb = &mut ws.direct;
    let out_row = |bi: usize, row: &mut [S::W]| {
        for (bj, cell) in row.iter_mut().enumerate() {
            let mut acc = *cell;
            for s2 in 0..ns {
                let tv = t[bi * ns + s2];
                if S::is_zero(tv) {
                    continue;
                }
                acc = S::combine(acc, S::extend(tv, c[s2 * nb + bj]));
            }
            *cell = acc;
        }
    };
    if nb * nb * ns >= 1 << 16 {
        out_bb
            .par_chunks_mut(nb.max(1))
            .enumerate()
            .for_each(|(bi, row)| out_row(bi, row));
    } else {
        for (bi, row) in out_bb.chunks_mut(nb.max(1)).enumerate() {
            out_row(bi, row);
        }
    }
    let limited_ops = (nb as u64) * (ns as u64) * (ns as u64)
        + (nb as u64) * (nb as u64) * (ns as u64);

    // Step v: assemble the interface matrix and emit E_t.
    let m = iface.len();
    let mut mat = vec![S::zero(); m * m];
    for i in 0..m {
        mat[i * m + i] = S::one();
    }
    for (a, &pa) in iface.sep_pos.iter().enumerate() {
        for (b, &pb) in iface.sep_pos.iter().enumerate() {
            let cell = &mut mat[pa as usize * m + pb as usize];
            *cell = S::combine(*cell, hs.get(a, b));
        }
    }
    for (a, &pa) in iface.bnd_pos.iter().enumerate() {
        for (b, &pb) in iface.bnd_pos.iter().enumerate() {
            let cell = &mut mat[pa as usize * m + pb as usize];
            *cell = S::combine(*cell, out_bb[a * nb + b]);
        }
    }
    let mut edges = Vec::new();
    let mut raw_pairs = 0usize;
    emit_node_edges::<S>(iface, &mat, &mut edges, &mut raw_pairs);
    NodeOutput {
        mat,
        edges,
        raw_pairs,
        fw_ops: outcome.ops,
        dijkstra_ops: 0,
        limited_ops,
        absorbing: outcome.absorbing_cycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsep_graph::semiring::Tropical;

    /// A dirty workspace must be indistinguishable from a fresh one: the
    /// same node processed through a workspace that just handled a
    /// *different* node must produce bit-identical output.
    #[test]
    fn workspace_reuse_leaks_no_state_between_nodes() {
        // Two interfaces over disjoint vertex sets with different sizes.
        let iface_a = Interface {
            verts: vec![0, 1, 2],
            sep_pos: vec![0, 1],
            bnd_pos: vec![2],
        };
        let ci_a1 = Interface {
            verts: vec![0, 1, 2],
            sep_pos: vec![],
            bnd_pos: vec![0, 1, 2],
        };
        let m_a1 = vec![0.0, 1.0, 7.0, 2.0, 0.0, 3.0, f64::INFINITY, 4.0, 0.0];
        let ci_a2 = Interface {
            verts: vec![1, 2],
            sep_pos: vec![],
            bnd_pos: vec![0, 1],
        };
        let m_a2 = vec![0.0, 0.5, 9.0, 0.0];

        let iface_b = Interface {
            verts: vec![5, 6, 7, 8],
            sep_pos: vec![1, 2],
            bnd_pos: vec![0, 3],
        };
        let ci_b = Interface {
            verts: vec![5, 6, 7, 8],
            sep_pos: vec![],
            bnd_pos: vec![0, 1, 2, 3],
        };
        #[rustfmt::skip]
        let m_b = vec![
            0.0, 2.0, f64::INFINITY, 8.0,
            1.0, 0.0, 3.0, f64::INFINITY,
            2.5, 0.25, 0.0, 1.0,
            f64::INFINITY, 6.0, 0.5, 0.0,
        ];

        let fresh = {
            let mut ws = NodeWorkspace::<Tropical>::new();
            process_internal::<Tropical>(&iface_a, &ci_a1, &m_a1, &ci_a2, &m_a2, &mut ws)
        };
        let reused = {
            let mut ws = NodeWorkspace::<Tropical>::new();
            // Dirty every buffer with node B first.
            process_internal::<Tropical>(&iface_b, &ci_b, &m_b, &ci_b, &m_b, &mut ws);
            process_internal::<Tropical>(&iface_a, &ci_a1, &m_a1, &ci_a2, &m_a2, &mut ws)
        };
        assert_eq!(fresh.mat.len(), reused.mat.len());
        for (i, (x, y)) in fresh.mat.iter().zip(&reused.mat).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "cell {i}: {x} vs {y}");
        }
        assert_eq!(fresh.edges.len(), reused.edges.len());
        assert_eq!(fresh.fw_ops, reused.fw_ops);
        assert_eq!(fresh.raw_pairs, reused.raw_pairs);
    }
}
