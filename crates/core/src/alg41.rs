//! Algorithm 4.1: computing `E⁺` from the leaves up.
//!
//! One parallel phase per tree level, bottom-up. Processing a node `t`
//! with children `t₁, t₂` (paper steps i–v):
//!
//! i.   build `H_S` on `S(t)` with `w(u,v) = min(dist_{G(t₁)}, dist_{G(t₂)})`
//!      — available because `S(t) ⊆ B(t₁) ∩ B(t₂)`;
//! ii.  all-pairs shortest paths on `H_S` (Floyd–Warshall); the result is
//!      `dist_{G(t)}` restricted to `S(t)×S(t)` (Prop. 4.2);
//! iii. build `H` on `B(t) ∪ S(t)` with `B×S`/`S×B` edges from child
//!      distances and `S×S` edges from `dist_{H_S}`;
//! iv.  3-limited shortest paths in `H` from/to every boundary vertex —
//!      realized as the two rectangular min-plus products
//!      `(B×S)·(S×S)` and `(B×S)·(S×B)`, which is exactly the
//!      `O(|B(t)|²|S(t)| + |B(t)||S(t)|²)` work the paper charges;
//! v.   emit `S×S` and `B×B` distances as `E_t`, and keep the `B×B`
//!      matrix for the parent.
//!
//! Leaves compute `dist_{G(t)}` directly by Floyd–Warshall on their O(1)
//! size induced subgraph.
//!
//! Negative (absorbing) cycles surface as a strictly-better-than-`1̄`
//! diagonal in a leaf or `H_S` computation — the lowest node whose
//! separator the cycle crosses necessarily exposes it (paper comment (i)).

use crate::augment::{dedupe_eplus, emit_node_edges, interfaces, AugmentStats, Augmentation, Interface};
use crate::AbsorbingCycle;
use rayon::prelude::*;
use spsep_graph::dense::SemiMatrix;
use spsep_graph::{DiGraph, Edge, Semiring};
use spsep_pram::{Counter, Metrics};
use spsep_separator::SepTree;

/// Per-node output: the interface matrix (row-major over
/// `Interface::verts`) and this node's `E_t` contribution.
struct NodeOutput<S: Semiring> {
    mat: Vec<S::W>,
    edges: Vec<Edge<S::W>>,
    raw_pairs: usize,
    fw_ops: u64,
    limited_ops: u64,
    absorbing: bool,
}

/// Compute `E⁺` with Algorithm 4.1.
pub fn augment_leaves_up<S: Semiring>(
    g: &DiGraph<S::W>,
    tree: &SepTree,
    metrics: &Metrics,
) -> Result<Augmentation<S>, AbsorbingCycle> {
    assert_eq!(g.n(), tree.n(), "tree and graph disagree on n");
    let ifaces = interfaces(tree);
    let mut mats: Vec<Option<Vec<S::W>>> = (0..tree.nodes().len()).map(|_| None).collect();
    let mut eplus: Vec<Edge<S::W>> = Vec::new();
    let mut raw_pairs = 0usize;
    let mut absorbing = false;

    for depth in (0..=tree.height()).rev() {
        let range = tree.nodes_at_level(depth);
        if range.is_empty() {
            continue;
        }
        metrics.phase(range.len());
        let outputs: Vec<(u32, NodeOutput<S>)> = range
            .clone()
            .into_par_iter()
            .map(|id| {
                let node = tree.node(id);
                let out = if node.is_leaf() {
                    process_leaf::<S>(g, &tree.node(id).vertices, &ifaces[id as usize])
                } else {
                    let Some((c1, c2)) = node.children else {
                        unreachable!("non-leaf node has children")
                    };
                    let (Some(m1), Some(m2)) =
                        (mats[c1 as usize].as_deref(), mats[c2 as usize].as_deref())
                    else {
                        unreachable!("children processed before parent (BFS order)")
                    };
                    process_internal::<S>(
                        &ifaces[id as usize],
                        &ifaces[c1 as usize],
                        m1,
                        &ifaces[c2 as usize],
                        m2,
                    )
                };
                (id, out)
            })
            .collect();
        for (id, out) in outputs {
            metrics.work(Counter::FloydWarshall, out.fw_ops);
            metrics.work(Counter::Limited, out.limited_ops);
            absorbing |= out.absorbing;
            raw_pairs += out.raw_pairs;
            eplus.extend(out.edges);
            mats[id as usize] = Some(out.mat);
            // Children are no longer needed; free their matrices.
            if let Some((c1, c2)) = tree.node(id).children {
                mats[c1 as usize] = None;
                mats[c2 as usize] = None;
            }
        }
        if absorbing {
            return Err(AbsorbingCycle);
        }
    }

    let eplus = dedupe_eplus::<S>(eplus);
    metrics.work(Counter::Other, eplus.len() as u64);
    let stats = AugmentStats {
        eplus_edges: eplus.len(),
        raw_pairs,
        d_g: tree.height(),
        leaf_bound: tree.max_leaf_size().saturating_sub(1),
    };
    Ok(Augmentation { eplus, stats })
}

/// Floyd–Warshall over the leaf's induced subgraph, projected to its
/// interface.
fn process_leaf<S: Semiring>(
    g: &DiGraph<S::W>,
    vertices: &[u32],
    iface: &Interface,
) -> NodeOutput<S> {
    let (mat, fw_ops, absorbing) = crate::augment::leaf_iface_matrix::<S>(g, vertices, iface);
    let mut edges = Vec::new();
    let mut raw_pairs = 0usize;
    emit_node_edges::<S>(iface, &mat, &mut edges, &mut raw_pairs);
    NodeOutput {
        mat,
        edges,
        raw_pairs,
        fw_ops,
        limited_ops: 0,
        absorbing,
    }
}

/// Read `dist_{G(child)}(u, v)` from a child's interface matrix, `0̄` if
/// either endpoint is outside the child's interface.
#[inline]
fn child_dist<S: Semiring>(ci: &Interface, cmat: &[S::W], u: u32, v: u32) -> S::W {
    match (ci.local(u), ci.local(v)) {
        (Some(a), Some(b)) => cmat[a * ci.len() + b],
        _ => S::zero(),
    }
}

/// Steps i–v for an internal node.
fn process_internal<S: Semiring>(
    iface: &Interface,
    ci1: &Interface,
    m1: &[S::W],
    ci2: &Interface,
    m2: &[S::W],
) -> NodeOutput<S> {
    let ns = iface.sep_pos.len();
    let nb = iface.bnd_pos.len();
    let sep_verts: Vec<u32> = iface.sep_pos.iter().map(|&p| iface.verts[p as usize]).collect();
    let bnd_verts: Vec<u32> = iface.bnd_pos.iter().map(|&p| iface.verts[p as usize]).collect();

    let both = |u: u32, v: u32| -> S::W {
        S::combine(
            child_dist::<S>(ci1, m1, u, v),
            child_dist::<S>(ci2, m2, u, v),
        )
    };

    // Step i–ii: H_S and its closure.
    let mut hs = SemiMatrix::<S>::identity(ns);
    for (a, &u) in sep_verts.iter().enumerate() {
        for (b, &v) in sep_verts.iter().enumerate() {
            if a != b {
                hs.relax(a, b, both(u, v));
            }
        }
    }
    let outcome = hs.floyd_warshall();

    // Step iii: rectangular blocks of H.
    // R[b][s] = child dist b→s; C[s][b] = child dist s→b;
    // direct[b][b'] = child dist b→b'.
    let mut r = vec![S::zero(); nb * ns];
    let mut c = vec![S::zero(); ns * nb];
    let mut direct = vec![S::zero(); nb * nb];
    for (bi, &bv) in bnd_verts.iter().enumerate() {
        for (si, &sv) in sep_verts.iter().enumerate() {
            r[bi * ns + si] = both(bv, sv);
            c[si * nb + bi] = both(sv, bv);
        }
        for (bj, &bw) in bnd_verts.iter().enumerate() {
            direct[bi * nb + bj] = if bi == bj { S::one() } else { both(bv, bw) };
        }
    }

    // Step iv: 3-limited distances B → S → S → B as two min-plus
    // products T = R ⊗ H_S*, OUT = direct ⊕ T ⊗ C. Rows run in parallel
    // when the product is large (the top tree levels have few nodes but
    // big matrices, so without this the critical path would be
    // sequential).
    use rayon::prelude::*;
    let mut t = vec![S::zero(); nb * ns];
    let t_row = |bi: usize, row: &mut [S::W]| {
        for (s2, cell) in row.iter_mut().enumerate() {
            let mut acc = S::zero();
            for s1 in 0..ns {
                let rv = r[bi * ns + s1];
                if S::is_zero(rv) {
                    continue;
                }
                acc = S::combine(acc, S::extend(rv, hs.get(s1, s2)));
            }
            *cell = acc;
        }
    };
    if nb * ns * ns >= 1 << 16 {
        t.par_chunks_mut(ns.max(1))
            .enumerate()
            .for_each(|(bi, row)| t_row(bi, row));
    } else {
        for bi in 0..nb {
            t_row(bi, &mut t[bi * ns..(bi + 1) * ns]);
        }
    }
    let mut out_bb = direct;
    let out_row = |bi: usize, row: &mut [S::W]| {
        for (bj, cell) in row.iter_mut().enumerate() {
            let mut acc = *cell;
            for s2 in 0..ns {
                let tv = t[bi * ns + s2];
                if S::is_zero(tv) {
                    continue;
                }
                acc = S::combine(acc, S::extend(tv, c[s2 * nb + bj]));
            }
            *cell = acc;
        }
    };
    if nb * nb * ns >= 1 << 16 {
        out_bb
            .par_chunks_mut(nb.max(1))
            .enumerate()
            .for_each(|(bi, row)| out_row(bi, row));
    } else {
        for bi in 0..nb {
            let row = &mut out_bb[bi * nb..(bi + 1) * nb];
            out_row(bi, row);
        }
    }
    let limited_ops = (nb as u64) * (ns as u64) * (ns as u64)
        + (nb as u64) * (nb as u64) * (ns as u64);

    // Step v: assemble the interface matrix and emit E_t.
    let m = iface.len();
    let mut mat = vec![S::zero(); m * m];
    for i in 0..m {
        mat[i * m + i] = S::one();
    }
    for (a, &pa) in iface.sep_pos.iter().enumerate() {
        for (b, &pb) in iface.sep_pos.iter().enumerate() {
            let cell = &mut mat[pa as usize * m + pb as usize];
            *cell = S::combine(*cell, hs.get(a, b));
        }
    }
    for (a, &pa) in iface.bnd_pos.iter().enumerate() {
        for (b, &pb) in iface.bnd_pos.iter().enumerate() {
            let cell = &mut mat[pa as usize * m + pb as usize];
            *cell = S::combine(*cell, out_bb[a * nb + b]);
        }
    }
    let mut edges = Vec::new();
    let mut raw_pairs = 0usize;
    emit_node_edges::<S>(iface, &mat, &mut edges, &mut raw_pairs);
    NodeOutput {
        mat,
        edges,
        raw_pairs,
        fw_ops: outcome.ops,
        limited_ops,
        absorbing: outcome.absorbing_cycle,
    }
}
