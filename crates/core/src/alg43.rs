//! Algorithm 4.3: computing `E⁺` by simultaneous path doubling.
//!
//! Every tree node `t` keeps a dense matrix `H(t)` over its interface
//! `V_H(t) = S(t) ∪ B(t)`. Leaves initialize with exact `dist_{G(t)}`
//! (Floyd–Warshall on their O(1) subgraph); internal nodes initialize with
//! the original edge weights between their interface vertices. Then, for
//! `2⌈log₂ n⌉ + 2·d_G` rounds (Prop. 4.6 guarantees convergence):
//!
//! 1. every node applies one min-plus squaring step to `H(t)` —
//!    simultaneously, in parallel;
//! 2. every node merges the child weights:
//!    `w_t(e) ← w_t(e) ⊕ w_{t₁}(e) ⊕ w_{t₂}(e)`.
//!
//! The merge runs bottom-up one level per sub-phase, so a parent reads
//! child matrices that are not concurrently written; reading *post-merge*
//! child values only accelerates convergence (weights are monotone upper
//! bounds of the true distances throughout).
//!
//! Compared with Algorithm 4.1 this saves an `O(log n)` factor in time —
//! each round is a single squaring step instead of a full Floyd–Warshall —
//! at the price of an `O(log n)` factor more work (Table 1's two
//! preprocessing rows; experiment E5 measures the trade-off).
//!
//! The iteration stops early once a round changes nothing: the matrices
//! are monotone and their fixpoint equals the `dist_{G(t)}` values that
//! Prop. 4.5 guarantees after the full round count.

use crate::augment::{
    dedupe_eplus, emit_node_edges, interfaces, leaf_iface_matrix_ws, AugmentStats, Augmentation,
    LeafOutcome,
};
use crate::workspace::WorkspacePool;
use crate::AbsorbingCycle;
use rayon::prelude::*;
use spsep_graph::dense::{select_kernel, SemiMatrix};
use spsep_graph::{DiGraph, Edge, Semiring};
use spsep_pram::{Counter, Metrics, PhaseRecord};
use spsep_separator::SepTree;
use std::time::Instant;

/// Compute `E⁺` with Algorithm 4.3. Also returns (via
/// [`AugmentStats`]-adjacent metrics) the number of doubling rounds used.
pub fn augment_path_doubling<S: Semiring>(
    g: &DiGraph<S::W>,
    tree: &SepTree,
    metrics: &Metrics,
) -> Result<Augmentation<S>, AbsorbingCycle> {
    assert_eq!(g.n(), tree.n(), "tree and graph disagree on n");
    let ifaces = interfaces(tree);
    let num_nodes = tree.nodes().len();

    // Step i: initialization. Leaf scratch comes from a shared pool so
    // the phase allocates only the node matrices themselves.
    let pool = WorkspacePool::<S>::new();
    let mut init_span = spsep_trace::span!("alg43.init", width = num_nodes);
    let init_start = Instant::now();
    let work_before = metrics.total_work();
    metrics.phase(num_nodes);
    let init: Vec<(SemiMatrix<S>, LeafOutcome)> = (0..num_nodes)
        .into_par_iter()
        .map(|id| {
            let node = &tree.nodes()[id];
            let iface = &ifaces[id];
            let k = iface.len();
            if node.is_leaf() {
                let mut ws = pool.acquire();
                let (flat, outcome) =
                    leaf_iface_matrix_ws::<S>(g, &node.vertices, iface, &mut ws);
                pool.release(ws);
                (SemiMatrix::from_flat(k, flat), outcome)
            } else {
                let mut m = SemiMatrix::<S>::identity(k);
                for (a, &va) in iface.verts.iter().enumerate() {
                    for e in g.out_edges(va as usize) {
                        if let Some(b) = iface.local(e.to) {
                            if b != a {
                                m.relax(a, b, e.w);
                            }
                        }
                    }
                }
                (
                    m,
                    LeafOutcome {
                        ops: 0,
                        sparse: false,
                        absorbing_cycle: false,
                    },
                )
            }
        })
        .collect();
    let mut absorbing = false;
    let mut mats: Vec<SemiMatrix<S>> = Vec::with_capacity(num_nodes);
    for (m, outcome) in init {
        let kind = if outcome.sparse {
            Counter::Dijkstra
        } else {
            Counter::FloydWarshall
        };
        metrics.work(kind, outcome.ops);
        absorbing |= outcome.absorbing_cycle;
        mats.push(m);
    }
    let live_mat_bytes =
        |mats: &[SemiMatrix<S>]| mats.iter().map(|m| m.heap_bytes() as u64).sum::<u64>();
    let init_ops = metrics.total_work() - work_before;
    let init_bytes = live_mat_bytes(&mats) + pool.heap_bytes();
    init_span.add_ops(init_ops);
    init_span.add_bytes(init_bytes);
    drop(init_span);
    metrics.record_phase(PhaseRecord {
        label: "alg43/init".into(),
        width: num_nodes,
        wall_ns: init_start.elapsed().as_nanos() as u64,
        ops: init_ops,
        peak_bytes: init_bytes,
    });
    if absorbing {
        return Err(AbsorbingCycle);
    }

    // Child-position → parent-position maps for the merge step.
    let child_maps: Vec<Option<[Vec<u32>; 2]>> = (0..num_nodes)
        .into_par_iter()
        .map(|id| {
            tree.nodes()[id].children.map(|(c1, c2)| {
                let map_of = |c: u32| -> Vec<u32> {
                    ifaces[c as usize]
                        .verts
                        .iter()
                        .map(|&v| ifaces[id].local(v).map_or(u32::MAX, |p| p as u32))
                        .collect()
                };
                [map_of(c1), map_of(c2)]
            })
        })
        .collect();

    // Step ii: the doubling rounds. The dense kernel tier (scalar vs
    // SIMD) is resolved once for the whole doubling phase, not per round
    // or per node.
    let kernel = select_kernel::<S>();
    let max_rounds = 2 * (usize::BITS - g.n().max(2).leading_zeros()) as usize
        + 2 * tree.height() as usize
        + 2;
    let mut rounds_used = 0usize;
    for round in 0..max_rounds {
        rounds_used += 1;
        let mut round_span = spsep_trace::span!("alg43.round", round = round, width = num_nodes);
        let round_start = Instant::now();
        let round_work_before = metrics.total_work();
        // ii(1): squaring, all nodes at once.
        metrics.phase(num_nodes);
        let outcomes: Vec<_> = mats
            .par_iter_mut()
            .map(|m| kernel.square_step(m))
            .collect();
        let mut changed = false;
        for o in outcomes {
            metrics.work(Counter::Doubling, o.ops);
            changed |= o.changed;
            absorbing |= o.absorbing_cycle;
        }
        if absorbing {
            return Err(AbsorbingCycle);
        }
        // ii(2): merge child weights, one level per sub-phase bottom-up.
        let merge_changed = std::sync::atomic::AtomicBool::new(false);
        for depth in (0..tree.height()).rev() {
            let range = tree.nodes_at_level(depth);
            if range.is_empty() {
                continue;
            }
            metrics.phase(range.len());
            // Split `mats` so parents (level ≤ depth) are written while
            // children (level > depth) are only read.
            let boundary = tree.nodes_at_level(depth + 1).start as usize;
            let (parents, deeper) = mats.split_at_mut(boundary);
            // Two-pass merge: gather each parent's updates from the
            // read-only deeper slice in parallel, then apply them.
            type Updates<W> = Vec<(u32, Vec<(u32, u32, W)>)>;
            let updates: Updates<S::W> = range
                .into_par_iter()
                .map(|id| {
                    let node = &tree.nodes()[id as usize];
                    let mut ups: Vec<(u32, u32, S::W)> = Vec::new();
                    if let (Some((c1, c2)), Some(maps)) =
                        (node.children, &child_maps[id as usize])
                    {
                        for (ci, &c) in [c1, c2].iter().enumerate() {
                            let cm = &deeper[c as usize - boundary];
                            let map = &maps[ci];
                            let k = cm.n();
                            for (a, &pa) in map.iter().enumerate().take(k) {
                                if pa == u32::MAX {
                                    continue;
                                }
                                for (b, &pb) in map.iter().enumerate().take(k) {
                                    if pb == u32::MAX || a == b {
                                        continue;
                                    }
                                    let w = cm.get(a, b);
                                    if !S::is_zero(w) {
                                        ups.push((pa, pb, w));
                                    }
                                }
                            }
                        }
                    }
                    (id, ups)
                })
                .collect();
            for (id, ups) in updates {
                let m = &mut parents[id as usize];
                for (a, b, w) in ups {
                    let old = m.get(a as usize, b as usize);
                    let merged = S::combine(old, w);
                    if merged != old {
                        m.set(a as usize, b as usize, merged);
                        merge_changed.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                }
                metrics.work(Counter::Doubling, 1);
            }
        }
        let round_ops = metrics.total_work() - round_work_before;
        round_span.add_ops(round_ops);
        round_span.add_bytes(live_mat_bytes(&mats));
        drop(round_span);
        metrics.record_phase(PhaseRecord {
            label: format!("alg43/round {round}"),
            width: num_nodes,
            wall_ns: round_start.elapsed().as_nanos() as u64,
            ops: round_ops,
            peak_bytes: live_mat_bytes(&mats),
        });
        if !changed && !merge_changed.into_inner() {
            break;
        }
    }
    metrics.work(Counter::Other, rounds_used as u64);

    // Final diagonal check (absorbing cycles shrink diagonals).
    for m in &mats {
        for i in 0..m.n() {
            if S::better(m.get(i, i), S::one()) {
                return Err(AbsorbingCycle);
            }
        }
    }

    // Step iii: emit E⁺.
    let mut eplus: Vec<Edge<S::W>> = Vec::new();
    let mut raw_pairs = 0usize;
    for (id, m) in mats.iter().enumerate() {
        let iface = &ifaces[id];
        let k = iface.len();
        let mut flat = vec![S::zero(); k * k];
        for a in 0..k {
            flat[a * k..(a + 1) * k].copy_from_slice(m.row(a));
        }
        emit_node_edges::<S>(iface, &flat, &mut eplus, &mut raw_pairs);
    }
    let eplus = dedupe_eplus::<S>(eplus);
    let stats = AugmentStats {
        eplus_edges: eplus.len(),
        raw_pairs,
        d_g: tree.height(),
        leaf_bound: tree.max_leaf_size().saturating_sub(1),
    };
    Ok(Augmentation { eplus, stats })
}
