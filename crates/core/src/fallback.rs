//! Graceful degradation: the separator-decomposition fast path when the
//! instance supports it, classical baselines when it does not.
//!
//! [`preprocess`] is strict — a corrupted decomposition or an exceeded
//! resource budget is an error. [`preprocess_or_fallback`] is the
//! production entry point: the same failure *degrades* to Dijkstra (or
//! Bellman–Ford when weights are negative) on the raw graph, with the
//! decision recorded as a [`FallbackReason`] so operators can see *why*
//! the fast path was skipped. Only genuinely unanswerable inputs —
//! absorbing cycles, where distances do not exist (paper comment (i)) —
//! remain hard errors on both paths.
//!
//! The budget knob measures the Theorem 5.1(iii) quantity
//! `Σ_t |S(t)|² + |B(t)|²` ([`SepTree::eplus_candidate_size`]): the size
//! of the `E⁺` candidate set, and hence a proxy for both preprocessing
//! memory and work. A decomposition with huge separators (e.g. a
//! near-complete graph handed to a grid builder) makes the fast path
//! pointless — the paper's bounds assume `n^μ`-sized separators — so
//! falling back is the *correct* move, not a concession.

use crate::{preprocess, validate_instance, Algorithm, Preprocessed, SpsepError};
use spsep_baselines::{bellman_ford, dijkstra, find_negative_cycle};
use spsep_graph::semiring::Tropical;
use spsep_graph::DiGraph;
use spsep_pram::Metrics;
use spsep_separator::SepTree;

/// Why [`preprocess_or_fallback`] declined the fast path.
///
/// Not `Clone`: the `InvalidDecomposition` variant owns a full
/// [`SpsepError`], which can wrap a (non-cloneable) `std::io::Error`.
#[derive(Debug)]
#[non_exhaustive]
pub enum FallbackReason {
    /// The decomposition failed pre-flight validation
    /// ([`validate_instance`]); the underlying typed error is attached.
    InvalidDecomposition(SpsepError),
    /// The `E⁺` candidate set `Σ_t |S(t)|² + |B(t)|²` exceeds the
    /// policy's budget (Theorem 5.1(iii) memory/work proxy).
    BudgetExceeded {
        /// Configured ceiling.
        budget: usize,
        /// What this decomposition would need.
        required: usize,
    },
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::InvalidDecomposition(e) => {
                write!(f, "decomposition failed validation: {e}")
            }
            FallbackReason::BudgetExceeded { budget, required } => write!(
                f,
                "E+ candidate set needs {required} entries, budget is {budget}"
            ),
        }
    }
}

/// Tunables for [`preprocess_or_fallback`].
#[derive(Clone, Debug)]
pub struct FallbackPolicy {
    /// Ceiling on [`SepTree::eplus_candidate_size`] before the fast path
    /// is abandoned. `None` disables the budget check.
    pub max_eplus_candidates: Option<usize>,
    /// Which `E⁺` construction to run on the fast path.
    pub algorithm: Algorithm,
}

impl Default for FallbackPolicy {
    /// No budget ceiling, [`Algorithm::LeavesUp`].
    fn default() -> Self {
        FallbackPolicy {
            max_eplus_candidates: None,
            algorithm: Algorithm::default(),
        }
    }
}

enum PreparedKind {
    Fast(Preprocessed<Tropical>),
    Baseline {
        nonnegative: bool,
        reason: FallbackReason,
    },
}

/// A query-ready instance: either a compiled fast path or a recorded
/// fallback to the baselines. Obtained from [`preprocess_or_fallback`].
pub struct Prepared<'a> {
    graph: &'a DiGraph<f64>,
    kind: PreparedKind,
}

impl Prepared<'_> {
    /// `true` when the separator-decomposition fast path is active.
    pub fn is_fast(&self) -> bool {
        matches!(self.kind, PreparedKind::Fast(_))
    }

    /// Why the baseline is being used — `None` on the fast path.
    pub fn fallback_reason(&self) -> Option<&FallbackReason> {
        match &self.kind {
            PreparedKind::Fast(_) => None,
            PreparedKind::Baseline { reason, .. } => Some(reason),
        }
    }

    /// The compiled fast path, when active (for schedule statistics,
    /// shortest-path-tree recovery, etc.).
    pub fn fast(&self) -> Option<&Preprocessed<Tropical>> {
        match &self.kind {
            PreparedKind::Fast(pre) => Some(pre),
            PreparedKind::Baseline { .. } => None,
        }
    }

    /// Single-source distances (`+∞` for unreachable vertices).
    ///
    /// Identical on both paths — that is the point: a caller that got a
    /// `Prepared` never sees a wrong distance, only (possibly) a slower
    /// one. Absorbing cycles were already ruled out when the instance
    /// was prepared, so this cannot fail.
    pub fn distances(&self, source: usize, metrics: &Metrics) -> Vec<f64> {
        match &self.kind {
            PreparedKind::Fast(pre) => pre.distances(source, metrics),
            PreparedKind::Baseline { nonnegative, .. } => {
                if *nonnegative {
                    dijkstra(self.graph, source).dist
                } else {
                    let Ok(res) = bellman_ford(self.graph, source) else {
                        unreachable!(
                            "absorbing cycles are rejected by preprocess_or_fallback"
                        )
                    };
                    res.dist
                }
            }
        }
    }
}

/// Prepare an instance for queries, degrading gracefully: run the
/// Cohen pipeline when `tree` validates and fits `policy`'s budget,
/// otherwise fall back to Dijkstra/Bellman–Ford on the raw graph with
/// the reason recorded.
///
/// # Errors
///
/// [`SpsepError::AbsorbingCycle`] (with a witness cycle) when the graph
/// contains a negative cycle — distances are undefined, so *neither*
/// path can answer queries and falling back would be lying. All other
/// fast-path failures degrade instead of erroring.
pub fn preprocess_or_fallback<'a>(
    g: &'a DiGraph<f64>,
    tree: &SepTree,
    policy: &FallbackPolicy,
    metrics: &Metrics,
) -> Result<Prepared<'a>, SpsepError> {
    let reason = if let Some(budget) = policy.max_eplus_candidates {
        let required = tree.eplus_candidate_size();
        if required > budget {
            Some(FallbackReason::BudgetExceeded { budget, required })
        } else {
            None
        }
    } else {
        None
    };
    let reason = match reason {
        Some(r) => Some(r),
        None => validate_instance(g, tree)
            .err()
            .map(FallbackReason::InvalidDecomposition),
    };
    match reason {
        None => {
            // Fast path. `preprocess` re-runs the (cheap) validation;
            // any error besides an absorbing cycle is unreachable here.
            let pre = preprocess::<Tropical>(g, tree, policy.algorithm, metrics)?;
            Ok(Prepared {
                graph: g,
                kind: PreparedKind::Fast(pre),
            })
        }
        Some(reason) => {
            // Baseline path. Absorbing cycles must still be hard errors
            // — mirroring what the fast path would have reported.
            let nonnegative = g.edges().iter().all(|e| e.w >= 0.0);
            if !nonnegative {
                if let Some(witness) = find_negative_cycle(g, None) {
                    return Err(SpsepError::AbsorbingCycle { witness });
                }
            }
            Ok(Prepared {
                graph: g,
                kind: PreparedKind::Baseline { nonnegative, reason },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spsep_graph::Edge;
    use spsep_separator::{builders, RecursionLimits};

    fn grid_instance(dims: [usize; 2], seed: u64) -> (DiGraph<f64>, SepTree) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (g, _) = spsep_graph::generators::grid(&dims, &mut rng);
        let tree = builders::grid_tree(&dims, RecursionLimits::default());
        (g, tree)
    }

    #[test]
    fn fast_path_matches_plain_preprocess() {
        let (g, tree) = grid_instance([9, 8], 11);
        let metrics = Metrics::new();
        let prepared =
            preprocess_or_fallback(&g, &tree, &FallbackPolicy::default(), &metrics).unwrap();
        assert!(prepared.is_fast());
        assert!(prepared.fallback_reason().is_none());
        let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics)
            .unwrap_or_else(|e| panic!("{e}"));
        for s in [0, 7, g.n() - 1] {
            assert_eq!(prepared.distances(s, &metrics), pre.distances(s, &metrics));
        }
    }

    #[test]
    fn invalid_decomposition_falls_back_and_matches_dijkstra() {
        let (g, _) = grid_instance([9, 8], 12);
        // A tree for the wrong graph size → pre-flight failure.
        let tree = builders::grid_tree(&[4, 4], RecursionLimits::default());
        let metrics = Metrics::new();
        let prepared =
            preprocess_or_fallback(&g, &tree, &FallbackPolicy::default(), &metrics).unwrap();
        assert!(!prepared.is_fast());
        assert!(matches!(
            prepared.fallback_reason(),
            Some(FallbackReason::InvalidDecomposition(
                SpsepError::InvalidDecomposition { .. }
            ))
        ));
        let dj = dijkstra(&g, 0);
        assert_eq!(prepared.distances(0, &metrics), dj.dist);
    }

    #[test]
    fn budget_exceeded_falls_back_with_recorded_sizes() {
        let (g, tree) = grid_instance([9, 8], 13);
        let required = tree.eplus_candidate_size();
        assert!(required > 1);
        let policy = FallbackPolicy {
            max_eplus_candidates: Some(1),
            ..FallbackPolicy::default()
        };
        let metrics = Metrics::new();
        let prepared = preprocess_or_fallback(&g, &tree, &policy, &metrics).unwrap();
        match prepared.fallback_reason() {
            Some(&FallbackReason::BudgetExceeded {
                budget,
                required: rec,
            }) => {
                assert_eq!(budget, 1);
                assert_eq!(rec, required);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // Distances still correct.
        let dj = dijkstra(&g, 3);
        assert_eq!(prepared.distances(3, &metrics), dj.dist);
    }

    #[test]
    fn negative_weights_fall_back_to_bellman_ford() {
        let (g, _) = grid_instance([6, 6], 14);
        // Negate one weight (acyclically: an edge out of vertex 0 kept
        // small enough not to create a negative cycle).
        let mut edges = g.edges().to_vec();
        edges[0].w = -0.25;
        let g = DiGraph::from_edges(g.n(), edges);
        let tree = builders::grid_tree(&[4, 4], RecursionLimits::default()); // wrong size
        let metrics = Metrics::new();
        let prepared =
            preprocess_or_fallback(&g, &tree, &FallbackPolicy::default(), &metrics).unwrap();
        assert!(!prepared.is_fast());
        let bf = bellman_ford(&g, 0).unwrap();
        assert_eq!(prepared.distances(0, &metrics), bf.dist);
    }

    #[test]
    fn absorbing_cycle_is_a_hard_error_even_when_falling_back() {
        let (g, _) = grid_instance([5, 5], 15);
        let e0 = g.edges()[0];
        let mut edges = g.edges().to_vec();
        edges.push(Edge::new(e0.to as usize, e0.from as usize, -1e6));
        let g = DiGraph::from_edges(g.n(), edges);
        let tree = builders::grid_tree(&[4, 4], RecursionLimits::default()); // wrong size
        let metrics = Metrics::new();
        match preprocess_or_fallback(&g, &tree, &FallbackPolicy::default(), &metrics) {
            Err(SpsepError::AbsorbingCycle { witness }) => {
                assert!(!witness.is_empty());
            }
            Ok(_) => panic!("negative cycle must not be answered"),
            Err(other) => panic!("expected AbsorbingCycle, got {other:?}"),
        }
    }
}
