//! The query engine: `s`-source distances over the augmented graph, plus
//! shortest-path-tree recovery over the original edges.

use crate::augment::{AugmentStats, Augmentation};
use crate::schedule::Schedule;
use crate::AbsorbingCycle;
use rayon::prelude::*;
use spsep_graph::{DiGraph, Edge, Semiring, Store};
use spsep_pram::Metrics;
use spsep_separator::{separator_locality_order, SepTree};

/// Per-query statistics.
#[derive(Copy, Clone, Debug, Default)]
pub struct QueryStats {
    /// Edge relaxations performed.
    pub relaxations: u64,
    /// Nominal phases of the schedule (`2l + 4 d_G + 1`).
    pub phases: usize,
}

/// A graph preprocessed for fast repeated distance queries: the shortcut
/// set `E⁺`, the per-vertex levels, and the compiled Section 3.2 phase
/// schedule.
pub struct Preprocessed<S: Semiring> {
    pub(crate) n: usize,
    /// `E ∪ E⁺`: base edges first, shortcuts after.
    pub(crate) aug_edges: Store<Edge<S::W>>,
    pub(crate) base_m: usize,
    pub(crate) levels: Store<u32>,
    /// Separator-locality rank (`rank[v]` = memory position of `v`);
    /// the bucket layout key of the compiled schedule.
    pub(crate) order_rank: Store<u32>,
    pub(crate) schedule: Schedule<S>,
    pub(crate) stats: AugmentStats,
}

impl<S: Semiring> Preprocessed<S> {
    /// Compile the query structures from a finished augmentation.
    ///
    /// Derives the separator-locality [`spsep_graph::NodeOrder`] from
    /// `tree` and lays the schedule's relaxation buckets out in that
    /// order (tree locality → memory locality); answers are unaffected
    /// by the layout (see [`crate::schedule::Bucket`]).
    pub fn compile(g: &DiGraph<S::W>, tree: &SepTree, augmentation: Augmentation<S>) -> Self {
        let Augmentation { eplus, stats } = augmentation;
        let levels = tree.vertex_levels().to_vec();
        let order = separator_locality_order(tree);
        let schedule = Schedule::<S>::compile(
            g.n(),
            g.edges(),
            &eplus,
            &levels,
            stats.d_g,
            stats.leaf_bound,
            order.ranks(),
        );
        let mut aug_edges = g.edges().to_vec();
        let base_m = aug_edges.len();
        aug_edges.extend(eplus);
        Preprocessed {
            n: g.n(),
            aug_edges: aug_edges.into(),
            base_m,
            levels: levels.into(),
            order_rank: order.ranks().to_vec().into(),
            schedule,
            stats,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The shortcut edges `E⁺`.
    pub fn eplus(&self) -> &[Edge<S::W>] {
        &self.aug_edges[self.base_m..]
    }

    /// All edges of `G⁺ = (V, E ∪ E⁺)`.
    pub fn augmented_edges(&self) -> &[Edge<S::W>] {
        &self.aug_edges
    }

    /// Construction statistics.
    pub fn stats(&self) -> AugmentStats {
        self.stats
    }

    /// `level(v)` table ([`spsep_separator::UNDEFINED_LEVEL`] = ∞).
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// The separator-locality rank array (`rank[v]` = memory position
    /// of `v` in the bucket layout).
    pub fn order_rank(&self) -> &[u32] {
        &self.order_rank
    }

    /// Number of original edges (`E`); augmented edge ids `≥` this are
    /// `E⁺` shortcuts.
    pub fn base_edge_count(&self) -> usize {
        self.base_m
    }

    /// The compiled phase schedule (advanced use: custom runs).
    pub fn schedule(&self) -> &Schedule<S> {
        &self.schedule
    }

    /// Single-source distances by the scheduled Bellman–Ford,
    /// phase-parallel via rayon; work/depth charged to `metrics`.
    pub fn distances(&self, source: usize, metrics: &Metrics) -> Vec<S::W> {
        let _span = spsep_trace::span!("query.sssp", source = source);
        self.schedule.run_parallel(source, metrics)
    }

    /// Single-source distances, sequential execution, with statistics.
    pub fn distances_seq(&self, source: usize) -> (Vec<S::W>, QueryStats) {
        let mut span = spsep_trace::span!("query.sssp_seq", source = source);
        let (dist, relaxations) = self.schedule.run_seq(source);
        span.add_ops(relaxations);
        (
            dist,
            QueryStats {
                relaxations,
                phases: self.schedule.total_phases(),
            },
        )
    }

    /// Multi-source distances from an initial label vector: the result at
    /// `v` is `⊕_u init[u] ⊗ dist(u, v)`. With `init[u] = 1̄` on a source
    /// set and `0̄` elsewhere this is classic multi-source shortest paths
    /// — one schedule run instead of `s`.
    pub fn distances_from_init(&self, init: Vec<S::W>) -> (Vec<S::W>, QueryStats) {
        let (dist, relaxations) = self.schedule.run_seq_init(init);
        (
            dist,
            QueryStats {
                relaxations,
                phases: self.schedule.total_phases(),
            },
        )
    }

    /// Distances from many sources: parallel across sources (each source
    /// runs the sequential schedule — the `s`-fold parallelism of the
    /// paper's "work per source" accounting).
    pub fn distances_multi(&self, sources: &[usize]) -> Vec<Vec<S::W>> {
        sources
            .par_iter()
            .map(|&s| self.schedule.run_seq(s).0)
            .collect()
    }

    /// Per-source arc-scan bound of the schedule (`O(l·|E| + |E ∪ E⁺|)`).
    pub fn arcs_per_query(&self) -> u64 {
        self.schedule.arcs_per_run()
    }

    /// Reference execution: plain Bellman–Ford over **all** of `G⁺` until
    /// fixpoint (at most `max_rounds` rounds). Used by tests to validate
    /// the schedule and by the Theorem 3.1 diameter measurements; `Err` if
    /// still changing after `max_rounds` (absorbing cycle).
    pub fn distances_unscheduled(
        &self,
        source: usize,
        max_rounds: usize,
    ) -> Result<(Vec<S::W>, usize), AbsorbingCycle> {
        let mut dist = vec![S::zero(); self.n];
        dist[source] = S::one();
        for round in 0..=max_rounds {
            let mut changed = false;
            for e in self.aug_edges.iter() {
                let du = dist[e.from as usize];
                if S::is_zero(du) {
                    continue;
                }
                let cand = S::extend(du, e.w);
                let cur = dist[e.to as usize];
                let merged = S::combine(cur, cand);
                if merged != cur {
                    dist[e.to as usize] = merged;
                    changed = true;
                }
            }
            if !changed {
                return Ok((dist, round));
            }
        }
        Err(AbsorbingCycle)
    }
}

impl<S: Semiring> Preprocessed<S> {
    /// Weight and explicit vertex path (over the **original** edges) of a
    /// shortest `u → v` path: one scheduled query from `u`, then a
    /// tight-edge walk. `None` if `v` is unreachable.
    ///
    /// Paper comment (ii): "the algorithm as stated computes only
    /// distances, but it can be easily adapted to explicitly find minimum
    /// weight paths."
    pub fn shortest_path(
        &self,
        g: &DiGraph<S::W>,
        u: usize,
        v: usize,
    ) -> Option<(S::W, Vec<u32>)> {
        let (dist, _) = self.distances_seq(u);
        if S::is_zero(dist[v]) {
            return None;
        }
        let parent = shortest_path_tree::<S>(g, u, &dist);
        let path = path_from_tree(g, &parent, u, v)?;
        Some((dist[v], path))
    }

    /// Distances for `k` arbitrary vertex pairs: pairs are grouped by
    /// source so each distinct source costs one scheduled query
    /// (the practical analogue of the paper's `k`-pairs bounds in the
    /// Section 6 discussion). Returns weights in input order.
    pub fn distances_pairs(&self, pairs: &[(usize, usize)]) -> Vec<S::W> {
        let mut by_source: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for (idx, &(u, _)) in pairs.iter().enumerate() {
            by_source.entry(u).or_default().push(idx);
        }
        let sources: Vec<usize> = by_source.keys().copied().collect();
        let rows: Vec<Vec<S::W>> = sources
            .par_iter()
            .map(|&s| self.schedule.run_seq(s).0)
            .collect();
        let mut out = vec![S::zero(); pairs.len()];
        for (s, row) in sources.iter().zip(rows) {
            for &idx in &by_source[s] {
                out[idx] = row[pairs[idx].1];
            }
        }
        out
    }
}

/// Recover a shortest-path tree over the **original** edges from an exact
/// distance vector (paper comment (ii): "it can be easily adapted to
/// explicitly find minimum weight paths").
///
/// An edge `(u,v)` is *tight* when `dist(u) ⊗ w ≈ dist(v)`; a BFS from the
/// source across tight edges assigns every reachable vertex a parent edge
/// on a hop-minimal tight path — zero-weight cycles cannot trap it.
/// Returns `parent[v]` = edge id into `v` (`u32::MAX` for the source and
/// unreachable vertices).
pub fn shortest_path_tree<S: Semiring>(
    g: &DiGraph<S::W>,
    source: usize,
    dist: &[S::W],
) -> Vec<u32> {
    let n = g.n();
    let mut parent = vec![u32::MAX; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[source] = true;
    queue.push_back(source as u32);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &eid in g.out_edge_ids(v as usize) {
            let e = g.edge(eid as usize);
            let u = e.to as usize;
            if visited[u] || S::is_zero(dist[u]) {
                continue;
            }
            if S::approx_eq(S::extend(dv, e.w), dist[u]) {
                visited[u] = true;
                parent[u] = eid;
                queue.push_back(e.to);
            }
        }
    }
    parent
}

/// Extract the vertex path source → … → `v` from a parent table, `None`
/// if `v` was not reached.
pub fn path_from_tree<W: Copy>(
    g: &DiGraph<W>,
    parent: &[u32],
    source: usize,
    v: usize,
) -> Option<Vec<u32>> {
    if v != source && parent[v] == u32::MAX {
        return None;
    }
    let mut path = vec![v as u32];
    let mut cur = v;
    let mut guard = 0usize;
    while cur != source {
        let e = g.edge(parent[cur] as usize);
        cur = e.from as usize;
        path.push(cur as u32);
        guard += 1;
        if guard > g.n() {
            return None; // defensive: corrupt parent table
        }
    }
    path.reverse();
    Some(path)
}
