//! Explanations: exhibit the Theorem 3.1 path that realizes a distance.
//!
//! For a pair `(u, v)`, the scheduled Bellman–Ford with parent tracking
//! yields a path **in `G⁺`** from `u` to `v` of the promised shape:
//!
//! ```text
//! ≤ l original edges │ bitonic shortcut section │ ≤ l original edges
//! ```
//!
//! [`Explanation`] carries the hop sequence with each hop's kind
//! (original edge vs `E⁺` shortcut) and level, reports bitonicity of
//! the defined-level middle section, and the size bound
//! `4·d_G + 2l + 1`. Useful for debugging decompositions, teaching the
//! algorithm, and as an executable witness of the theorem.
//!
//! # Exactness caveat
//!
//! Under an **exact** semiring (e.g. [`spsep_graph::semiring::TropicalInt`])
//! the witness provably has ≤ one hop per phase, hence ≤ `4·d_G + 2l + 1`
//! hops with a bitonic middle — the test suite asserts this on random
//! integer-weight graphs. Under floating point, ulp-sized
//! "improvements" from re-associated sums can update a vertex in a late
//! phase and scramble the *recorded* phase timeline, so the path is
//! still optimal and tight but its shape flags are reported, not
//! guaranteed.

use crate::query::Preprocessed;
use crate::shortcuts;
use spsep_graph::Semiring;

/// One hop of an explanation.
#[derive(Clone, Debug)]
pub struct Hop<W> {
    /// Source vertex of the hop.
    pub from: u32,
    /// Target vertex of the hop.
    pub to: u32,
    /// Hop weight.
    pub w: W,
    /// `true` if the hop is an `E⁺` shortcut (vs an original edge).
    pub shortcut: bool,
    /// `level(to)` (`u32::MAX` = undefined).
    pub level_to: u32,
}

/// A distance witness: the `G⁺` path found by the scheduled engine.
#[derive(Clone, Debug)]
pub struct Explanation<W> {
    /// The realized distance.
    pub weight: W,
    /// Hops from source to target.
    pub hops: Vec<Hop<W>>,
    /// Whether the defined-level section of the hop sequence is bitonic
    /// (nonincreasing then nondecreasing).
    pub bitonic: bool,
    /// The Theorem 3.1 size bound `4·d_G + 2l + 1` for this instance.
    pub size_bound: usize,
}

impl<W: Copy + std::fmt::Debug> Explanation<W> {
    /// Vertex sequence of the witness path.
    pub fn vertices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.hops.len() + 1);
        if let Some(first) = self.hops.first() {
            out.push(first.from);
        }
        out.extend(self.hops.iter().map(|h| h.to));
        out
    }

    /// Render a human-readable trace.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        // Writes into a String are infallible.
        let _ = writeln!(
            out,
            "weight {:?} via {} hops (bound {}), bitonic section: {}",
            self.weight,
            self.hops.len(),
            self.size_bound,
            self.bitonic
        );
        for h in &self.hops {
            let _ = writeln!(
                out,
                "  {} →{} {}  w={:?}  level(to)={}",
                h.from,
                if h.shortcut { "⁺" } else { " " },
                h.to,
                h.w,
                if h.level_to == u32::MAX {
                    "∞".to_string()
                } else {
                    h.level_to.to_string()
                }
            );
        }
        out
    }
}

/// Produce the Theorem 3.1 witness path for `(source, target)` — `None`
/// if the target is unreachable.
pub fn explain<S: Semiring>(
    pre: &Preprocessed<S>,
    source: usize,
    target: usize,
) -> Option<Explanation<S::W>> {
    let (dist, parent) = pre.schedule().run_seq_parents(source);
    if S::is_zero(dist[target]) && source != target {
        return None;
    }
    // Walk parents back from the target.
    let edges = pre.augmented_edges();
    let base_m = pre.base_edge_count();
    let mut hops_rev: Vec<Hop<S::W>> = Vec::new();
    let mut cur = target;
    let mut guard = 0usize;
    while cur != source {
        let eid = parent[cur];
        if eid == u32::MAX {
            return None; // target got its value only from the init
        }
        let e = &edges[eid as usize];
        hops_rev.push(Hop {
            from: e.from,
            to: e.to,
            w: e.w,
            shortcut: eid as usize >= base_m,
            level_to: pre.levels()[e.to as usize],
        });
        cur = e.from as usize;
        guard += 1;
        if guard > edges.len() {
            return None; // defensive: corrupted parents
        }
    }
    hops_rev.reverse();
    let hops = hops_rev;
    let stats = pre.stats();
    // Bitonicity of the *middle* section: the first and last ≤ l hops
    // come from the entry/exit E-phases and may have arbitrary levels
    // (exactly the path shape of Theorem 3.1's proof). Vertex levels =
    // source level followed by each hop's to-level.
    let mut levels: Vec<u32> = Vec::with_capacity(hops.len() + 1);
    levels.push(pre.levels()[source]);
    levels.extend(hops.iter().map(|h| h.level_to));
    let l = stats.leaf_bound;
    let lo = l.min(levels.len().saturating_sub(1));
    let hi = levels.len().saturating_sub(1 + l).max(lo);
    let middle: Vec<u32> = levels[lo..=hi]
        .iter()
        .copied()
        .filter(|&x| x != u32::MAX)
        .collect();
    Some(Explanation {
        weight: dist[target],
        bitonic: shortcuts::is_bitonic_relaxed(&middle),
        size_bound: 4 * stats.d_g as usize + 2 * stats.leaf_bound + 1,
        hops,
    })
}
