//! The Section 3.2 phase schedule for Bellman–Ford on `G⁺`.
//!
//! Theorem 3.1's proof shows every distance is realized in `G⁺` by a path
//! of the form
//!
//! ```text
//! ≤ l original edges │ bitonic-level shortcut section │ ≤ l original edges
//! ```
//!
//! where the levels of the middle section first do not increase and then
//! do not decrease, with at most two consecutive equal levels. It
//! therefore suffices to run `2l + 4·d_G + 1` Bellman–Ford phases that
//! each scan only the edge class the structure can use next:
//!
//! * `l` phases over all original edges `E` (entry segment);
//! * descending phases `i = 1 … 2d_G+1`: odd `i` scans *same-level* edges
//!   at level `d_G − (i−1)/2`, even `i` scans *down* edges leaving level
//!   `d_G − i/2 + 1`;
//! * ascending phases `i = 1 … 2d_G`: odd `i` scans *up* edges leaving
//!   level `(i−1)/2`, even `i` scans same-level edges at level `i/2`;
//! * `l` phases over `E` again (exit segment).
//!
//! (The published text's even-descending formula is OCR-garbled; we use
//! the mirror image of the ascending rule — see DESIGN.md §5 — and tests
//! verify equivalence with exhaustive Bellman–Ford on `G⁺`.)
//!
//! Each phase is organized for exclusive-read/exclusive-write execution:
//! a bucket stores its arcs grouped by target, plus the distinct source
//! list; a phase gathers source distances into a scratch vector and then
//! reduces each target group independently. Work per source is
//! `O(l·|E| + |E ∪ E⁺|)` — the bound of Section 3.2.

use spsep_graph::{Edge, Semiring};
use spsep_pram::{Counter, Metrics};

/// One scannable edge class, grouped by target vertex.
#[derive(Clone, Debug)]
pub struct Bucket<W> {
    /// Distinct source vertices of this bucket's arcs.
    sources: Vec<u32>,
    /// `(target, arc_start, arc_end)` — arcs grouped per target.
    groups: Vec<(u32, u32, u32)>,
    /// `(source_slot, edge_id, weight)`; `source_slot` indexes `sources`,
    /// `edge_id` indexes the augmented edge list (for parent tracking).
    arcs: Vec<(u32, u32, W)>,
}

impl<W: Copy> Bucket<W> {
    /// Build a bucket from `(from, to, edge_id, w)` arcs.
    fn build(mut raw: Vec<(u32, u32, u32, W)>) -> Bucket<W> {
        raw.sort_unstable_by_key(|&(f, t, _, _)| (t, f));
        let mut sources: Vec<u32> = raw.iter().map(|&(f, _, _, _)| f).collect();
        sources.sort_unstable();
        sources.dedup();
        let slot_of = |v: u32| {
            sources
                .binary_search(&v)
                .unwrap_or_else(|_| unreachable!("source present"))
                as u32
        };
        let mut groups = Vec::new();
        let mut arcs = Vec::with_capacity(raw.len());
        let mut i = 0;
        while i < raw.len() {
            let target = raw[i].1;
            let start = arcs.len() as u32;
            while i < raw.len() && raw[i].1 == target {
                arcs.push((slot_of(raw[i].0), raw[i].2, raw[i].3));
                i += 1;
            }
            groups.push((target, start, arcs.len() as u32));
        }
        Bucket {
            sources,
            groups,
            arcs,
        }
    }

    /// Number of arcs in this bucket.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// `true` if the bucket has no arcs.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }
}

/// The compiled phase schedule over `G⁺`.
#[derive(Clone, Debug)]
pub struct Schedule<S: Semiring> {
    n: usize,
    buckets: Vec<Bucket<S::W>>,
    /// Bucket index per phase, in execution order.
    sequence: Vec<u32>,
    max_sources: usize,
    total_phases: usize,
}

/// Classify an augmented edge by the level relation of its endpoints.
fn classify(l1: u32, l2: u32, d_g: u32) -> Option<usize> {
    // Bucket layout: for λ in 0..=d_g — Same(λ)=3λ, Down(λ)=3λ+1, Up(λ)=3λ+2.
    let undef = u32::MAX;
    if l1 == undef || l2 == undef {
        return None; // only reachable through the entry/exit E phases
    }
    debug_assert!(l1 <= d_g && l2 <= d_g);
    let slot = match l1.cmp(&l2) {
        std::cmp::Ordering::Equal => 3 * l1,
        std::cmp::Ordering::Greater => 3 * l1 + 1, // down edge, leaves level l1
        std::cmp::Ordering::Less => 3 * l1 + 2,    // up edge, leaves level l1
    };
    Some(slot as usize)
}

impl<S: Semiring> Schedule<S> {
    /// Compile the schedule from the original edges, the shortcut set, the
    /// per-vertex levels, the tree height `d_g`, and the leaf bound `l`.
    pub fn compile(
        n: usize,
        base: &[Edge<S::W>],
        eplus: &[Edge<S::W>],
        levels: &[u32],
        d_g: u32,
        l: usize,
    ) -> Schedule<S> {
        // Raw arcs per level bucket (3 per level) + the E bucket at the end.
        // Edge ids: base edges are 0..|E|, shortcuts follow.
        let level_buckets = 3 * (d_g as usize + 1);
        type RawArcs<W> = Vec<Vec<(u32, u32, u32, W)>>;
        let mut raw: RawArcs<S::W> = vec![Vec::new(); level_buckets + 1];
        let e_bucket = level_buckets;
        for (id, e) in base.iter().enumerate() {
            raw[e_bucket].push((e.from, e.to, id as u32, e.w));
            if let Some(b) = classify(levels[e.from as usize], levels[e.to as usize], d_g) {
                raw[b].push((e.from, e.to, id as u32, e.w));
            }
        }
        for (i, e) in eplus.iter().enumerate() {
            let id = (base.len() + i) as u32;
            let Some(b) = classify(levels[e.from as usize], levels[e.to as usize], d_g)
            else {
                unreachable!("shortcut endpoints always have defined levels")
            };
            raw[b].push((e.from, e.to, id, e.w));
        }
        let buckets: Vec<Bucket<S::W>> = raw.into_iter().map(Bucket::build).collect();

        // Phase sequence.
        let mut sequence: Vec<u32> = Vec::new();
        let push = |b: usize, seq: &mut Vec<u32>| {
            if !buckets[b].is_empty() {
                seq.push(b as u32);
            }
        };
        for _ in 0..l {
            push(e_bucket, &mut sequence);
        }
        // Descending: i = 1..=2d_g+1.
        for i in 1..=(2 * d_g as usize + 1) {
            if i % 2 == 1 {
                let lam = d_g as usize - (i - 1) / 2;
                push(3 * lam, &mut sequence); // Same(λ)
            } else {
                let lam = d_g as usize - i / 2 + 1;
                push(3 * lam + 1, &mut sequence); // Down(λ)
            }
        }
        // Ascending: i = 1..=2d_g.
        for i in 1..=(2 * d_g as usize) {
            if i % 2 == 1 {
                let lam = (i - 1) / 2;
                push(3 * lam + 2, &mut sequence); // Up(λ)
            } else {
                let lam = i / 2;
                push(3 * lam, &mut sequence); // Same(λ)
            }
        }
        for _ in 0..l {
            push(e_bucket, &mut sequence);
        }
        let max_sources = buckets.iter().map(|b| b.sources.len()).max().unwrap_or(0);
        let total_phases = 2 * l + 4 * d_g as usize + 1;
        Schedule {
            n,
            buckets,
            sequence,
            max_sources,
            total_phases,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nominal phase count `2l + 4·d_G + 1` (empty phases are elided from
    /// the compiled sequence).
    pub fn total_phases(&self) -> usize {
        self.total_phases
    }

    /// Arcs scanned over one full schedule execution (the per-source work
    /// bound, up to the `O(1)` gather overhead).
    pub fn arcs_per_run(&self) -> u64 {
        self.sequence
            .iter()
            .map(|&b| self.buckets[b as usize].len() as u64)
            .sum()
    }

    /// Run the schedule from `source`, sequentially. Returns the distance
    /// vector and the number of relaxations performed.
    pub fn run_seq(&self, source: usize) -> (Vec<S::W>, u64) {
        let mut init = vec![S::zero(); self.n];
        init[source] = S::one();
        self.run_seq_init(init)
    }

    /// Run the schedule from an arbitrary initial label vector
    /// (multi-source shortest paths: the result at `v` is the
    /// `combine` over all `u` of `init[u] ⊗ dist(u, v)`; min-plus
    /// linearity makes the single-source phase argument apply per
    /// source).
    pub fn run_seq_init(&self, mut dist: Vec<S::W>) -> (Vec<S::W>, u64) {
        assert_eq!(dist.len(), self.n);
        let mut scratch: Vec<S::W> = vec![S::zero(); self.max_sources];
        let mut relaxations = 0u64;
        for &bi in &self.sequence {
            let bucket = &self.buckets[bi as usize];
            for (slot, &src) in bucket.sources.iter().enumerate() {
                scratch[slot] = dist[src as usize];
            }
            for &(target, a0, a1) in &bucket.groups {
                let mut best = dist[target as usize];
                for &(slot, _id, w) in &bucket.arcs[a0 as usize..a1 as usize] {
                    let sv = scratch[slot as usize];
                    if S::is_zero(sv) {
                        continue;
                    }
                    best = S::combine(best, S::extend(sv, w));
                }
                dist[target as usize] = best;
            }
            relaxations += bucket.len() as u64;
        }
        (dist, relaxations)
    }

    /// Run the schedule from `source` tracking, for every vertex, the
    /// **augmented edge** (id into `E` followed by `E⁺`) that last
    /// improved it — parent pointers over `G⁺`, from which
    /// [`crate::explain`] reconstructs the Theorem 3.1 path shape.
    pub fn run_seq_parents(&self, source: usize) -> (Vec<S::W>, Vec<u32>) {
        let mut dist = vec![S::zero(); self.n];
        let mut parent = vec![u32::MAX; self.n];
        dist[source] = S::one();
        let mut scratch: Vec<S::W> = vec![S::zero(); self.max_sources];
        for &bi in &self.sequence {
            let bucket = &self.buckets[bi as usize];
            for (slot, &src) in bucket.sources.iter().enumerate() {
                scratch[slot] = dist[src as usize];
            }
            for &(target, a0, a1) in &bucket.groups {
                let mut best = dist[target as usize];
                let mut best_edge = u32::MAX;
                for &(slot, id, w) in &bucket.arcs[a0 as usize..a1 as usize] {
                    let sv = scratch[slot as usize];
                    if S::is_zero(sv) {
                        continue;
                    }
                    let cand = S::extend(sv, w);
                    let merged = S::combine(best, cand);
                    if merged != best {
                        best = merged;
                        best_edge = id;
                    }
                }
                if best_edge != u32::MAX {
                    dist[target as usize] = best;
                    parent[target as usize] = best_edge;
                }
            }
        }
        (dist, parent)
    }

    /// Diagnostic run: like [`Schedule::run_seq_parents`] but also
    /// returning, per vertex, the index into the compiled sequence of the
    /// phase where it last improved (`u32::MAX` if never), and the bucket
    /// id of that phase.
    pub fn run_seq_trace(&self, source: usize) -> (Vec<S::W>, Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut dist = vec![S::zero(); self.n];
        let mut parent = vec![u32::MAX; self.n];
        let mut phase_of = vec![u32::MAX; self.n];
        let mut bucket_of = vec![u32::MAX; self.n];
        dist[source] = S::one();
        let mut scratch: Vec<S::W> = vec![S::zero(); self.max_sources];
        for (phase_idx, &bi) in self.sequence.iter().enumerate() {
            let bucket = &self.buckets[bi as usize];
            for (slot, &src) in bucket.sources.iter().enumerate() {
                scratch[slot] = dist[src as usize];
            }
            for &(target, a0, a1) in &bucket.groups {
                let mut best = dist[target as usize];
                let mut best_edge = u32::MAX;
                for &(slot, id, w) in &bucket.arcs[a0 as usize..a1 as usize] {
                    let sv = scratch[slot as usize];
                    if S::is_zero(sv) {
                        continue;
                    }
                    let cand = S::extend(sv, w);
                    let merged = S::combine(best, cand);
                    if merged != best {
                        best = merged;
                        best_edge = id;
                    }
                }
                if best_edge != u32::MAX {
                    dist[target as usize] = best;
                    parent[target as usize] = best_edge;
                    phase_of[target as usize] = phase_idx as u32;
                    bucket_of[target as usize] = bi;
                }
            }
        }
        (dist, parent, phase_of, bucket_of)
    }

    /// Run the schedule from `source` with phase-parallel execution
    /// (rayon), charging work and depth to `metrics`.
    pub fn run_parallel(&self, source: usize, metrics: &Metrics) -> Vec<S::W> {
        use rayon::prelude::*;
        let mut dist = vec![S::zero(); self.n];
        dist[source] = S::one();
        let mut scratch: Vec<S::W> = vec![S::zero(); self.max_sources];
        for &bi in &self.sequence {
            let bucket = &self.buckets[bi as usize];
            metrics.phase(bucket.groups.len().max(1));
            metrics.work(Counter::Relaxation, bucket.len() as u64);
            // Gather (exclusive-read: each slot reads one dist entry).
            scratch[..bucket.sources.len()]
                .par_iter_mut()
                .enumerate()
                .for_each(|(slot, s)| {
                    *s = dist[bucket.sources[slot] as usize];
                });
            // Reduce per target (exclusive-write: targets are distinct).
            let updates: Vec<(u32, S::W)> = bucket
                .groups
                .par_iter()
                .filter_map(|&(target, a0, a1)| {
                    let mut best = dist[target as usize];
                    let mut any = false;
                    for &(slot, _id, w) in &bucket.arcs[a0 as usize..a1 as usize] {
                        let sv = scratch[slot as usize];
                        if S::is_zero(sv) {
                            continue;
                        }
                        let cand = S::extend(sv, w);
                        let merged = S::combine(best, cand);
                        if merged != best {
                            best = merged;
                            any = true;
                        }
                    }
                    any.then_some((target, best))
                })
                .collect();
            for (target, best) in updates {
                dist[target as usize] = best;
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsep_graph::semiring::Tropical;

    #[test]
    fn bucket_groups_by_target() {
        let b = Bucket::build(vec![
            (0u32, 2u32, 0u32, 1.0f64),
            (1, 2, 1, 2.0),
            (0, 3, 2, 4.0),
            (1, 3, 3, 0.5),
        ]);
        assert_eq!(b.sources, vec![0, 1]);
        assert_eq!(b.groups.len(), 2);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn classify_levels() {
        let d_g = 3;
        assert_eq!(classify(2, 2, d_g), Some(6));
        assert_eq!(classify(2, 1, d_g), Some(7));
        assert_eq!(classify(2, 3, d_g), Some(8));
        assert_eq!(classify(u32::MAX, 1, d_g), None);
        assert_eq!(classify(0, u32::MAX, d_g), None);
    }

    #[test]
    fn trivial_schedule_runs() {
        // Path 0→1→2 with all vertices level 0 (degenerate tree of height 0
        // can't arise, but the schedule must still behave).
        let base = vec![
            Edge::new(0usize, 1usize, 1.0f64),
            Edge::new(1, 2, 2.0),
        ];
        let levels = vec![0u32, 0, 0];
        let sched = Schedule::<Tropical>::compile(3, &base, &[], &levels, 0, 2);
        let (dist, relax) = sched.run_seq(0);
        assert_eq!(dist, vec![0.0, 1.0, 3.0]);
        assert!(relax > 0);
    }

    #[test]
    fn parents_and_trace_agree_with_plain_run() {
        let base = vec![
            Edge::new(0usize, 1usize, 1.0f64),
            Edge::new(1, 2, 2.0),
            Edge::new(0, 2, 10.0),
        ];
        let levels = vec![0u32, 0, 0];
        let sched = Schedule::<Tropical>::compile(3, &base, &[], &levels, 0, 3);
        let (d0, _) = sched.run_seq(0);
        let (d1, parents) = sched.run_seq_parents(0);
        let (d2, p2, phase_of, bucket_of) = sched.run_seq_trace(0);
        assert_eq!(d0, d1);
        assert_eq!(d1, d2);
        assert_eq!(parents, p2);
        // Vertex 2's best parent is edge id 1 (1→2, total 3 < 10).
        assert_eq!(parents[2], 1);
        assert_eq!(parents[1], 0);
        assert_eq!(parents[0], u32::MAX);
        // Phases recorded and within the sequence.
        assert!(phase_of[2] != u32::MAX);
        assert!(phase_of[1] <= phase_of[2]);
        assert!(bucket_of[2] != u32::MAX);
    }

    #[test]
    fn schedule_sequence_order_is_bitonic() {
        // With d_g = 1 and l = 1 the nominal sequence is:
        // E | Same(1) Down(1) Same(0) | Up(0) Same(1) | E.
        let base = vec![Edge::new(0usize, 1usize, 1.0f64)];
        let eplus = vec![
            Edge::new(0usize, 1usize, 5.0f64), // levels 1→0: Down(1)
            Edge::new(1, 0, 5.0),              // 0→1: Up(0)
        ];
        let levels = vec![1u32, 0];
        let sched = Schedule::<Tropical>::compile(2, &base, &eplus, &levels, 1, 1);
        assert_eq!(sched.total_phases(), 2 + 4 + 1);
        // Compiled sequence drops empty buckets; check relative order:
        // E(=6), Down(1)(=4), Up(0)(=2), E(=6).
        assert_eq!(sched.sequence, vec![6, 4, 2, 6]);
    }
}
