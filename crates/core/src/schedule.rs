//! The Section 3.2 phase schedule for Bellman–Ford on `G⁺`.
//!
//! Theorem 3.1's proof shows every distance is realized in `G⁺` by a path
//! of the form
//!
//! ```text
//! ≤ l original edges │ bitonic-level shortcut section │ ≤ l original edges
//! ```
//!
//! where the levels of the middle section first do not increase and then
//! do not decrease, with at most two consecutive equal levels. It
//! therefore suffices to run `2l + 4·d_G + 1` Bellman–Ford phases that
//! each scan only the edge class the structure can use next:
//!
//! * `l` phases over all original edges `E` (entry segment);
//! * descending phases `i = 1 … 2d_G+1`: odd `i` scans *same-level* edges
//!   at level `d_G − (i−1)/2`, even `i` scans *down* edges leaving level
//!   `d_G − i/2 + 1`;
//! * ascending phases `i = 1 … 2d_G`: odd `i` scans *up* edges leaving
//!   level `(i−1)/2`, even `i` scans same-level edges at level `i/2`;
//! * `l` phases over `E` again (exit segment).
//!
//! (The published text's even-descending formula is OCR-garbled; we use
//! the mirror image of the ascending rule — see DESIGN.md §5 — and tests
//! verify equivalence with exhaustive Bellman–Ford on `G⁺`.)
//!
//! Each phase is organized for exclusive-read/exclusive-write execution:
//! a bucket stores its arcs grouped by target, plus the distinct source
//! list; a phase gathers source distances into a scratch vector and then
//! reduces each target group independently. Work per source is
//! `O(l·|E| + |E ∪ E⁺|)` — the bound of Section 3.2.

use spsep_graph::slab::Pod;
use spsep_graph::{Edge, Semiring, Store};
use spsep_pram::{Counter, Metrics};

/// One per-target reduction group: arcs
/// `arcs[start..end]` all enter `target`.
///
/// `#[repr(C)]` with three `u32` fields (size 12, no padding) so a
/// bucket's group array can be borrowed straight out of a
/// `spsep-oracle/v2` snapshot slab.
#[repr(C)]
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Group {
    /// Target vertex of every arc in the group.
    pub target: u32,
    /// First arc index (into the bucket's arc array).
    pub start: u32,
    /// One past the last arc index.
    pub end: u32,
}

// SAFETY: #[repr(C)] { u32, u32, u32 } — size 12, align 4, no padding;
// any bit pattern is a valid (if semantically wrong) value. Semantic
// validation happens in `crate::iov2`.
unsafe impl Pod for Group {}

/// One relaxation arc: `source_slot` indexes the bucket's source list,
/// `edge_id` the augmented edge list (for parent tracking), `w` the
/// weight.
///
/// `#[repr(C)]`: for `W = f64` the layout is offsets 0/4/8, size 16,
/// align 8, no padding — snapshot-borrowable like [`Group`].
#[repr(C)]
#[derive(Copy, Clone, Debug)]
pub struct ArcRec<W> {
    /// Index into the bucket's distinct-source list.
    pub slot: u32,
    /// Augmented edge id (`E` then `E⁺`).
    pub id: u32,
    /// Arc weight.
    pub w: W,
}

// SAFETY: #[repr(C)] { u32, u32, f64 } — offsets 0, 4, 8; size 16,
// align 8, no padding; all bit patterns valid (NaN weights are caught
// by semantic validation, not layout).
unsafe impl Pod for ArcRec<f64> {}

/// One scannable edge class, grouped by target vertex.
///
/// Storage is [`Store`]-backed: owned when compiled in-process, a
/// borrowed snapshot slab when reconstituted from `spsep-oracle/v2`.
#[derive(Clone, Debug)]
pub struct Bucket<W: Copy> {
    /// Distinct source vertices of this bucket's arcs (sorted).
    pub(crate) sources: Store<u32>,
    /// Arcs grouped per target, targets in separator-rank order.
    pub(crate) groups: Store<Group>,
    /// The arcs; `groups` partitions this array.
    pub(crate) arcs: Store<ArcRec<W>>,
}

impl<W: Copy> Bucket<W> {
    /// Build a bucket from `(from, to, edge_id, w)` arcs.
    ///
    /// `rank` is the separator-locality [`spsep_graph::NodeOrder`] rank
    /// array: target groups are laid out (and hence processed) in rank
    /// order, so one phase walks memory in separator-tree order instead
    /// of input-id order. The combine order *within* a target group is
    /// `(from, edge id)` — independent of `rank` — so per-target
    /// candidate sequences, and therefore answers and parent pointers,
    /// are identical for every choice of order (the order is purely a
    /// layout decision).
    fn build(mut raw: Vec<(u32, u32, u32, W)>, rank: &[u32]) -> Bucket<W> {
        raw.sort_unstable_by_key(|&(f, t, id, _)| (rank[t as usize], f, id));
        let mut sources: Vec<u32> = raw.iter().map(|&(f, _, _, _)| f).collect();
        sources.sort_unstable();
        sources.dedup();
        let slot_of = |v: u32| {
            sources
                .binary_search(&v)
                .unwrap_or_else(|_| unreachable!("source present"))
                as u32
        };
        let mut groups = Vec::new();
        let mut arcs: Vec<ArcRec<W>> = Vec::with_capacity(raw.len());
        let mut i = 0;
        while i < raw.len() {
            let target = raw[i].1;
            let start = arcs.len() as u32;
            while i < raw.len() && raw[i].1 == target {
                arcs.push(ArcRec {
                    slot: slot_of(raw[i].0),
                    id: raw[i].2,
                    w: raw[i].3,
                });
                i += 1;
            }
            groups.push(Group {
                target,
                start,
                end: arcs.len() as u32,
            });
        }
        Bucket {
            sources: sources.into(),
            groups: groups.into(),
            arcs: arcs.into(),
        }
    }

    /// Number of arcs in this bucket.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// `true` if the bucket has no arcs.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// The distinct source vertices (sorted by id).
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }

    /// The per-target groups, in separator-rank order.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// The arc array partitioned by [`Bucket::groups`].
    pub fn arcs(&self) -> &[ArcRec<W>] {
        &self.arcs
    }
}

/// The compiled phase schedule over `G⁺`.
#[derive(Clone, Debug)]
pub struct Schedule<S: Semiring> {
    pub(crate) n: usize,
    pub(crate) buckets: Vec<Bucket<S::W>>,
    /// Bucket index per phase, in execution order.
    pub(crate) sequence: Store<u32>,
    pub(crate) max_sources: usize,
    pub(crate) total_phases: usize,
}

/// Classify an augmented edge by the level relation of its endpoints.
fn classify(l1: u32, l2: u32, d_g: u32) -> Option<usize> {
    // Bucket layout: for λ in 0..=d_g — Same(λ)=3λ, Down(λ)=3λ+1, Up(λ)=3λ+2.
    let undef = u32::MAX;
    if l1 == undef || l2 == undef {
        return None; // only reachable through the entry/exit E phases
    }
    debug_assert!(l1 <= d_g && l2 <= d_g);
    let slot = match l1.cmp(&l2) {
        std::cmp::Ordering::Equal => 3 * l1,
        std::cmp::Ordering::Greater => 3 * l1 + 1, // down edge, leaves level l1
        std::cmp::Ordering::Less => 3 * l1 + 2,    // up edge, leaves level l1
    };
    Some(slot as usize)
}

impl<S: Semiring> Schedule<S> {
    /// Compile the schedule from the original edges, the shortcut set, the
    /// per-vertex levels, the tree height `d_g`, the leaf bound `l`, and a
    /// vertex rank array (`rank[v]` = memory-locality position of `v`,
    /// typically `spsep_separator::separator_locality_order`; pass the
    /// identity to keep input order). The rank only affects bucket
    /// layout, never answers — see [`Bucket`].
    pub fn compile(
        n: usize,
        base: &[Edge<S::W>],
        eplus: &[Edge<S::W>],
        levels: &[u32],
        d_g: u32,
        l: usize,
        rank: &[u32],
    ) -> Schedule<S> {
        debug_assert_eq!(rank.len(), n);
        // Raw arcs per level bucket (3 per level) + the E bucket at the end.
        // Edge ids: base edges are 0..|E|, shortcuts follow.
        let level_buckets = 3 * (d_g as usize + 1);
        type RawArcs<W> = Vec<Vec<(u32, u32, u32, W)>>;
        let mut raw: RawArcs<S::W> = vec![Vec::new(); level_buckets + 1];
        let e_bucket = level_buckets;
        for (id, e) in base.iter().enumerate() {
            raw[e_bucket].push((e.from, e.to, id as u32, e.w));
            if let Some(b) = classify(levels[e.from as usize], levels[e.to as usize], d_g) {
                raw[b].push((e.from, e.to, id as u32, e.w));
            }
        }
        for (i, e) in eplus.iter().enumerate() {
            let id = (base.len() + i) as u32;
            let Some(b) = classify(levels[e.from as usize], levels[e.to as usize], d_g)
            else {
                unreachable!("shortcut endpoints always have defined levels")
            };
            raw[b].push((e.from, e.to, id, e.w));
        }
        let buckets: Vec<Bucket<S::W>> = raw.into_iter().map(|r| Bucket::build(r, rank)).collect();

        // Phase sequence.
        let mut sequence: Vec<u32> = Vec::new();
        let push = |b: usize, seq: &mut Vec<u32>| {
            if !buckets[b].is_empty() {
                seq.push(b as u32);
            }
        };
        for _ in 0..l {
            push(e_bucket, &mut sequence);
        }
        // Descending: i = 1..=2d_g+1.
        for i in 1..=(2 * d_g as usize + 1) {
            if i % 2 == 1 {
                let lam = d_g as usize - (i - 1) / 2;
                push(3 * lam, &mut sequence); // Same(λ)
            } else {
                let lam = d_g as usize - i / 2 + 1;
                push(3 * lam + 1, &mut sequence); // Down(λ)
            }
        }
        // Ascending: i = 1..=2d_g.
        for i in 1..=(2 * d_g as usize) {
            if i % 2 == 1 {
                let lam = (i - 1) / 2;
                push(3 * lam + 2, &mut sequence); // Up(λ)
            } else {
                let lam = i / 2;
                push(3 * lam, &mut sequence); // Same(λ)
            }
        }
        for _ in 0..l {
            push(e_bucket, &mut sequence);
        }
        let max_sources = buckets.iter().map(|b| b.sources.len()).max().unwrap_or(0);
        let total_phases = 2 * l + 4 * d_g as usize + 1;
        Schedule {
            n,
            buckets,
            sequence: sequence.into(),
            max_sources,
            total_phases,
        }
    }

    /// The compiled buckets (level classes plus the trailing `E`
    /// bucket), exposed for serialization and inspection.
    pub fn buckets(&self) -> &[Bucket<S::W>] {
        &self.buckets
    }

    /// The phase sequence (bucket index per phase, empty buckets
    /// elided).
    pub fn sequence(&self) -> &[u32] {
        &self.sequence
    }

    /// Largest distinct-source count over all buckets (the scratch
    /// gather width).
    pub fn max_sources(&self) -> usize {
        self.max_sources
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nominal phase count `2l + 4·d_G + 1` (empty phases are elided from
    /// the compiled sequence).
    pub fn total_phases(&self) -> usize {
        self.total_phases
    }

    /// Arcs scanned over one full schedule execution (the per-source work
    /// bound, up to the `O(1)` gather overhead).
    pub fn arcs_per_run(&self) -> u64 {
        self.sequence
            .iter()
            .map(|&b| self.buckets[b as usize].len() as u64)
            .sum()
    }

    /// Run the schedule from `source`, sequentially. Returns the distance
    /// vector and the number of relaxations performed.
    pub fn run_seq(&self, source: usize) -> (Vec<S::W>, u64) {
        let mut init = vec![S::zero(); self.n];
        init[source] = S::one();
        self.run_seq_init(init)
    }

    /// Run the schedule from an arbitrary initial label vector
    /// (multi-source shortest paths: the result at `v` is the
    /// `combine` over all `u` of `init[u] ⊗ dist(u, v)`; min-plus
    /// linearity makes the single-source phase argument apply per
    /// source).
    pub fn run_seq_init(&self, mut dist: Vec<S::W>) -> (Vec<S::W>, u64) {
        assert_eq!(dist.len(), self.n);
        let mut scratch: Vec<S::W> = vec![S::zero(); self.max_sources];
        let mut relaxations = 0u64;
        for &bi in self.sequence.iter() {
            let bucket = &self.buckets[bi as usize];
            for (slot, &src) in bucket.sources.iter().enumerate() {
                scratch[slot] = dist[src as usize];
            }
            for &Group { target, start, end } in bucket.groups.iter() {
                let mut best = dist[target as usize];
                for a in &bucket.arcs[start as usize..end as usize] {
                    let sv = scratch[a.slot as usize];
                    if S::is_zero(sv) {
                        continue;
                    }
                    best = S::combine(best, S::extend(sv, a.w));
                }
                dist[target as usize] = best;
            }
            relaxations += bucket.len() as u64;
        }
        (dist, relaxations)
    }

    /// Run the schedule from `source` tracking, for every vertex, the
    /// **augmented edge** (id into `E` followed by `E⁺`) that last
    /// improved it — parent pointers over `G⁺`, from which
    /// [`crate::explain`] reconstructs the Theorem 3.1 path shape.
    pub fn run_seq_parents(&self, source: usize) -> (Vec<S::W>, Vec<u32>) {
        let mut dist = vec![S::zero(); self.n];
        let mut parent = vec![u32::MAX; self.n];
        dist[source] = S::one();
        let mut scratch: Vec<S::W> = vec![S::zero(); self.max_sources];
        for &bi in self.sequence.iter() {
            let bucket = &self.buckets[bi as usize];
            for (slot, &src) in bucket.sources.iter().enumerate() {
                scratch[slot] = dist[src as usize];
            }
            for &Group { target, start, end } in bucket.groups.iter() {
                let mut best = dist[target as usize];
                let mut best_edge = u32::MAX;
                for a in &bucket.arcs[start as usize..end as usize] {
                    let sv = scratch[a.slot as usize];
                    if S::is_zero(sv) {
                        continue;
                    }
                    let cand = S::extend(sv, a.w);
                    let merged = S::combine(best, cand);
                    if merged != best {
                        best = merged;
                        best_edge = a.id;
                    }
                }
                if best_edge != u32::MAX {
                    dist[target as usize] = best;
                    parent[target as usize] = best_edge;
                }
            }
        }
        (dist, parent)
    }

    /// Diagnostic run: like [`Schedule::run_seq_parents`] but also
    /// returning, per vertex, the index into the compiled sequence of the
    /// phase where it last improved (`u32::MAX` if never), and the bucket
    /// id of that phase.
    pub fn run_seq_trace(&self, source: usize) -> (Vec<S::W>, Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut dist = vec![S::zero(); self.n];
        let mut parent = vec![u32::MAX; self.n];
        let mut phase_of = vec![u32::MAX; self.n];
        let mut bucket_of = vec![u32::MAX; self.n];
        dist[source] = S::one();
        let mut scratch: Vec<S::W> = vec![S::zero(); self.max_sources];
        for (phase_idx, &bi) in self.sequence.iter().enumerate() {
            let bucket = &self.buckets[bi as usize];
            for (slot, &src) in bucket.sources.iter().enumerate() {
                scratch[slot] = dist[src as usize];
            }
            for &Group { target, start, end } in bucket.groups.iter() {
                let mut best = dist[target as usize];
                let mut best_edge = u32::MAX;
                for a in &bucket.arcs[start as usize..end as usize] {
                    let sv = scratch[a.slot as usize];
                    if S::is_zero(sv) {
                        continue;
                    }
                    let cand = S::extend(sv, a.w);
                    let merged = S::combine(best, cand);
                    if merged != best {
                        best = merged;
                        best_edge = a.id;
                    }
                }
                if best_edge != u32::MAX {
                    dist[target as usize] = best;
                    parent[target as usize] = best_edge;
                    phase_of[target as usize] = phase_idx as u32;
                    bucket_of[target as usize] = bi;
                }
            }
        }
        (dist, parent, phase_of, bucket_of)
    }

    /// Run the schedule from `source` with phase-parallel execution
    /// (rayon), charging work and depth to `metrics`.
    pub fn run_parallel(&self, source: usize, metrics: &Metrics) -> Vec<S::W> {
        use rayon::prelude::*;
        let mut dist = vec![S::zero(); self.n];
        dist[source] = S::one();
        let mut scratch: Vec<S::W> = vec![S::zero(); self.max_sources];
        for &bi in self.sequence.iter() {
            let bucket = &self.buckets[bi as usize];
            metrics.phase(bucket.groups.len().max(1));
            metrics.work(Counter::Relaxation, bucket.len() as u64);
            // Gather (exclusive-read: each slot reads one dist entry).
            scratch[..bucket.sources.len()]
                .par_iter_mut()
                .enumerate()
                .for_each(|(slot, s)| {
                    *s = dist[bucket.sources[slot] as usize];
                });
            // Reduce per target (exclusive-write: targets are distinct).
            let updates: Vec<(u32, S::W)> = bucket
                .groups
                .as_slice()
                .par_iter()
                .filter_map(|&Group { target, start, end }| {
                    let mut best = dist[target as usize];
                    let mut any = false;
                    for a in &bucket.arcs[start as usize..end as usize] {
                        let sv = scratch[a.slot as usize];
                        if S::is_zero(sv) {
                            continue;
                        }
                        let cand = S::extend(sv, a.w);
                        let merged = S::combine(best, cand);
                        if merged != best {
                            best = merged;
                            any = true;
                        }
                    }
                    any.then_some((target, best))
                })
                .collect();
            for (target, best) in updates {
                dist[target as usize] = best;
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spsep_graph::semiring::Tropical;

    fn idrank(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn bucket_groups_by_target() {
        let b = Bucket::build(
            vec![
                (0u32, 2u32, 0u32, 1.0f64),
                (1, 2, 1, 2.0),
                (0, 3, 2, 4.0),
                (1, 3, 3, 0.5),
            ],
            &idrank(4),
        );
        assert_eq!(b.sources(), &[0, 1]);
        assert_eq!(b.groups().len(), 2);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn bucket_rank_reorders_groups_but_not_answers() {
        let raw = vec![
            (0u32, 1u32, 0u32, 1.0f64),
            (0, 2, 1, 2.0),
            (1, 2, 2, 0.5),
        ];
        // Identity rank: targets in id order 1, 2.
        let a = Bucket::build(raw.clone(), &idrank(3));
        let ta: Vec<u32> = a.groups().iter().map(|g| g.target).collect();
        assert_eq!(ta, vec![1, 2]);
        // Reversed rank: target 2 first.
        let b = Bucket::build(raw, &[2, 1, 0]);
        let tb: Vec<u32> = b.groups().iter().map(|g| g.target).collect();
        assert_eq!(tb, vec![2, 1]);
        // Per-target arc order (by from, then id) is identical.
        for g in a.groups() {
            let gb = b
                .groups()
                .iter()
                .find(|h| h.target == g.target)
                .expect("same targets");
            let arcs_a: Vec<(u32, u32)> = a.arcs()[g.start as usize..g.end as usize]
                .iter()
                .map(|r| (a.sources()[r.slot as usize], r.id))
                .collect();
            let arcs_b: Vec<(u32, u32)> = b.arcs()[gb.start as usize..gb.end as usize]
                .iter()
                .map(|r| (b.sources()[r.slot as usize], r.id))
                .collect();
            assert_eq!(arcs_a, arcs_b);
        }
    }

    #[test]
    fn classify_levels() {
        let d_g = 3;
        assert_eq!(classify(2, 2, d_g), Some(6));
        assert_eq!(classify(2, 1, d_g), Some(7));
        assert_eq!(classify(2, 3, d_g), Some(8));
        assert_eq!(classify(u32::MAX, 1, d_g), None);
        assert_eq!(classify(0, u32::MAX, d_g), None);
    }

    #[test]
    fn trivial_schedule_runs() {
        // Path 0→1→2 with all vertices level 0 (degenerate tree of height 0
        // can't arise, but the schedule must still behave).
        let base = vec![
            Edge::new(0usize, 1usize, 1.0f64),
            Edge::new(1, 2, 2.0),
        ];
        let levels = vec![0u32, 0, 0];
        let sched = Schedule::<Tropical>::compile(3, &base, &[], &levels, 0, 2, &idrank(3));
        let (dist, relax) = sched.run_seq(0);
        assert_eq!(dist, vec![0.0, 1.0, 3.0]);
        assert!(relax > 0);
    }

    #[test]
    fn parents_and_trace_agree_with_plain_run() {
        let base = vec![
            Edge::new(0usize, 1usize, 1.0f64),
            Edge::new(1, 2, 2.0),
            Edge::new(0, 2, 10.0),
        ];
        let levels = vec![0u32, 0, 0];
        let sched = Schedule::<Tropical>::compile(3, &base, &[], &levels, 0, 3, &idrank(3));
        let (d0, _) = sched.run_seq(0);
        let (d1, parents) = sched.run_seq_parents(0);
        let (d2, p2, phase_of, bucket_of) = sched.run_seq_trace(0);
        assert_eq!(d0, d1);
        assert_eq!(d1, d2);
        assert_eq!(parents, p2);
        // Vertex 2's best parent is edge id 1 (1→2, total 3 < 10).
        assert_eq!(parents[2], 1);
        assert_eq!(parents[1], 0);
        assert_eq!(parents[0], u32::MAX);
        // Phases recorded and within the sequence.
        assert!(phase_of[2] != u32::MAX);
        assert!(phase_of[1] <= phase_of[2]);
        assert!(bucket_of[2] != u32::MAX);
    }

    #[test]
    fn schedule_sequence_order_is_bitonic() {
        // With d_g = 1 and l = 1 the nominal sequence is:
        // E | Same(1) Down(1) Same(0) | Up(0) Same(1) | E.
        let base = vec![Edge::new(0usize, 1usize, 1.0f64)];
        let eplus = vec![
            Edge::new(0usize, 1usize, 5.0f64), // levels 1→0: Down(1)
            Edge::new(1, 0, 5.0),              // 0→1: Up(0)
        ];
        let levels = vec![1u32, 0];
        let sched = Schedule::<Tropical>::compile(2, &base, &eplus, &levels, 1, 1, &idrank(2));
        assert_eq!(sched.total_phases(), 2 + 4 + 1);
        // Compiled sequence drops empty buckets; check relative order:
        // E(=6), Down(1)(=4), Up(0)(=2), E(=6).
        assert_eq!(sched.sequence(), &[6, 4, 2, 6]);
    }
}
