//! Right shortcuts (proof of Theorem 3.1) — and the regeneration of the
//! paper's **Figure 2**, "a path with level labels and corresponding right
//! shortcuts".
//!
//! Given the level sequence of a path `p = (v_{i1}, …, v_{i2})` whose
//! endpoints have defined levels, every index `j < i2` is assigned a
//! *right shortcut* `k > j` such that the subpath `p_{jk}` has a shortcut
//! edge in `E ∪ E⁺` (Prop. 3.2). Following right shortcuts from `i1`
//! yields a replacement path whose level sequence is **bitonic**
//! (nonincreasing then nondecreasing, ≤ 2 consecutive equal levels) of
//! size ≤ `4·d_G + 1` — the engine room of the diameter bound.

/// Level of a vertex, `u32::MAX` = undefined (treated as `+∞`).
pub type Level = u32;

/// Compute the right shortcut of index `j` within `levels` (the proof's
/// three rules). Levels at or after `j` only are inspected. Returns `None`
/// if `j` is the last index.
pub fn right_shortcut(levels: &[Level], j: usize) -> Option<usize> {
    let r = levels.len();
    if j + 1 >= r {
        return None;
    }
    let lj = levels[j];
    // Rule i: the farthest k > j with level(k) == level(j) and no
    // intermediate (inclusive) level below level(j).
    let mut k_same: Option<usize> = None;
    for (i, &li) in levels.iter().enumerate().take(r).skip(j + 1) {
        if li < lj {
            break;
        }
        if li == lj {
            k_same = Some(i);
        }
    }
    if let Some(k) = k_same {
        return Some(k);
    }
    // Rule ii: the first k > j with level(k) < level(j).
    if let Some(k) = (j + 1..r).find(|&i| levels[i] < lj) {
        return Some(k);
    }
    // Rule iii: all later levels are > level(j); take the farthest k such
    // that every strictly-intermediate level exceeds level(k).
    let mut best = j + 1;
    for k in j + 1..r {
        if (j + 1..k).all(|i| levels[i] > levels[k]) {
            best = k;
        }
    }
    Some(best)
}

/// Follow right shortcuts from index `0` to the last index, returning the
/// visited index chain (including both endpoints).
///
/// # Panics
/// Panics if any level in `levels` is undefined (`u32::MAX`) — the chain
/// is only defined on the all-defined middle section of a path.
pub fn shortcut_chain(levels: &[Level]) -> Vec<usize> {
    assert!(
        levels.iter().all(|&l| l != u32::MAX),
        "shortcut chains require defined levels"
    );
    let mut chain = vec![0usize];
    let mut cur = 0usize;
    let mut guard = 0usize;
    while cur + 1 < levels.len() {
        let Some(next) = right_shortcut(levels, cur) else {
            unreachable!("right_shortcut is defined everywhere but the end")
        };
        assert!(next > cur, "right shortcut must advance");
        chain.push(next);
        cur = next;
        guard += 1;
        assert!(guard <= levels.len(), "chain failed to terminate");
    }
    chain
}

/// Check the bitonicity property the proof asserts: along `seq`, levels
/// are nonincreasing then nondecreasing, with at most two consecutive
/// equal values.
pub fn is_bitonic(seq: &[Level]) -> bool {
    let mut phase_up = false;
    let mut run = 1usize;
    for w in seq.windows(2) {
        match w[1].cmp(&w[0]) {
            std::cmp::Ordering::Equal => {
                run += 1;
                if run > 2 {
                    return false;
                }
            }
            std::cmp::Ordering::Less => {
                if phase_up {
                    return false;
                }
                run = 1;
            }
            std::cmp::Ordering::Greater => {
                phase_up = true;
                run = 1;
            }
        }
    }
    true
}

/// Relaxed bitonicity: nonincreasing then nondecreasing, with no limit
/// on equal runs. The parent paths extracted from the scheduled engine
/// satisfy this on their defined-level interior (one hop per phase), but
/// may merge equal levels differently than the proof's canonical chain.
pub fn is_bitonic_relaxed(seq: &[Level]) -> bool {
    let mut phase_up = false;
    for w in seq.windows(2) {
        match w[1].cmp(&w[0]) {
            std::cmp::Ordering::Equal => {}
            std::cmp::Ordering::Less => {
                if phase_up {
                    return false;
                }
            }
            std::cmp::Ordering::Greater => {
                phase_up = true;
            }
        }
    }
    true
}

/// Render a Figure-2-style text diagram: the path's level labels and the
/// right-shortcut chain drawn beneath.
pub fn render_figure2(levels: &[Level]) -> String {
    use std::fmt::Write;
    let chain = shortcut_chain(levels);
    let mut out = String::new();
    // Writes into a String are infallible.
    let _ = write!(out, "levels: ");
    for &l in levels {
        let _ = write!(out, "{l:>3}");
    }
    out.push('\n');
    let _ = write!(out, "chain : ");
    let mut pos = 0usize;
    for (idx, &l) in levels.iter().enumerate() {
        let _ = l;
        if chain.contains(&idx) {
            let _ = write!(out, "{:>3}", "*");
            pos += 1;
        } else {
            let _ = write!(out, "{:>3}", ".");
        }
    }
    let _ = pos;
    out.push('\n');
    let _ = writeln!(
        out,
        "chain indices: {:?} (size {} ≤ 4·d_G + 1)",
        chain,
        chain.len() - 1
    );
    let _ = writeln!(
        out,
        "chain levels : {:?} bitonic={}",
        chain.iter().map(|&i| levels[i]).collect::<Vec<_>>(),
        is_bitonic(&chain.iter().map(|&i| levels[i]).collect::<Vec<_>>())
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_i_farthest_same_level() {
        // levels: 2 3 2 4 2 1 — from index 0 (level 2), rule i can reach
        // index 4 (the last level-2 with no dip below 2 in between).
        let levels = vec![2, 3, 2, 4, 2, 1];
        assert_eq!(right_shortcut(&levels, 0), Some(4));
    }

    #[test]
    fn rule_ii_first_lower() {
        // levels: 2 3 4 1 — no same-level reachable, first lower at 3.
        let levels = vec![2, 3, 4, 1];
        assert_eq!(right_shortcut(&levels, 0), Some(3));
    }

    #[test]
    fn rule_ii_stops_at_dip_before_same_level() {
        // levels: 2 1 2 — the later 2 is NOT reachable by rule i (dip at
        // index 1); rule ii goes to the dip.
        let levels = vec![2, 1, 2];
        assert_eq!(right_shortcut(&levels, 0), Some(1));
    }

    #[test]
    fn rule_iii_all_above() {
        // levels: 1 3 2 4 — everything after 0 is above level 1; the
        // farthest k with intermediates strictly above level(k): k=2
        // (level 2, intermediate level 3 > 2). k=3 fails (level 4;
        // intermediate 2 < 4... wait 2 < 4 so k=3 not allowed).
        let levels = vec![1, 3, 2, 4];
        assert_eq!(right_shortcut(&levels, 0), Some(2));
    }

    #[test]
    fn chain_is_bitonic_and_short() {
        let levels = vec![3, 5, 4, 4, 6, 2, 2, 7, 1, 3, 3, 5, 4, 6];
        let chain = shortcut_chain(&levels);
        assert_eq!(*chain.first().unwrap(), 0);
        assert_eq!(*chain.last().unwrap(), levels.len() - 1);
        let chain_levels: Vec<u32> = chain.iter().map(|&i| levels[i]).collect();
        assert!(is_bitonic(&chain_levels), "{chain_levels:?}");
        let d_g = *levels.iter().max().unwrap() as usize;
        assert!(chain.len() - 1 <= 4 * d_g + 1);
    }

    #[test]
    fn bitonic_checker() {
        assert!(is_bitonic(&[5, 3, 3, 1, 2, 2, 4]));
        assert!(!is_bitonic(&[5, 3, 4, 2])); // down-up-down
        assert!(!is_bitonic(&[3, 3, 3])); // triple run
        assert!(is_bitonic(&[1]));
        assert!(is_bitonic(&[2, 2]));
    }

    #[test]
    fn figure2_renders() {
        let levels = vec![2, 3, 2, 1, 1, 2];
        let text = render_figure2(&levels);
        assert!(text.contains("levels:"));
        assert!(text.contains("bitonic=true"));
    }

    /// Exhaustive small-case check: every level sequence of length ≤ 7
    /// over {0,1,2} yields a terminating, bitonic, short chain.
    #[test]
    fn exhaustive_small_sequences() {
        for len in 1..=7usize {
            let total = 3usize.pow(len as u32);
            for code in 0..total {
                let mut levels = Vec::with_capacity(len);
                let mut c = code;
                for _ in 0..len {
                    levels.push((c % 3) as u32);
                    c /= 3;
                }
                let chain = shortcut_chain(&levels);
                let chain_levels: Vec<u32> = chain.iter().map(|&i| levels[i]).collect();
                assert!(
                    is_bitonic(&chain_levels),
                    "levels {levels:?} chain {chain_levels:?}"
                );
                // d_G ≥ max level; the proof bound is 4 d_G + 1.
                let d_g = *levels.iter().max().unwrap() as usize;
                assert!(
                    chain.len() - 1 <= 4 * d_g.max(1) + 1,
                    "levels {levels:?} chain len {}",
                    chain.len()
                );
            }
        }
    }
}
