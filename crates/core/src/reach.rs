//! Reachability specialization with word-parallel boolean matrices.
//!
//! Sections 4–5 of the paper: "If the algorithm is used for reachability
//! or transitive closure computations, we can perform step ii … using
//! `M(|S(t)|) log |S(t)|` work" — i.e. every dense shortest-path kernel
//! becomes a boolean matrix product. The asymptotically-fast `M(r)` of
//! Coppersmith–Winograd is galactic; the practical realization is the
//! 64-bit-blocked [`BitMatrix`] (see DESIGN.md's substitution table).
//! The resulting `E⁺` plugs into the same scheduled query engine under
//! the [`Boolean`] semiring.
//!
//! The generic path (`preprocess::<Boolean>`) computes the identical set;
//! this module is the fast variant benchmarked in experiment E8.

use crate::augment::{dedupe_eplus, interfaces, AugmentStats, Augmentation, Interface};
use crate::query::Preprocessed;
use rayon::prelude::*;
use spsep_graph::semiring::Boolean;
use spsep_graph::{BitMatrix, DiGraph, Edge};
use spsep_pram::{Counter, Metrics, PhaseRecord};
use spsep_separator::SepTree;
use std::time::Instant;

/// Estimated word-ops of a boolean `r×k · k×c` product.
fn matmul_ops(r: usize, k: usize, c: usize) -> u64 {
    (r as u64) * (k as u64) * (c as u64).div_ceil(64).max(1)
}

/// Compute the boolean `E⁺` (reachability shortcuts) with the leaves-up
/// strategy, using [`BitMatrix`] kernels in place of Floyd–Warshall.
pub fn augment_reach_leaves_up(
    g: &DiGraph<bool>,
    tree: &SepTree,
    metrics: &Metrics,
) -> Augmentation<Boolean> {
    assert_eq!(g.n(), tree.n());
    let ifaces = interfaces(tree);
    let mut mats: Vec<Option<BitMatrix>> = (0..tree.nodes().len()).map(|_| None).collect();
    let mut eplus: Vec<Edge<bool>> = Vec::new();
    let mut raw_pairs = 0usize;

    // `BitMatrix` rows pack 64 columns per word.
    let bit_bytes = |m: &BitMatrix| (m.rows() * m.cols().div_ceil(64) * 8) as u64;
    let mut live_bytes = 0u64;

    for depth in (0..=tree.height()).rev() {
        let range = tree.nodes_at_level(depth);
        if range.is_empty() {
            continue;
        }
        let width = range.len();
        let mut level_span = spsep_trace::span!("reach.level", level = depth, width = width);
        let level_start = Instant::now();
        let work_before = metrics.total_work();
        metrics.phase(width);
        type NodeOut = (u32, BitMatrix, Vec<Edge<bool>>, usize, u64);
        let outputs: Vec<NodeOut> = range
            .clone()
            .into_par_iter()
            .map(|id| {
                let node = tree.node(id);
                let iface = &ifaces[id as usize];
                let (mat, ops) = if node.is_leaf() {
                    leaf_closure(g, &node.vertices, iface)
                } else {
                    let Some((c1, c2)) = node.children else {
                        unreachable!("non-leaf node has children")
                    };
                    let (Some(m1), Some(m2)) =
                        (mats[c1 as usize].as_ref(), mats[c2 as usize].as_ref())
                    else {
                        unreachable!("children processed before parent (BFS order)")
                    };
                    internal_closure(iface, &ifaces[c1 as usize], m1, &ifaces[c2 as usize], m2)
                };
                let (edges, raw) = emit_bool(iface, &mat);
                (id, mat, edges, raw, ops)
            })
            .collect();
        let mut level_peak = live_bytes;
        for (id, mat, edges, raw, ops) in outputs {
            metrics.work(Counter::MatMul, ops);
            raw_pairs += raw;
            eplus.extend(edges);
            live_bytes += bit_bytes(&mat);
            mats[id as usize] = Some(mat);
            level_peak = level_peak.max(live_bytes);
            if let Some((c1, c2)) = tree.node(id).children {
                for c in [c1, c2] {
                    if let Some(cm) = mats[c as usize].take() {
                        live_bytes -= bit_bytes(&cm);
                    }
                }
            }
        }
        let level_ops = metrics.total_work() - work_before;
        level_span.add_ops(level_ops);
        level_span.add_bytes(level_peak);
        drop(level_span);
        metrics.record_phase(PhaseRecord {
            label: format!("reach/level {depth}"),
            width,
            wall_ns: level_start.elapsed().as_nanos() as u64,
            ops: level_ops,
            peak_bytes: level_peak,
        });
    }

    let eplus = dedupe_eplus::<Boolean>(eplus);
    let stats = AugmentStats {
        eplus_edges: eplus.len(),
        raw_pairs,
        d_g: tree.height(),
        leaf_bound: tree.max_leaf_size().saturating_sub(1),
    };
    Augmentation { eplus, stats }
}

/// Full reachability preprocessing: boolean `E⁺` plus the compiled query
/// schedule under the [`Boolean`] semiring.
pub fn preprocess_reach(
    g: &DiGraph<bool>,
    tree: &SepTree,
    metrics: &Metrics,
) -> Preprocessed<Boolean> {
    let _span = spsep_trace::span!("preprocess_reach", n = g.n());
    let augmentation = {
        let _span = spsep_trace::span!("preprocess.augment");
        augment_reach_leaves_up(g, tree, metrics)
    };
    let _compile_span = spsep_trace::span!("preprocess.compile");
    Preprocessed::compile(g, tree, augmentation)
}

/// Full (reflexive) transitive closure as a [`BitMatrix`]: one scheduled
/// query per source, sources in parallel — the paper's "transitive
/// closure" output form with `Õ(M(n^μ))` preprocessing already paid by
/// `pre`.
pub fn transitive_closure(pre: &Preprocessed<Boolean>) -> BitMatrix {
    let n = pre.n();
    let rows: Vec<Vec<bool>> = (0..n)
        .into_par_iter()
        .map(|s| pre.distances_seq(s).0)
        .collect();
    let mut out = BitMatrix::zeros(n, n);
    for (s, row) in rows.into_iter().enumerate() {
        out.set(s, s, true);
        for (v, r) in row.into_iter().enumerate() {
            if r {
                out.set(s, v, true);
            }
        }
    }
    out
}

/// Reflexive closure of a leaf's induced subgraph, projected to its
/// interface.
fn leaf_closure(g: &DiGraph<bool>, vertices: &[u32], iface: &Interface) -> (BitMatrix, u64) {
    let k = vertices.len();
    let mut adj = BitMatrix::zeros(k, k);
    for (li, &v) in vertices.iter().enumerate() {
        for e in g.out_edges(v as usize) {
            if e.w {
                if let Ok(lj) = vertices.binary_search(&e.to) {
                    adj.set(li, lj, true);
                }
            }
        }
    }
    let closure = adj.transitive_closure();
    let m = iface.len();
    let mut mat = BitMatrix::zeros(m, m);
    for (a, &va) in iface.verts.iter().enumerate() {
        let ia = vertices
            .binary_search(&va)
            .unwrap_or_else(|_| unreachable!("iface ⊆ V(leaf)"));
        for (b, &vb) in iface.verts.iter().enumerate() {
            let ib = vertices
                .binary_search(&vb)
                .unwrap_or_else(|_| unreachable!("iface ⊆ V(leaf)"));
            if closure.get(ia, ib) {
                mat.set(a, b, true);
            }
        }
    }
    let log_k = (usize::BITS - k.max(1).leading_zeros()) as u64;
    (mat, matmul_ops(k, k, k) * log_k)
}

/// Steps i–v of Algorithm 4.1 under the boolean algebra, with
/// word-parallel products.
fn internal_closure(
    iface: &Interface,
    ci1: &Interface,
    m1: &BitMatrix,
    ci2: &Interface,
    m2: &BitMatrix,
) -> (BitMatrix, u64) {
    let ns = iface.sep_pos.len();
    let nb = iface.bnd_pos.len();
    let sep_verts: Vec<u32> = iface.sep_pos.iter().map(|&p| iface.verts[p as usize]).collect();
    let bnd_verts: Vec<u32> = iface.bnd_pos.iter().map(|&p| iface.verts[p as usize]).collect();
    let reach = |u: u32, v: u32| -> bool {
        let via = |ci: &Interface, m: &BitMatrix| -> bool {
            match (ci.local(u), ci.local(v)) {
                (Some(a), Some(b)) => m.get(a, b),
                _ => false,
            }
        };
        via(ci1, m1) || via(ci2, m2)
    };

    // H_S closure.
    let mut hs = BitMatrix::zeros(ns, ns);
    for (a, &u) in sep_verts.iter().enumerate() {
        for (b, &v) in sep_verts.iter().enumerate() {
            if reach(u, v) {
                hs.set(a, b, true);
            }
        }
    }
    let hs = hs.transitive_closure();

    // Rectangular blocks.
    let mut r = BitMatrix::zeros(nb, ns);
    let mut c = BitMatrix::zeros(ns, nb);
    let mut direct = BitMatrix::zeros(nb, nb);
    for (bi, &bv) in bnd_verts.iter().enumerate() {
        for (si, &sv) in sep_verts.iter().enumerate() {
            if reach(bv, sv) {
                r.set(bi, si, true);
            }
            if reach(sv, bv) {
                c.set(si, bi, true);
            }
        }
        for (bj, &bw) in bnd_verts.iter().enumerate() {
            if bi == bj || reach(bv, bw) {
                direct.set(bi, bj, true);
            }
        }
    }
    let t = r.multiply(&hs);
    let mut out_bb = t.multiply(&c);
    out_bb.or_assign(&direct);

    // Assemble the interface matrix.
    let m = iface.len();
    let mut mat = BitMatrix::identity(m);
    for (a, &pa) in iface.sep_pos.iter().enumerate() {
        for (b, &pb) in iface.sep_pos.iter().enumerate() {
            if hs.get(a, b) {
                mat.set(pa as usize, pb as usize, true);
            }
        }
    }
    for (a, &pa) in iface.bnd_pos.iter().enumerate() {
        for (b, &pb) in iface.bnd_pos.iter().enumerate() {
            if out_bb.get(a, b) {
                mat.set(pa as usize, pb as usize, true);
            }
        }
    }
    let log_s = (usize::BITS - ns.max(1).leading_zeros()) as u64;
    let ops = matmul_ops(ns, ns, ns) * log_s
        + matmul_ops(nb, ns, ns)
        + matmul_ops(nb, ns, nb);
    (mat, ops)
}

/// Emit the `S×S ∪ B×B` true entries as boolean shortcut edges.
fn emit_bool(iface: &Interface, mat: &BitMatrix) -> (Vec<Edge<bool>>, usize) {
    let mut edges = Vec::new();
    let mut raw = 0usize;
    let mut emit_set = |pos: &[u32]| {
        for &a in pos {
            for &b in pos {
                if a == b {
                    continue;
                }
                raw += 1;
                if mat.get(a as usize, b as usize) {
                    edges.push(Edge {
                        from: iface.verts[a as usize],
                        to: iface.verts[b as usize],
                        w: true,
                    });
                }
            }
        }
    };
    emit_set(&iface.sep_pos);
    emit_set(&iface.bnd_pos);
    (edges, raw)
}
