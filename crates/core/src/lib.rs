//! The paper's contribution: parallel shortest paths in digraphs with a
//! separator decomposition (Cohen, SPAA'93 / J. Algorithms 1996).
//!
//! # Pipeline
//!
//! 1. Build (or receive) a separator decomposition tree
//!    ([`spsep_separator::SepTree`]) of the undirected skeleton.
//! 2. **Preprocess** ([`preprocess`]): compute the augmentation set `E⁺`
//!    (Section 3) with either [`Algorithm::LeavesUp`] (Algorithm 4.1) or
//!    [`Algorithm::PathDoubling`] (Algorithm 4.3), then compile the
//!    Section 3.2 phase schedule. By Theorem 3.1, distances in
//!    `G⁺ = (V, E ∪ E⁺)` equal distances in `G` and every distance is
//!    realized by a path of `≤ 4·d_G + 2l + 1` edges whose level sequence
//!    is bitonic.
//! 3. **Query** ([`Preprocessed::distances`] /
//!    [`Preprocessed::distances_multi`]): scheduled Bellman–Ford, scanning
//!    each edge class only in the phases the bitonic structure needs —
//!    `O(l·|E| + |E ∪ E⁺|)` work per source instead of
//!    `O(|E ∪ E⁺|·d_G)`.
//! 4. Optionally recover shortest-path **trees** over the original edges
//!    ([`query::shortest_path_tree`]) — paper comment (ii).
//!
//! Everything is generic over an idempotent [`spsep_graph::Semiring`]
//! (paper comment (iii)); negative cycles (absorbing cycles) are detected
//! during preprocessing (paper comment (i)) and reported as
//! [`AbsorbingCycle`].
//!
//! The [`reach`] module specializes reachability with word-parallel
//! boolean matrices, the practical stand-in for the paper's
//! fast-matrix-multiplication bounds.

pub mod alg41;
pub mod alg43;
pub mod alg44;
pub mod analysis;
pub mod augment;
pub mod explain;
pub mod io;
pub mod query;
pub mod reach;
pub mod schedule;
pub mod shortcuts;

pub use augment::{AugmentStats, Augmentation};
pub use query::{Preprocessed, QueryStats};

use spsep_graph::{DiGraph, Semiring};
use spsep_pram::Metrics;
use spsep_separator::SepTree;

/// The input contains an absorbing cycle (a negative cycle under the
/// tropical semiring): the requested distances are undefined.
///
/// Detection happens during preprocessing, on the diagonal of the dense
/// per-node computations — paper comment (i). To obtain an explicit
/// witness cycle, run `spsep_baselines::find_negative_cycle` on the same
/// graph.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AbsorbingCycle;

impl std::fmt::Display for AbsorbingCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph contains an absorbing (negative) cycle")
    }
}

impl std::error::Error for AbsorbingCycle {}

/// Which `E⁺` construction to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Algorithm 4.1: leaves-up, one tree level per phase, Floyd–Warshall
    /// per node. `O(d_G log² n)` time, the lower-work option.
    #[default]
    LeavesUp,
    /// Algorithm 4.3: all nodes path-double simultaneously for
    /// `2⌈log n⌉ + 2 d_G` rounds. `O(d_G log n)` time, a log factor more
    /// work.
    PathDoubling,
    /// Remark 4.4: path doubling over a **shared** edge/pairing table —
    /// each co-residence triple is paired once per round instead of once
    /// per containing node. Shortcut weights may improve on the other
    /// variants (see [`alg44`]).
    SharedDoubling,
}

/// Full preprocessing: compute `E⁺` with `algo`, then compile the query
/// schedule. Work and depth are charged to `metrics`.
///
/// ```
/// use spsep_core::{preprocess, Algorithm};
/// use spsep_graph::semiring::Tropical;
/// use spsep_pram::Metrics;
/// use spsep_separator::{builders, RecursionLimits};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let (g, _) = spsep_graph::generators::grid(&[8, 8], &mut rng);
/// let tree = builders::grid_tree(&[8, 8], RecursionLimits::default());
///
/// let metrics = Metrics::new();
/// let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics)?;
/// let (dist, stats) = pre.distances_seq(0);
/// assert_eq!(dist[0], 0.0);
/// assert!(dist[63].is_finite());
/// assert!(stats.relaxations > 0);
/// # Ok::<(), spsep_core::AbsorbingCycle>(())
/// ```
pub fn preprocess<S: Semiring>(
    g: &DiGraph<S::W>,
    tree: &SepTree,
    algo: Algorithm,
    metrics: &Metrics,
) -> Result<Preprocessed<S>, AbsorbingCycle> {
    let augmentation = match algo {
        Algorithm::LeavesUp => alg41::augment_leaves_up::<S>(g, tree, metrics)?,
        Algorithm::PathDoubling => alg43::augment_path_doubling::<S>(g, tree, metrics)?,
        Algorithm::SharedDoubling => alg44::augment_shared_doubling::<S>(g, tree, metrics)?,
    };
    Ok(Preprocessed::compile(g, tree, augmentation))
}
