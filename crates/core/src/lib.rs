//! The paper's contribution: parallel shortest paths in digraphs with a
//! separator decomposition (Cohen, SPAA'93 / J. Algorithms 1996).
//!
//! # Pipeline
//!
//! 1. Build (or receive) a separator decomposition tree
//!    ([`spsep_separator::SepTree`]) of the undirected skeleton.
//! 2. **Preprocess** ([`preprocess`]): compute the augmentation set `E⁺`
//!    (Section 3) with either [`Algorithm::LeavesUp`] (Algorithm 4.1) or
//!    [`Algorithm::PathDoubling`] (Algorithm 4.3), then compile the
//!    Section 3.2 phase schedule. By Theorem 3.1, distances in
//!    `G⁺ = (V, E ∪ E⁺)` equal distances in `G` and every distance is
//!    realized by a path of `≤ 4·d_G + 2l + 1` edges whose level sequence
//!    is bitonic.
//! 3. **Query** ([`Preprocessed::distances`] /
//!    [`Preprocessed::distances_multi`]): scheduled Bellman–Ford, scanning
//!    each edge class only in the phases the bitonic structure needs —
//!    `O(l·|E| + |E ∪ E⁺|)` work per source instead of
//!    `O(|E ∪ E⁺|·d_G)`.
//! 4. Optionally recover shortest-path **trees** over the original edges
//!    ([`query::shortest_path_tree`]) — paper comment (ii).
//!
//! Everything is generic over an idempotent [`spsep_graph::Semiring`]
//! (paper comment (iii)); negative cycles (absorbing cycles) are detected
//! during preprocessing (paper comment (i)) and reported as
//! [`SpsepError::AbsorbingCycle`] with an explicit witness cycle.
//! Malformed inputs are caught up front by [`validate_instance`], and
//! [`fallback::preprocess_or_fallback`] degrades gracefully to the
//! baseline solvers instead of failing outright.
//!
//! The [`reach`] module specializes reachability with word-parallel
//! boolean matrices, the practical stand-in for the paper's
//! fast-matrix-multiplication bounds.

// Library code must stay panic-free on untrusted input: unwraps and
// expects are confined to #[cfg(test)] code (internal invariants use
// let-else + unreachable!, which documents *why* they cannot fire).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
// Every public item must explain itself — the crate is the paper's
// reference implementation and doubles as its documentation.
#![warn(missing_docs)]

pub mod alg41;
pub mod alg43;
pub mod alg44;
pub mod analysis;
pub mod augment;
pub mod error;
pub mod explain;
pub mod fallback;
pub mod io;
pub mod iov2;
pub mod oracle;
pub mod query;
pub mod reach;
pub mod schedule;
pub mod shortcuts;
pub mod workspace;

pub use augment::{AugmentStats, Augmentation};
pub use error::SpsepError;
pub use fallback::{preprocess_or_fallback, FallbackPolicy, FallbackReason, Prepared};
pub use oracle::{CacheStats, Oracle, ShardCacheStats};
pub use query::{Preprocessed, QueryStats};

use spsep_graph::{DiGraph, Semiring};
use spsep_pram::Metrics;
use spsep_separator::SepTree;

/// The input contains an absorbing cycle (a negative cycle under the
/// tropical semiring): the requested distances are undefined.
///
/// Detection happens during preprocessing, on the diagonal of the dense
/// per-node computations — paper comment (i). This flag-only type is
/// what the augmentation algorithms ([`alg41`], [`alg43`], [`alg44`])
/// return; [`preprocess`] upgrades it to
/// [`SpsepError::AbsorbingCycle`] with an explicit witness cycle
/// recovered by `spsep_baselines::find_absorbing_cycle_semiring`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AbsorbingCycle;

impl std::fmt::Display for AbsorbingCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph contains an absorbing (negative) cycle")
    }
}

impl std::error::Error for AbsorbingCycle {}

/// Which `E⁺` construction to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Algorithm 4.1: leaves-up, one tree level per phase, Floyd–Warshall
    /// per node. `O(d_G log² n)` time, the lower-work option.
    #[default]
    LeavesUp,
    /// Algorithm 4.3: all nodes path-double simultaneously for
    /// `2⌈log n⌉ + 2 d_G` rounds. `O(d_G log n)` time, a log factor more
    /// work.
    PathDoubling,
    /// Remark 4.4: path doubling over a **shared** edge/pairing table —
    /// each co-residence triple is paired once per round instead of once
    /// per containing node. Shortcut weights may improve on the other
    /// variants (see [`alg44`]).
    SharedDoubling,
}

/// Cheap pre-flight validation of a `(graph, decomposition)` pair — the
/// checks every pipeline entry point should run before trusting a tree
/// that arrived from disk or from an untrusted builder.
///
/// Verifies, in `O(n + m + #nodes)`:
///
/// 1. the tree was built for a graph of the same size;
/// 2. every vertex is owned by some node (a leaf containing it or a
///    separator, cf. [`SepTree::vertex_node`]);
/// 3. the Prop. 2.1 separation invariant per *edge*: for `(u, v) ∈ E`
///    the owner node of one endpoint must be an ancestor of (or equal
///    to) the owner of the other — otherwise the edge crosses a
///    separator without touching it and scheduled queries would return
///    wrong distances.
///
/// This is deliberately cheaper than [`SepTree::validate`], which also
/// re-checks the internal `V(t)`/`B(t)` set algebra against the full
/// undirected skeleton; `validate_instance` only needs the directed
/// edge list and the maps the tree already carries. Violations are
/// reported as [`SpsepError::InvalidDecomposition`] with the offending
/// vertex attached.
pub fn validate_instance<W: Copy>(g: &DiGraph<W>, tree: &SepTree) -> Result<(), SpsepError> {
    if g.n() != tree.n() {
        return Err(SpsepError::invalid_decomposition(format!(
            "graph has {} vertices but the decomposition covers {}",
            g.n(),
            tree.n()
        )));
    }
    let nodes = tree.nodes();
    // Structural sanity of the node tree itself: bidirectional
    // parent/child links and BFS levels (level(child) = level(parent)+1,
    // root at 0). A level-shuffled or re-parented tree would silently
    // corrupt the phase schedule, which classifies edges by level.
    for (i, t) in nodes.iter().enumerate() {
        match t.parent {
            None => {
                if t.level != 0 {
                    return Err(SpsepError::invalid_node(
                        i as u32,
                        "root node must be at level 0",
                    ));
                }
            }
            Some(p) => {
                let pn = &nodes[p as usize];
                if pn
                    .children
                    .is_none_or(|(a, b)| a as usize != i && b as usize != i)
                {
                    return Err(SpsepError::invalid_node(
                        i as u32,
                        "parent does not list this node as a child",
                    ));
                }
                if t.level != pn.level + 1 {
                    return Err(SpsepError::invalid_node(
                        i as u32,
                        format!(
                            "level {} inconsistent with parent level {}",
                            t.level, pn.level
                        ),
                    ));
                }
            }
        }
    }
    // Euler tour over the node tree: `a` is an ancestor of `b` iff
    // `tin[a] <= tin[b] && tout[b] <= tout[a]`.
    let mut tin = vec![u32::MAX; nodes.len()];
    let mut tout = vec![0u32; nodes.len()];
    let mut clock = 0u32;
    let mut stack: Vec<(u32, bool)> = vec![(tree.root(), false)];
    while let Some((id, done)) = stack.pop() {
        if done {
            tout[id as usize] = clock;
            clock += 1;
            continue;
        }
        tin[id as usize] = clock;
        clock += 1;
        stack.push((id, true));
        if let Some((c1, c2)) = nodes[id as usize].children {
            stack.push((c2, false));
            stack.push((c1, false));
        }
    }
    let owner = |v: u32| -> Result<usize, SpsepError> {
        let t = tree.vertex_node(v as usize);
        if t == u32::MAX || tin[t as usize] == u32::MAX {
            return Err(SpsepError::invalid_vertex(
                v,
                "vertex is in no leaf or separator of the decomposition",
            ));
        }
        Ok(t as usize)
    };
    let ancestor =
        |a: usize, b: usize| -> bool { tin[a] <= tin[b] && tout[b] <= tout[a] };
    for e in g.edges() {
        let (tu, tv) = (owner(e.from)?, owner(e.to)?);
        if !ancestor(tu, tv) && !ancestor(tv, tu) {
            return Err(SpsepError::InvalidDecomposition {
                node: Some(tu as u32),
                vertex: Some(e.from),
                reason: format!(
                    "edge {}→{} crosses the decomposition: neither endpoint's \
                     node is an ancestor of the other (Prop. 2.1 separation \
                     violated)",
                    e.from, e.to
                ),
            });
        }
    }
    Ok(())
}

/// Full preprocessing: validate the instance ([`validate_instance`]),
/// compute `E⁺` with `algo`, then compile the query schedule. Work and
/// depth are charged to `metrics`.
///
/// # Errors
///
/// * [`SpsepError::InvalidDecomposition`] — the tree does not match the
///   graph (size mismatch, uncovered vertex, or a separator-crossing
///   edge); nothing is computed.
/// * [`SpsepError::AbsorbingCycle`] — an absorbing (negative) cycle was
///   detected during augmentation (paper comment (i)); the attached
///   `witness` is an explicit cycle recovered by
///   `spsep_baselines::find_absorbing_cycle_semiring` (it can be empty
///   only if recovery and detection disagree, which would itself be a
///   bug).
/// * [`SpsepError::Executor`] — a worker panicked inside the parallel
///   augmentation phase; the panic is confined by the executor and
///   surfaced here as a typed error ([`run_protected`]).
///
/// ```
/// use spsep_core::{preprocess, Algorithm};
/// use spsep_graph::semiring::Tropical;
/// use spsep_pram::Metrics;
/// use spsep_separator::{builders, RecursionLimits};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let (g, _) = spsep_graph::generators::grid(&[8, 8], &mut rng);
/// let tree = builders::grid_tree(&[8, 8], RecursionLimits::default());
///
/// let metrics = Metrics::new();
/// let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics)?;
/// let (dist, stats) = pre.distances_seq(0);
/// assert_eq!(dist[0], 0.0);
/// assert!(dist[63].is_finite());
/// assert!(stats.relaxations > 0);
/// # Ok::<(), spsep_core::SpsepError>(())
/// ```
pub fn preprocess<S: Semiring>(
    g: &DiGraph<S::W>,
    tree: &SepTree,
    algo: Algorithm,
    metrics: &Metrics,
) -> Result<Preprocessed<S>, SpsepError> {
    let _span = spsep_trace::span!("preprocess", algo = format!("{algo:?}"), n = g.n());
    {
        let _span = spsep_trace::span!("preprocess.validate");
        validate_instance(g, tree)?;
    }
    let augmentation = {
        let _span = spsep_trace::span!("preprocess.augment");
        run_protected("preprocess augmentation", || match algo {
            Algorithm::LeavesUp => alg41::augment_leaves_up::<S>(g, tree, metrics),
            Algorithm::PathDoubling => alg43::augment_path_doubling::<S>(g, tree, metrics),
            Algorithm::SharedDoubling => alg44::augment_shared_doubling::<S>(g, tree, metrics),
        })?
        .map_err(|AbsorbingCycle| SpsepError::AbsorbingCycle {
            witness: spsep_baselines::find_absorbing_cycle_semiring::<S>(g).unwrap_or_default(),
        })?
    };
    let _compile_span = spsep_trace::span!("preprocess.compile");
    Ok(Preprocessed::compile(g, tree, augmentation))
}

/// Run `f` — typically a parallel pipeline phase — and convert an
/// escaped panic into [`SpsepError::Executor`] instead of unwinding.
///
/// The executor in the `rayon` shim already confines a worker panic to
/// its chunk and re-raises it exactly once on the calling thread (no
/// poisoned locks, no hung latches); this is the boundary where that
/// re-raised panic becomes a value of the typed error taxonomy. `phase`
/// names the pipeline stage in the error message.
pub fn run_protected<R>(phase: &str, f: impl FnOnce() -> R) -> Result<R, SpsepError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(value) => Ok(value),
        Err(payload) => {
            let SpsepError::Executor { what } = SpsepError::executor_from_payload(payload.as_ref())
            else {
                // executor_from_payload only constructs Executor.
                unreachable!("executor_from_payload returned a non-Executor error")
            };
            Err(SpsepError::Executor {
                what: format!("{phase}: {what}"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spsep_graph::semiring::Tropical;
    use spsep_graph::Edge;
    use spsep_separator::{builders, RecursionLimits};

    fn grid_instance(dims: [usize; 2], seed: u64) -> (DiGraph<f64>, SepTree) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (g, _) = spsep_graph::generators::grid(&dims, &mut rng);
        let tree = builders::grid_tree(&dims, RecursionLimits::default());
        (g, tree)
    }

    #[test]
    fn validate_instance_accepts_valid_pairs() {
        let (g, tree) = grid_instance([9, 7], 1);
        validate_instance(&g, &tree).unwrap();
    }

    #[test]
    fn validate_instance_rejects_size_mismatch() {
        let (g, _) = grid_instance([9, 7], 1);
        let tree = builders::grid_tree(&[5, 5], RecursionLimits::default());
        let err = validate_instance(&g, &tree).unwrap_err();
        assert!(matches!(err, SpsepError::InvalidDecomposition { .. }));
        assert!(err.to_string().contains("63 vertices"));
    }

    #[test]
    fn validate_instance_rejects_separator_crossing_edge() {
        let (g, tree) = grid_instance([9, 9], 2);
        // Splice in an edge between two vertices owned by disjoint
        // subtrees (the grid's opposite corners are never co-resident
        // in a leaf, and neither corner sits in a separator of a 9×9
        // grid tree).
        let mut edges = g.edges().to_vec();
        edges.push(Edge::new(0, g.n() - 1, 1.0));
        let bad = DiGraph::from_edges(g.n(), edges);
        let err = validate_instance(&bad, &tree).unwrap_err();
        assert!(
            matches!(err, SpsepError::InvalidDecomposition { .. }),
            "got {err:?}"
        );
        assert!(err.to_string().contains("Prop. 2.1"));
        // The full validator agrees.
        assert!(tree.validate(&bad.undirected_skeleton()).is_err());
    }

    #[test]
    fn preprocess_rejects_mismatched_tree_before_computing() {
        let (g, _) = grid_instance([9, 7], 3);
        let tree = builders::grid_tree(&[5, 5], RecursionLimits::default());
        let metrics = Metrics::new();
        let Err(err) = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics) else {
            panic!("mismatched tree must be rejected");
        };
        assert!(matches!(err, SpsepError::InvalidDecomposition { .. }));
    }

    #[test]
    fn absorbing_cycle_error_carries_a_real_witness() {
        // A 2×3 grid with one strongly negative back edge inside a leaf
        // region: preprocessing must fail and hand back a closed cycle
        // of negative total weight.
        let (g, tree) = grid_instance([4, 4], 4);
        let mut edges = g.edges().to_vec();
        // Find an existing edge and add its reverse with a large
        // negative weight → guaranteed 2-cycle of negative total.
        let e0 = g.edges()[0];
        edges.push(Edge::new(e0.to as usize, e0.from as usize, -1e6));
        let bad = DiGraph::from_edges(g.n(), edges);
        // The reverse of an existing edge never crosses the
        // decomposition, so pre-flight passes and augmentation runs.
        validate_instance(&bad, &tree).unwrap();
        let metrics = Metrics::new();
        let Err(err) = preprocess::<Tropical>(&bad, &tree, Algorithm::LeavesUp, &metrics)
        else {
            panic!("negative cycle must be rejected");
        };
        let SpsepError::AbsorbingCycle { witness } = &err else {
            panic!("expected AbsorbingCycle, got {err:?}");
        };
        assert!(!witness.is_empty(), "witness must be recovered");
        // Verify the witness is a closed cycle with negative weight.
        let mut total = 0.0;
        for (i, &u) in witness.iter().enumerate() {
            let v = witness[(i + 1) % witness.len()];
            let w = bad
                .out_edges(u as usize)
                .filter(|e| e.to == v)
                .map(|e| e.w)
                .fold(f64::INFINITY, f64::min);
            assert!(w.is_finite(), "witness uses missing edge {u}->{v}");
            total += w;
        }
        assert!(total < 0.0, "witness cycle weight {total} not negative");
    }
}
