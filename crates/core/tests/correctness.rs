//! End-to-end correctness of the paper pipeline: both `E⁺` constructions,
//! the scheduled query engine, Theorem 3.1's diameter bound, path-tree
//! recovery, reachability, and the semiring generalization — all checked
//! against independent baselines.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep_baselines::{bellman_ford, bellman_ford_semiring, dijkstra};
use spsep_core::{analysis, preprocess, query, reach, Algorithm, Preprocessed};
use spsep_graph::semiring::{Bottleneck, MaxPlus, Tropical};
use spsep_graph::{generators, DiGraph};
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits, SepTree};

fn grid_tree_for(dims: &[usize]) -> SepTree {
    builders::grid_tree(dims, RecursionLimits::default())
}

fn assert_dist_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len());
    for (v, (&x, &y)) in a.iter().zip(b).enumerate() {
        if x.is_infinite() || y.is_infinite() {
            assert_eq!(
                x.is_infinite(),
                y.is_infinite(),
                "{what}: vertex {v} reachability mismatch ({x} vs {y})"
            );
        } else {
            assert!(
                (x - y).abs() < 1e-6 * (1.0 + x.abs()),
                "{what}: vertex {v}: {x} vs {y}"
            );
        }
    }
}

/// Both algorithms, every source, against Dijkstra on a 2D grid.
#[test]
fn grid_all_sources_match_dijkstra() {
    let mut rng = StdRng::seed_from_u64(100);
    let (g, _) = generators::grid(&[7, 9], &mut rng);
    let tree = grid_tree_for(&[7, 9]);
    tree.validate(&g.undirected_skeleton()).unwrap();
    for algo in [Algorithm::LeavesUp, Algorithm::PathDoubling] {
        let metrics = Metrics::new();
        let pre = preprocess::<Tropical>(&g, &tree, algo, &metrics).unwrap();
        for s in 0..g.n() {
            let (dist, _) = pre.distances_seq(s);
            let truth = dijkstra(&g, s);
            assert_dist_eq(&dist, &truth.dist, &format!("{algo:?} source {s}"));
        }
        assert!(metrics.total_work() > 0);
        assert!(metrics.depth() > 0);
    }
}

/// The two construction algorithms produce the same deduplicated `E⁺`
/// (both emit exact `dist_{G(t)}` for the same vertex pairs).
#[test]
fn alg41_and_alg43_agree_on_eplus() {
    let mut rng = StdRng::seed_from_u64(101);
    let (g, _) = generators::grid(&[6, 6], &mut rng);
    let tree = grid_tree_for(&[6, 6]);
    let m = Metrics::new();
    let a = spsep_core::alg41::augment_leaves_up::<Tropical>(&g, &tree, &m).unwrap();
    let b = spsep_core::alg43::augment_path_doubling::<Tropical>(&g, &tree, &m).unwrap();
    assert_eq!(a.eplus.len(), b.eplus.len());
    for (ea, eb) in a.eplus.iter().zip(&b.eplus) {
        assert_eq!((ea.from, ea.to), (eb.from, eb.to));
        assert!(
            (ea.w - eb.w).abs() < 1e-9,
            "({},{}) {} vs {}",
            ea.from,
            ea.to,
            ea.w,
            eb.w
        );
    }
}

/// Negative edges (no negative cycles) via potential skewing.
#[test]
fn negative_weights_match_bellman_ford() {
    let mut rng = StdRng::seed_from_u64(102);
    let (g, _) = generators::grid(&[6, 7], &mut rng);
    let g = generators::skew_by_potentials(&g, 5.0, &mut rng);
    assert!(g.edges().iter().any(|e| e.w < 0.0));
    let tree = grid_tree_for(&[6, 7]);
    for algo in [Algorithm::LeavesUp, Algorithm::PathDoubling] {
        let metrics = Metrics::new();
        let pre = preprocess::<Tropical>(&g, &tree, algo, &metrics).unwrap();
        for s in [0usize, 17, 41] {
            let (dist, _) = pre.distances_seq(s);
            let truth = bellman_ford(&g, s).unwrap();
            assert_dist_eq(&dist, &truth.dist, &format!("{algo:?} source {s}"));
        }
    }
}

/// Negative cycles are detected during preprocessing — comment (i).
#[test]
fn negative_cycle_detected_by_both_algorithms() {
    let mut rng = StdRng::seed_from_u64(103);
    let (g, _) = generators::grid(&[5, 5], &mut rng);
    // Make one tiny cycle strongly negative: edges (0→1) and (1→0).
    let g = g.map_weights(|e| {
        if (e.from, e.to) == (0, 1) || (e.from, e.to) == (1, 0) {
            -10.0
        } else {
            e.w
        }
    });
    let tree = grid_tree_for(&[5, 5]);
    for algo in [Algorithm::LeavesUp, Algorithm::PathDoubling] {
        let metrics = Metrics::new();
        assert!(
            preprocess::<Tropical>(&g, &tree, algo, &metrics).is_err(),
            "{algo:?} must detect the negative cycle"
        );
    }
}

/// Theorem 3.1: `diam(G⁺) ≤ 4·d_G + 2l + 1` and distance preservation.
#[test]
fn theorem_3_1_diameter_bound() {
    let mut rng = StdRng::seed_from_u64(104);
    for dims in [&[8usize, 8][..], &[5, 5, 3], &[30]] {
        let (g, _) = generators::grid(dims, &mut rng);
        let tree = grid_tree_for(dims);
        let metrics = Metrics::new();
        let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
        let stats = pre.stats();
        let bound = 4 * stats.d_g as usize + 2 * stats.leaf_bound + 1;
        let diam =
            analysis::min_weight_diameter::<Tropical>(g.n(), pre.augmented_edges()).unwrap();
        assert!(
            diam <= bound,
            "dims {dims:?}: diam(G+) = {diam} > bound {bound} (d_G={}, l={})",
            stats.d_g,
            stats.leaf_bound
        );
        // And the diameter of G itself is much larger on the path case.
        if dims == [30] {
            let diam_g = analysis::min_weight_diameter::<Tropical>(g.n(), g.edges()).unwrap();
            assert!(diam_g >= 29);
            assert!(diam < diam_g);
        }
    }
}

/// The scheduled Bellman–Ford equals exhaustive Bellman–Ford on `G⁺`.
#[test]
fn schedule_equals_unscheduled() {
    let mut rng = StdRng::seed_from_u64(105);
    let (g, _) = generators::grid(&[6, 8], &mut rng);
    let g = generators::skew_by_potentials(&g, 2.0, &mut rng);
    let tree = grid_tree_for(&[6, 8]);
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    for s in [0usize, 13, 47] {
        let (sched, _) = pre.distances_seq(s);
        let (full, _) = pre.distances_unscheduled(s, g.n()).unwrap();
        assert_dist_eq(&sched, &full, &format!("source {s}"));
    }
}

/// Parallel phase execution matches sequential execution.
#[test]
fn parallel_query_matches_sequential() {
    let mut rng = StdRng::seed_from_u64(106);
    let (g, _) = generators::grid(&[9, 9], &mut rng);
    let tree = grid_tree_for(&[9, 9]);
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    for s in [0usize, 40, 80] {
        let (seq, _) = pre.distances_seq(s);
        let par = pre.distances(s, &metrics);
        assert_dist_eq(&seq, &par, &format!("source {s}"));
    }
    let multi = pre.distances_multi(&[0, 40, 80]);
    assert_dist_eq(&multi[1], &pre.distances_seq(40).0, "multi");
}

/// Shortest-path trees reconstruct real paths of exactly the computed
/// distance — comment (ii).
#[test]
fn shortest_path_tree_is_consistent() {
    let mut rng = StdRng::seed_from_u64(107);
    let (g, _) = generators::grid(&[7, 7], &mut rng);
    let g = generators::skew_by_potentials(&g, 2.0, &mut rng);
    let tree = grid_tree_for(&[7, 7]);
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    let source = 24;
    let (dist, _) = pre.distances_seq(source);
    let parent = query::shortest_path_tree::<Tropical>(&g, source, &dist);
    for v in 0..g.n() {
        if dist[v].is_infinite() {
            assert_eq!(parent[v], u32::MAX);
            continue;
        }
        let path = query::path_from_tree(&g, &parent, source, v)
            .unwrap_or_else(|| panic!("vertex {v} reachable but no tree path"));
        // Re-weigh the path along original edges.
        let mut w = 0.0;
        for pair in path.windows(2) {
            let (a, b) = (pair[0] as usize, pair[1] as usize);
            let best = g
                .out_edges(a)
                .filter(|e| e.to as usize == b)
                .map(|e| e.w)
                .fold(f64::INFINITY, f64::min);
            w += best;
        }
        assert!(
            (w - dist[v]).abs() < 1e-6 * (1.0 + w.abs()),
            "vertex {v}: path weight {w} vs dist {}",
            dist[v]
        );
    }
}

/// Centroid decomposition on trees (the μ→0 family).
#[test]
fn tree_graphs_with_centroid_decomposition() {
    let mut rng = StdRng::seed_from_u64(108);
    let g = generators::random_tree(150, &mut rng);
    let adj = g.undirected_skeleton();
    let tree = builders::centroid_tree(&adj, RecursionLimits::default());
    tree.validate(&adj).unwrap();
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    for s in [0usize, 75, 149] {
        let (dist, _) = pre.distances_seq(s);
        assert_dist_eq(&dist, &dijkstra(&g, s).dist, &format!("source {s}"));
    }
    // Single-vertex separators ⇒ |E⁺| is near-linear.
    assert!(pre.stats().eplus_edges <= 40 * g.n());
}

/// Planar triangulations via fundamental-cycle separators (the
/// Lipton–Tarjan mechanism behind Section 6's planar results).
#[test]
fn planar_mesh_with_cycle_separators() {
    use spsep_separator::planar;
    let mut rng = StdRng::seed_from_u64(135);
    let (g, tri) = planar::triangulated_grid(12, 11, &mut rng);
    let adj = g.undirected_skeleton();
    let tree = planar::planar_cycle_tree(&adj, &tri, 4);
    tree.validate(&adj).unwrap();
    let metrics = Metrics::new();
    for algo in [Algorithm::LeavesUp, Algorithm::PathDoubling] {
        let pre = preprocess::<Tropical>(&g, &tree, algo, &metrics).unwrap();
        for s in [0usize, 60, 131] {
            let (dist, _) = pre.distances_seq(s);
            let truth = dijkstra(&g, s);
            assert_dist_eq(&dist, &truth.dist, &format!("{algo:?} source {s}"));
        }
        // Theorem 3.1 bound on this decomposition too.
        let stats = pre.stats();
        let bound = 4 * stats.d_g as usize + 2 * stats.leaf_bound + 1;
        let diam =
            analysis::min_weight_diameter::<Tropical>(g.n(), pre.augmented_edges()).unwrap();
        assert!(diam <= bound);
    }
}

/// Bounded-treewidth graphs via their tree decomposition (the
/// Robertson–Seymour family of the paper's introduction).
#[test]
fn partial_ktree_with_treewidth_decomposition() {
    use spsep_separator::treewidth;
    let mut rng = StdRng::seed_from_u64(130);
    for k in [2usize, 4] {
        let (g, td) = treewidth::partial_ktree(180, k, 0.7, &mut rng);
        let adj = g.undirected_skeleton();
        td.validate(&adj).unwrap();
        let tree = treewidth::treewidth_tree(&adj, &td, RecursionLimits::default());
        tree.validate(&adj).unwrap();
        let metrics = Metrics::new();
        let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
        // Constant-size separators ⇒ near-linear |E⁺|.
        assert!(
            pre.stats().eplus_edges <= 200 * (k + 1) * (k + 1) * g.n() / 10,
            "|E+| = {}",
            pre.stats().eplus_edges
        );
        for s in [0usize, 90, 179] {
            let (dist, _) = pre.distances_seq(s);
            let truth = dijkstra(&g, s);
            assert_dist_eq(&dist, &truth.dist, &format!("k={k} source {s}"));
        }
    }
}

/// Geometric graphs with coordinate-median separators.
#[test]
fn geometric_graphs_match_dijkstra() {
    let mut rng = StdRng::seed_from_u64(109);
    let (g, coords) = generators::geometric(250, 2, 0.13, &mut rng);
    let adj = g.undirected_skeleton();
    let tree = builders::geometric_tree(&adj, &coords, RecursionLimits::default());
    tree.validate(&adj).unwrap();
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    for s in [0usize, 100, 249] {
        let (dist, _) = pre.distances_seq(s);
        assert_dist_eq(&dist, &dijkstra(&g, s).dist, &format!("source {s}"));
    }
}

/// Arbitrary digraph through the BFS-bisection fallback builder.
#[test]
fn gnm_graph_with_bfs_tree() {
    let mut rng = StdRng::seed_from_u64(110);
    let g = generators::gnm(120, 360, &mut rng);
    let adj = g.undirected_skeleton();
    let tree = builders::bfs_tree(&adj, RecursionLimits::default());
    tree.validate(&adj).unwrap();
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::PathDoubling, &metrics).unwrap();
    for s in [0usize, 60, 119] {
        let (dist, _) = pre.distances_seq(s);
        assert_dist_eq(&dist, &dijkstra(&g, s).dist, &format!("source {s}"));
    }
}

/// Reachability: the BitMatrix pipeline matches BFS from every source.
#[test]
fn reachability_matches_bfs() {
    let mut rng = StdRng::seed_from_u64(111);
    let mut edges = Vec::new();
    // A grid skeleton made directed-sparse: keep each arc with prob ~60%.
    let (base, _) = generators::grid(&[8, 8], &mut rng);
    for (i, e) in base.edges().iter().enumerate() {
        if i % 5 != 0 {
            edges.push(spsep_graph::Edge::new(e.from as usize, e.to as usize, true));
        }
    }
    let g = DiGraph::from_edges(base.n(), edges);
    let tree = grid_tree_for(&[8, 8]);
    let metrics = Metrics::new();
    let pre = reach::preprocess_reach(&g, &tree, &metrics);
    for s in 0..g.n() {
        let dist = pre.distances_seq(s).0;
        let truth = spsep_baselines::reachable_from(&g, s);
        for v in 0..g.n() {
            assert_eq!(dist[v], truth[v], "source {s} vertex {v}");
        }
    }
    assert!(metrics.work_of(spsep_pram::Counter::MatMul) > 0);
}

/// Full transitive closure through the separator pipeline equals the
/// dense repeated-squaring closure.
#[test]
fn full_transitive_closure_matches_dense() {
    let mut rng = StdRng::seed_from_u64(150);
    let dag = generators::layered_dag(5, 9, 2, &mut rng);
    let g = dag.map_weights(|_| true);
    let tree =
        builders::bfs_tree(&g.undirected_skeleton(), RecursionLimits::default());
    let metrics = Metrics::new();
    let pre = reach::preprocess_reach(&g, &tree, &metrics);
    let ours = reach::transitive_closure(&pre);
    let dense = spsep_baselines::transitive_closure_dense(&g);
    assert_eq!(ours, dense);
}

/// The generic Boolean path computes the same reachability as the
/// specialized BitMatrix path.
#[test]
fn generic_boolean_equals_bitmatrix_pipeline() {
    use spsep_graph::semiring::Boolean;
    let mut rng = StdRng::seed_from_u64(112);
    let (base, _) = generators::grid(&[6, 6], &mut rng);
    let g = base.map_weights(|_| true);
    let tree = grid_tree_for(&[6, 6]);
    let metrics = Metrics::new();
    let fast = reach::preprocess_reach(&g, &tree, &metrics);
    let generic = preprocess::<Boolean>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    assert_eq!(fast.eplus().len(), generic.eplus().len());
    for s in [0usize, 20, 35] {
        assert_eq!(fast.distances_seq(s).0, generic.distances_seq(s).0);
    }
}

/// Path algebra generality — comment (iii): bottleneck (max,min) and
/// longest path on a DAG (max,+) run through the identical machinery.
#[test]
fn bottleneck_semiring_matches_reference() {
    let mut rng = StdRng::seed_from_u64(113);
    let (g, _) = generators::grid(&[6, 6], &mut rng);
    let tree = grid_tree_for(&[6, 6]);
    let metrics = Metrics::new();
    let pre = preprocess::<Bottleneck>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    for s in [0usize, 18, 35] {
        let (dist, _) = pre.distances_seq(s);
        let truth = bellman_ford_semiring::<Bottleneck>(&g, s).unwrap();
        for v in 0..g.n() {
            assert_eq!(dist[v], truth[v], "source {s} vertex {v}");
        }
    }
}

#[test]
fn maxplus_on_dag_matches_reference() {
    let mut rng = StdRng::seed_from_u64(114);
    // Orient all grid edges "rightward/downward" to get a DAG.
    let (bi, _) = generators::grid(&[7, 7], &mut rng);
    let edges: Vec<spsep_graph::Edge<f64>> = bi
        .edges()
        .iter()
        .filter(|e| e.from < e.to)
        .copied()
        .collect();
    let g = DiGraph::from_edges(bi.n(), edges);
    let tree = grid_tree_for(&[7, 7]);
    let metrics = Metrics::new();
    let pre = preprocess::<MaxPlus>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    for s in [0usize, 24] {
        let (dist, _) = pre.distances_seq(s);
        let truth = bellman_ford_semiring::<MaxPlus>(&g, s).unwrap();
        for v in 0..g.n() {
            if dist[v].is_infinite() && truth[v].is_infinite() {
                continue;
            }
            assert!(
                (dist[v] - truth[v]).abs() < 1e-6,
                "source {s} vertex {v}: {} vs {}",
                dist[v],
                truth[v]
            );
        }
    }
}

/// Positive cycle under max-plus is absorbing and must be caught.
#[test]
fn maxplus_positive_cycle_detected() {
    let mut rng = StdRng::seed_from_u64(115);
    let (g, _) = generators::grid(&[4, 4], &mut rng); // bidirected ⇒ positive 2-cycles
    let tree = grid_tree_for(&[4, 4]);
    let metrics = Metrics::new();
    assert!(preprocess::<MaxPlus>(&g, &tree, Algorithm::LeavesUp, &metrics).is_err());
}

/// Per-source work scales with `|E ∪ E⁺|`, not with `|E⁺| · d_G`.
#[test]
fn scheduled_work_is_bounded() {
    let mut rng = StdRng::seed_from_u64(116);
    let (g, _) = generators::grid(&[12, 12], &mut rng);
    let tree = grid_tree_for(&[12, 12]);
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    let (_, stats) = pre.distances_seq(0);
    let m_plus = pre.augmented_edges().len() as u64;
    let l = pre.stats().leaf_bound as u64;
    let m = g.m() as u64;
    // Work bound from Section 3.2: O(l·|E| + |E ∪ E⁺|). Allow slack 4× for
    // the same-level buckets revisited once in each direction.
    assert!(
        stats.relaxations <= 4 * (l * m + m_plus) + m,
        "relaxations {} vs bound inputs l={l} m={m} m+={m_plus}",
        stats.relaxations
    );
    // And strictly below the naive diam·|E⁺| schedule.
    let naive = m_plus * (4 * pre.stats().d_g as u64 + 2 * l + 1);
    assert!(stats.relaxations < naive);
}

/// Disconnected graphs: distances across components are `+∞`.
#[test]
fn disconnected_graph() {
    let mut rng = StdRng::seed_from_u64(117);
    let (g1, _) = generators::grid(&[4, 4], &mut rng);
    let mut edges = g1.edges().to_vec();
    let offset = g1.n();
    for e in g1.edges() {
        edges.push(spsep_graph::Edge::new(
            e.from as usize + offset,
            e.to as usize + offset,
            e.w,
        ));
    }
    let g = DiGraph::from_edges(2 * offset, edges);
    let adj = g.undirected_skeleton();
    let tree = builders::bfs_tree(&adj, RecursionLimits::default());
    tree.validate(&adj).unwrap();
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    let (dist, _) = pre.distances_seq(0);
    for &d in dist.iter().take(2 * offset).skip(offset) {
        assert!(d.is_infinite());
    }
    assert_dist_eq(&dist[..offset], &dijkstra(&g, 0).dist[..offset], "comp 1");
}

/// Tiny graphs: single vertex and single edge.
#[test]
fn degenerate_graphs() {
    let g: DiGraph<f64> = DiGraph::from_edges(1, vec![]);
    let adj = g.undirected_skeleton();
    let tree = builders::bfs_tree(&adj, RecursionLimits::default());
    let metrics = Metrics::new();
    let pre: Preprocessed<Tropical> =
        preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    assert_eq!(pre.distances_seq(0).0, vec![0.0]);

    let g = DiGraph::from_edges(2, vec![spsep_graph::Edge::new(0, 1, 3.5)]);
    let adj = g.undirected_skeleton();
    let tree = builders::bfs_tree(&adj, RecursionLimits { leaf_size: 1, ..Default::default() });
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::PathDoubling, &metrics).unwrap();
    assert_eq!(pre.distances_seq(0).0, vec![0.0, 3.5]);
    assert!(pre.distances_seq(1).0[0].is_infinite());
}

/// Pair-query conveniences: `shortest_path` returns a real path of the
/// right weight; `distances_pairs` matches per-source queries.
#[test]
fn pair_queries() {
    let mut rng = StdRng::seed_from_u64(140);
    let (g, _) = generators::grid(&[8, 7], &mut rng);
    let g = generators::skew_by_potentials(&g, 2.0, &mut rng);
    let tree = grid_tree_for(&[8, 7]);
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();

    let (w, path) = pre.shortest_path(&g, 0, g.n() - 1).expect("connected");
    assert_eq!(path[0], 0);
    assert_eq!(*path.last().unwrap() as usize, g.n() - 1);
    let mut total = 0.0;
    for pair in path.windows(2) {
        let best = g
            .out_edges(pair[0] as usize)
            .filter(|e| e.to == pair[1])
            .map(|e| e.w)
            .fold(f64::INFINITY, f64::min);
        total += best;
    }
    assert!((total - w).abs() < 1e-6);

    let pairs = [(0usize, 5usize), (0, 40), (13, 2), (13, 13), (55, 0)];
    let got = pre.distances_pairs(&pairs);
    for (i, &(u, v)) in pairs.iter().enumerate() {
        let truth = bellman_ford(&g, u).unwrap().dist[v];
        if truth.is_finite() {
            assert!((got[i] - truth).abs() < 1e-6, "pair {i}");
        } else {
            assert!(got[i].is_infinite());
        }
    }
}

/// Multi-source initialization: one schedule run equals the min over
/// per-source runs (min-plus linearity, used by the TVPI solver).
#[test]
fn multi_source_init_equals_min_over_sources() {
    let mut rng = StdRng::seed_from_u64(119);
    let (g, _) = generators::grid(&[7, 8], &mut rng);
    let g = generators::skew_by_potentials(&g, 2.0, &mut rng);
    let tree = grid_tree_for(&[7, 8]);
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    let sources = [0usize, 11, 30, 55];
    let offsets = [0.0f64, 1.5, -0.75, 4.0];
    let mut init = vec![f64::INFINITY; g.n()];
    for (&s, &o) in sources.iter().zip(&offsets) {
        init[s] = o;
    }
    let (multi, _) = pre.distances_from_init(init);
    for (v, &got) in multi.iter().enumerate() {
        let expect = sources
            .iter()
            .zip(&offsets)
            .map(|(&s, &o)| o + pre.distances_seq(s).0[v])
            .fold(f64::INFINITY, f64::min);
        if expect.is_finite() {
            assert!((got - expect).abs() < 1e-6, "vertex {v}: {got} vs {expect}");
        } else {
            assert!(got.is_infinite());
        }
    }
}

/// `E⁺` weights are never better than true distances (soundness half of
/// Theorem 3.1(i)), checked explicitly.
#[test]
fn eplus_weights_are_sound() {
    let mut rng = StdRng::seed_from_u64(118);
    let (g, _) = generators::grid(&[6, 6], &mut rng);
    let tree = grid_tree_for(&[6, 6]);
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    // True all-pairs via Dijkstra per source.
    for e in pre.eplus() {
        let truth = dijkstra(&g, e.from as usize).dist[e.to as usize];
        assert!(
            e.w >= truth - 1e-9,
            "shortcut ({},{}) weight {} beats true distance {}",
            e.from,
            e.to,
            e.w,
            truth
        );
    }
}
