//! Property-based tests: random graphs, random weights (including
//! negative via potential skew), random decompositions — the pipeline
//! must always agree with the reference algorithms and respect the
//! paper's invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep_baselines::{bellman_ford, bellman_ford_semiring};
use spsep_core::{analysis, preprocess, Algorithm};
use spsep_graph::semiring::{Bottleneck, Tropical};
use spsep_graph::{generators, DiGraph, Edge};
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits};

/// Random sparse digraph + the BFS-bisection decomposition.
fn arb_graph() -> impl Strategy<Value = (DiGraph<f64>, u64)> {
    (5usize..60, 1usize..4, any::<u64>()).prop_map(|(n, density, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnm(n, n * density, &mut rng);
        (g, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Distances from a random source match Bellman–Ford, on random
    /// digraphs with negative-but-safe weights, via both algorithms.
    #[test]
    fn distances_match_reference((g, seed) in arb_graph(), src_sel in 0usize..1000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b9);
        let g = generators::skew_by_potentials(&g, 2.0, &mut rng);
        let adj = g.undirected_skeleton();
        let tree = builders::bfs_tree(&adj, RecursionLimits::default());
        prop_assert!(tree.validate(&adj).is_ok());
        let source = src_sel % g.n();
        let truth = bellman_ford(&g, source).expect("no negative cycles by construction");
        for algo in [
            Algorithm::LeavesUp,
            Algorithm::PathDoubling,
            Algorithm::SharedDoubling,
        ] {
            let metrics = Metrics::new();
            let pre = preprocess::<Tropical>(&g, &tree, algo, &metrics).unwrap();
            let (dist, _) = pre.distances_seq(source);
            for (v, &d) in dist.iter().enumerate() {
                if truth.dist[v].is_infinite() {
                    prop_assert!(d.is_infinite(), "{algo:?} v={v}");
                } else {
                    prop_assert!(
                        (d - truth.dist[v]).abs() < 1e-6 * (1.0 + truth.dist[v].abs()),
                        "{algo:?} v={v}: {} vs {}", d, truth.dist[v]
                    );
                }
            }
        }
    }

    /// Theorem 3.1(ii): the augmented diameter respects `4 d_G + 2l + 1`.
    #[test]
    fn diameter_bound_holds((g, _) in arb_graph()) {
        let adj = g.undirected_skeleton();
        let tree = builders::bfs_tree(&adj, RecursionLimits::default());
        let metrics = Metrics::new();
        let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
        let stats = pre.stats();
        let bound = 4 * stats.d_g as usize + 2 * stats.leaf_bound + 1;
        let diam = analysis::min_weight_diameter::<Tropical>(g.n(), pre.augmented_edges()).unwrap();
        prop_assert!(diam <= bound, "diam {diam} > {bound}");
    }

    /// Shortcut weights never undercut true distances, and for pairs
    /// inside a common node they equal them (exactness on emitted pairs).
    #[test]
    fn eplus_soundness((g, _) in arb_graph()) {
        let adj = g.undirected_skeleton();
        let tree = builders::bfs_tree(&adj, RecursionLimits::default());
        let metrics = Metrics::new();
        let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
        // Reference all-pairs from each shortcut source (cache rows).
        let mut rows: std::collections::HashMap<u32, Vec<f64>> = std::collections::HashMap::new();
        for e in pre.eplus() {
            let row = rows.entry(e.from).or_insert_with(|| {
                bellman_ford(&g, e.from as usize).unwrap().dist
            });
            prop_assert!(e.w >= row[e.to as usize] - 1e-9,
                "({}, {}): {} < {}", e.from, e.to, e.w, row[e.to as usize]);
        }
    }

    /// The bottleneck algebra agrees with its reference on random graphs.
    #[test]
    fn bottleneck_agrees((g, _) in arb_graph(), src_sel in 0usize..1000) {
        let adj = g.undirected_skeleton();
        let tree = builders::bfs_tree(&adj, RecursionLimits::default());
        let metrics = Metrics::new();
        let pre = preprocess::<Bottleneck>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
        let source = src_sel % g.n();
        let truth = bellman_ford_semiring::<Bottleneck>(&g, source).unwrap();
        let (dist, _) = pre.distances_seq(source);
        for v in 0..g.n() {
            prop_assert_eq!(dist[v], truth[v], "v={}", v);
        }
    }

    /// Random trees with centroid decompositions: exact distances and a
    /// logarithmic tree height.
    #[test]
    fn centroid_trees_work(n in 2usize..120, seed in any::<u64>(), src_sel in 0usize..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_tree(n, &mut rng);
        let adj = g.undirected_skeleton();
        let tree = builders::centroid_tree(&adj, RecursionLimits::default());
        prop_assert!(tree.validate(&adj).is_ok());
        prop_assert!(tree.height() as usize <= 2 * (usize::BITS - n.leading_zeros()) as usize + 2);
        let metrics = Metrics::new();
        let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
        let source = src_sel % n;
        let truth = bellman_ford(&g, source).unwrap();
        let (dist, _) = pre.distances_seq(source);
        for (v, &d) in dist.iter().enumerate() {
            prop_assert!((d - truth.dist[v]).abs() < 1e-6, "vertex {v}");
        }
    }

    /// Random integer-weight graphs under the exact integer tropical
    /// semiring: distances must be *exactly* equal (no float tolerance).
    #[test]
    fn integer_weights_are_exact(n in 4usize..50, seed in any::<u64>(), src_sel in 0usize..1000) {
        use spsep_graph::semiring::TropicalInt;
        let mut rng = StdRng::seed_from_u64(seed);
        let gf = generators::gnm(n, 3 * n, &mut rng);
        let g: DiGraph<i64> = gf.map_weights(|e| (e.w * 100.0) as i64);
        let adj = g.undirected_skeleton();
        let tree = builders::bfs_tree(&adj, RecursionLimits::default());
        let metrics = Metrics::new();
        let pre = preprocess::<TropicalInt>(&g, &tree, Algorithm::PathDoubling, &metrics).unwrap();
        let source = src_sel % n;
        let truth = bellman_ford_semiring::<TropicalInt>(&g, source).unwrap();
        let (dist, _) = pre.distances_seq(source);
        prop_assert_eq!(dist, truth);
    }

    /// Planted negative cycles are always detected.
    #[test]
    fn planted_negative_cycle_is_caught(
        (g, seed) in arb_graph(),
        cycle_len in 2usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
        let n = g.n();
        let cycle_len = cycle_len.min(n);
        // Pick distinct vertices for the planted cycle.
        let mut verts: Vec<usize> = (0..n).collect();
        use rand::seq::SliceRandom;
        verts.shuffle(&mut rng);
        let cyc = &verts[..cycle_len];
        let mut edges = g.edges().to_vec();
        for i in 0..cycle_len {
            edges.push(Edge::new(cyc[i], cyc[(i + 1) % cycle_len], -5.0));
        }
        let g = DiGraph::from_edges(n, edges);
        let adj = g.undirected_skeleton();
        let tree = builders::bfs_tree(&adj, RecursionLimits::default());
        let metrics = Metrics::new();
        prop_assert!(preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).is_err());
        prop_assert!(preprocess::<Tropical>(&g, &tree, Algorithm::PathDoubling, &metrics).is_err());
    }
}
