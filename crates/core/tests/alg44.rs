//! Tests for the Remark 4.4 shared-table doubling variant: end-to-end
//! distance correctness, its documented relation to Algorithm 4.1's
//! `E⁺`, negative-cycle detection, and the Theorem 3.1 bound.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep_baselines::{bellman_ford, dijkstra};
use spsep_core::{alg41, alg44, analysis, preprocess, Algorithm};
use spsep_graph::semiring::Tropical;
use spsep_graph::generators;
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits};

#[test]
fn distances_match_dijkstra_on_grid() {
    let mut rng = StdRng::seed_from_u64(200);
    let (g, _) = generators::grid(&[8, 8], &mut rng);
    let tree = builders::grid_tree(&[8, 8], RecursionLimits::default());
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::SharedDoubling, &metrics).unwrap();
    for s in 0..g.n() {
        let (dist, _) = pre.distances_seq(s);
        let truth = dijkstra(&g, s);
        for (v, &d) in dist.iter().enumerate() {
            assert!(
                (d - truth.dist[v]).abs() < 1e-6,
                "source {s} vertex {v}: {} vs {}",
                d,
                truth.dist[v]
            );
        }
    }
}

#[test]
fn negative_weights_and_cycles() {
    let mut rng = StdRng::seed_from_u64(201);
    let (g, _) = generators::grid(&[6, 6], &mut rng);
    let skew = generators::skew_by_potentials(&g, 4.0, &mut rng);
    let tree = builders::grid_tree(&[6, 6], RecursionLimits::default());
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&skew, &tree, Algorithm::SharedDoubling, &metrics).unwrap();
    for s in [0usize, 20, 35] {
        let (dist, _) = pre.distances_seq(s);
        let truth = bellman_ford(&skew, s).unwrap();
        for (v, &d) in dist.iter().enumerate() {
            assert!((d - truth.dist[v]).abs() < 1e-6, "vertex {v}");
        }
    }
    // Plant a negative cycle → must be detected.
    let bad = g.map_weights(|e| {
        if (e.from, e.to) == (0, 1) || (e.from, e.to) == (1, 0) {
            -10.0
        } else {
            e.w
        }
    });
    assert!(preprocess::<Tropical>(&bad, &tree, Algorithm::SharedDoubling, &metrics).is_err());
}

/// The documented relation to Algorithm 4.1: the shared table's `E⁺` is
/// set-wise a superset, weight-wise ≤ on common pairs, and sound (≥ true
/// distances).
#[test]
fn relation_to_alg41_eplus() {
    let mut rng = StdRng::seed_from_u64(202);
    let (g, _) = generators::grid(&[7, 7], &mut rng);
    let tree = builders::grid_tree(&[7, 7], RecursionLimits::default());
    let m = Metrics::new();
    let a = alg41::augment_leaves_up::<Tropical>(&g, &tree, &m).unwrap();
    let b = alg44::augment_shared_doubling::<Tropical>(&g, &tree, &m).unwrap();
    let shared: std::collections::HashMap<(u32, u32), f64> =
        b.eplus.iter().map(|e| ((e.from, e.to), e.w)).collect();
    assert!(b.eplus.len() >= a.eplus.len());
    for e in &a.eplus {
        let w = shared
            .get(&(e.from, e.to))
            .unwrap_or_else(|| panic!("pair ({},{}) missing from shared E+", e.from, e.to));
        assert!(*w <= e.w + 1e-9, "shared weight worse on ({},{})", e.from, e.to);
    }
    // Soundness of every shared edge.
    for e in &b.eplus {
        let truth = dijkstra(&g, e.from as usize).dist[e.to as usize];
        assert!(e.w >= truth - 1e-9);
    }
}

#[test]
fn diameter_bound_still_holds() {
    let mut rng = StdRng::seed_from_u64(203);
    let (g, _) = generators::grid(&[8, 8], &mut rng);
    let tree = builders::grid_tree(&[8, 8], RecursionLimits::default());
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::SharedDoubling, &metrics).unwrap();
    let stats = pre.stats();
    let bound = 4 * stats.d_g as usize + 2 * stats.leaf_bound + 1;
    let diam = analysis::min_weight_diameter::<Tropical>(g.n(), pre.augmented_edges()).unwrap();
    assert!(diam <= bound, "{diam} > {bound}");
}

/// On trees and geometric graphs too.
#[test]
fn other_families() {
    let mut rng = StdRng::seed_from_u64(204);
    let t = generators::random_tree(120, &mut rng);
    let tree = builders::centroid_tree(&t.undirected_skeleton(), RecursionLimits::default());
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&t, &tree, Algorithm::SharedDoubling, &metrics).unwrap();
    let truth = dijkstra(&t, 60);
    let (dist, _) = pre.distances_seq(60);
    for (v, &d) in dist.iter().enumerate() {
        assert!((d - truth.dist[v]).abs() < 1e-6, "vertex {v}");
    }

    let (geo, coords) = generators::geometric(200, 2, 0.15, &mut rng);
    let gtree =
        builders::geometric_tree(&geo.undirected_skeleton(), &coords, RecursionLimits::default());
    let pre = preprocess::<Tropical>(&geo, &gtree, Algorithm::SharedDoubling, &metrics).unwrap();
    let truth = dijkstra(&geo, 0);
    let (dist, _) = pre.distances_seq(0);
    for (v, &d) in dist.iter().enumerate() {
        if truth.dist[v].is_finite() {
            assert!((d - truth.dist[v]).abs() < 1e-6, "vertex {v}");
        } else {
            assert!(d.is_infinite(), "vertex {v}");
        }
    }
}

/// Boolean algebra through the shared table.
#[test]
fn boolean_reachability() {
    use spsep_graph::semiring::Boolean;
    let mut rng = StdRng::seed_from_u64(205);
    let dag = generators::layered_dag(6, 8, 2, &mut rng);
    let g = dag.map_weights(|_| true);
    let tree = builders::bfs_tree(&g.undirected_skeleton(), RecursionLimits::default());
    let metrics = Metrics::new();
    let pre = preprocess::<Boolean>(&g, &tree, Algorithm::SharedDoubling, &metrics).unwrap();
    for s in [0usize, 10, 25] {
        let got = pre.distances_seq(s).0;
        let want = spsep_baselines::reachable_from(&g, s);
        assert_eq!(got, want, "source {s}");
    }
}
