//! Tests for the Theorem 3.1 witness extraction.
//!
//! Under the exact integer semiring the witness must satisfy the
//! theorem's structure (size ≤ 4·d_G + 2l + 1, bitonic middle); under
//! floating point only optimality/tightness is guaranteed (ulp churn can
//! scramble the recorded phase timeline — see the module docs).

use rand::rngs::StdRng;
use rand::SeedableRng;
use spsep_core::{explain, preprocess, Algorithm, Preprocessed};
use spsep_graph::semiring::{Tropical, TropicalInt};
use spsep_graph::{generators, DiGraph};
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits, SepTree};

/// Integer-weight copy of a float graph (weights ×1000, truncated).
fn to_int(g: &DiGraph<f64>) -> DiGraph<i64> {
    g.map_weights(|e| (e.w * 1000.0) as i64)
}

/// Full structural check, exact arithmetic.
fn check_exact(g: &DiGraph<i64>, tree: &SepTree, sources: &[usize]) {
    let metrics = Metrics::new();
    let pre = preprocess::<TropicalInt>(g, tree, Algorithm::LeavesUp, &metrics).unwrap();
    let stats = pre.stats();
    let bound = 4 * stats.d_g as usize + 2 * stats.leaf_bound + 1;
    for &source in sources {
        let (dist, _) = pre.distances_seq(source);
        for (target, &dt) in dist.iter().enumerate() {
            if target == source {
                continue;
            }
            let exp = explain::explain(&pre, source, target);
            if dt == i64::MAX {
                assert!(exp.is_none());
                continue;
            }
            let exp = exp.expect("reachable target must explain");
            assert_eq!(exp.weight, dist[target], "target {target}");
            let sum: i64 = exp.hops.iter().map(|h| h.w).sum();
            assert_eq!(sum, exp.weight, "target {target}: hops must telescope");
            assert_eq!(exp.hops.first().unwrap().from as usize, source);
            assert_eq!(exp.hops.last().unwrap().to as usize, target);
            for pair in exp.hops.windows(2) {
                assert_eq!(pair[0].to, pair[1].from);
            }
            // Theorem 3.1 structure — exact under integer arithmetic.
            assert!(
                exp.hops.len() <= bound,
                "target {target}: {} hops > bound {bound}",
                exp.hops.len()
            );
            assert!(exp.bitonic, "target {target}: non-bitonic middle");
        }
    }
}

#[test]
fn grid_witnesses_satisfy_theorem_structure() {
    let mut rng = StdRng::seed_from_u64(300);
    let (gf, _) = generators::grid(&[9, 8], &mut rng);
    let g = to_int(&gf);
    let tree = builders::grid_tree(&[9, 8], RecursionLimits::default());
    check_exact(&g, &tree, &[0, 35, 71]);
}

#[test]
fn tree_witnesses_satisfy_theorem_structure() {
    let mut rng = StdRng::seed_from_u64(302);
    let gf = generators::random_tree(90, &mut rng);
    let g = to_int(&gf);
    let tree = builders::centroid_tree(&g.undirected_skeleton(), RecursionLimits::default());
    check_exact(&g, &tree, &[0, 45, 89]);
}

#[test]
fn geometric_witnesses_satisfy_theorem_structure() {
    let mut rng = StdRng::seed_from_u64(304);
    let (gf, coords) = generators::geometric(150, 2, 0.16, &mut rng);
    let g = to_int(&gf);
    let tree =
        builders::geometric_tree(&g.undirected_skeleton(), &coords, RecursionLimits::default());
    check_exact(&g, &tree, &[0, 75]);
}

/// Float path: optimality and tightness hold; structure flags reported.
fn check_float(
    g: &DiGraph<f64>,
    pre: &Preprocessed<Tropical>,
    source: usize,
) {
    let (dist, _) = pre.distances_seq(source);
    for (target, &dt) in dist.iter().enumerate() {
        if target == source || dt.is_infinite() {
            continue;
        }
        let exp = explain::explain(pre, source, target).expect("reachable");
        assert!((exp.weight - dt).abs() < 1e-9 * (1.0 + dt.abs()));
        let sum: f64 = exp.hops.iter().map(|h| h.w).sum();
        assert!((sum - exp.weight).abs() < 1e-6 * (1.0 + sum.abs()));
        for pair in exp.hops.windows(2) {
            assert_eq!(pair[0].to, pair[1].from);
        }
        // Even with float churn, a parent chain cannot loop.
        assert!(exp.hops.len() < g.n());
    }
}

#[test]
fn float_witnesses_are_tight_and_optimal() {
    let mut rng = StdRng::seed_from_u64(301);
    let (g, _) = generators::grid(&[7, 7], &mut rng);
    let g = generators::skew_by_potentials(&g, 3.0, &mut rng);
    let tree = builders::grid_tree(&[7, 7], RecursionLimits::default());
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::PathDoubling, &metrics).unwrap();
    check_float(&g, &pre, 24);
}

#[test]
fn explanation_renders_and_reports_shortcuts() {
    let mut rng = StdRng::seed_from_u64(303);
    let (gf, _) = generators::grid(&[16, 16], &mut rng);
    let g = to_int(&gf);
    let tree = builders::grid_tree(&[16, 16], RecursionLimits::default());
    let metrics = Metrics::new();
    let pre = preprocess::<TropicalInt>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    let exp = explain::explain(&pre, 0, g.n() - 1).unwrap();
    // A corner-to-corner route on a 16×16 grid (graph diameter 30) must
    // use shortcuts to fit in the bound.
    assert!(exp.hops.iter().any(|h| h.shortcut), "expected E+ hops");
    let text = exp.render();
    assert!(text.contains("weight"));
    assert!(text.contains("→"));
    let verts = exp.vertices();
    assert_eq!(verts[0], 0);
    assert_eq!(*verts.last().unwrap() as usize, g.n() - 1);
}

#[test]
fn unreachable_has_no_explanation() {
    let g = spsep_graph::DiGraph::from_edges(3, vec![spsep_graph::Edge::new(0, 1, 1.0)]);
    let tree = builders::bfs_tree(&g.undirected_skeleton(), RecursionLimits::default());
    let metrics = Metrics::new();
    let pre = preprocess::<Tropical>(&g, &tree, Algorithm::LeavesUp, &metrics).unwrap();
    assert!(explain::explain(&pre, 0, 2).is_none());
    assert!(explain::explain(&pre, 0, 1).is_some());
}
