//! `spsep-telemetry` — the daemon's always-on telemetry plane.
//!
//! Three pieces, all zero-dependency and allocation-free on the hot
//! path (DESIGN.md §14):
//!
//! * [`hist`] / [`registry`] — a lock-free metrics registry of
//!   monotonic [`Counter`]s, [`Gauge`]s, and fixed-footprint
//!   log-bucketed [`Histogram`]s (HdrHistogram-style power-of-two
//!   octaves with 32 sub-buckets, ≤ 3.125% relative bucket width),
//!   sharded per recording thread and merged deterministically on
//!   read;
//! * [`prom`] — a hand-rolled Prometheus text-format writer, a strict
//!   [`validate_prometheus_text`] validator in the style of the bench
//!   JSON validators, and a sample parser the load harness uses to
//!   diff counters across a run;
//! * [`flight`] — an always-on [`FlightRecorder`]: bounded per-worker
//!   rings of per-request records, frozen into a deterministically
//!   ordered window dump whenever a request errors or crosses a
//!   latency threshold (renderable as text or as a Chrome trace via
//!   the `spsep-trace` exporter).
//!
//! The serving daemon (`spsep-serve`) owns one [`Registry`] and one
//! [`FlightRecorder`] per process and exposes the rendered text both
//! over the wire (`Request::Metrics`) and on a plain-HTTP side port
//! (`GET /metrics`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod flight;
pub mod hist;
pub mod prom;
pub mod registry;

pub use flight::{
    dump_chrome_json, fnv1a, render_dump, DumpReason, FlightConfig, FlightDump, FlightRecorder,
    RequestRecord,
};
pub use hist::{bucket_bounds, bucket_index, HistSnapshot, Histogram, BUCKETS, OCTAVES, SUB};
pub use prom::{counter_samples, parse_samples, render, validate_prometheus_text, Sample};
pub use registry::{Counter, Gauge, Registry};
