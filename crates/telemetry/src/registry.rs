//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration happens once at daemon start (it takes a mutex);
//! after that every handle is a plain `Arc` whose hot-path operations
//! are single relaxed atomic instructions — the request path never
//! touches the registry lock. Reads (the Prometheus exposition, the
//! load harness's scrape delta) walk the registered entries in
//! name/label order, so two scrapes of a quiesced daemon render
//! byte-identical text regardless of worker count or registration
//! interleaving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::hist::{HistSnapshot, Histogram};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned registry lock only means a panic elsewhere; the data
    // (Arc handles) is still sound to read.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A monotonically increasing `u64` counter.
#[derive(Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A settable `f64` gauge (stored as raw bits in an `AtomicU64`).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The metric payload of a registry entry.
#[derive(Clone)]
pub enum Metric {
    /// Monotonic counter.
    Counter(Arc<Counter>),
    /// Settable gauge.
    Gauge(Arc<Gauge>),
    /// Sharded latency histogram.
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One registered metric: name, fixed label set, help text, payload.
#[derive(Clone)]
pub struct Entry {
    /// Metric family name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Label pairs fixed at registration, already sorted by key.
    pub labels: Vec<(String, String)>,
    /// `# HELP` text (first registration of the name wins).
    pub help: String,
    /// The metric itself.
    pub metric: Metric,
}

/// An immutable point-in-time view of one entry, histograms merged.
pub struct SampledEntry {
    /// Metric family name.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// Help text.
    pub help: String,
    /// Sampled value.
    pub value: SampledValue,
}

/// A sampled metric value.
pub enum SampledValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Merged histogram snapshot.
    Histogram(HistSnapshot),
}

/// The registry. Cheap to share (`Arc<Registry>`), cheap to read.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

fn norm_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    v.sort();
    v
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&self, name: &str, labels: &[(&str, &str)], help: &str, make: Metric) -> Metric {
        let labels = norm_labels(labels);
        let mut entries = lock(&self.entries);
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            if e.metric.kind() == make.kind() {
                return e.metric.clone();
            }
            // Kind clash: hand back the detached handle rather than
            // panicking in a long-lived daemon; it records into a
            // metric nothing exports, which the tests treat as a bug
            // caught by the validator (missing sample), not a crash.
            return make;
        }
        entries.push(Entry {
            name: name.to_string(),
            labels,
            help: help.to_string(),
            metric: make.clone(),
        });
        make
    }

    /// Register (or fetch) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// Register (or fetch) a counter with a fixed label set.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.register(name, labels, help, Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => c,
            _ => Arc::new(Counter::default()),
        }
    }

    /// Register (or fetch) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// Register (or fetch) a gauge with a fixed label set.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self.register(name, labels, help, Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            _ => Arc::new(Gauge::default()),
        }
    }

    /// Register (or fetch) an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[], help)
    }

    /// Register (or fetch) a histogram with a fixed label set.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<Histogram> {
        match self.register(name, labels, help, Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Sample every registered metric, merged and sorted by
    /// `(name, labels)` — the deterministic read order the exposition
    /// and the tests rely on.
    pub fn sample(&self) -> Vec<SampledEntry> {
        let entries: Vec<Entry> = lock(&self.entries).clone();
        let mut out: Vec<SampledEntry> = entries
            .into_iter()
            .map(|e| {
                let value = match &e.metric {
                    Metric::Counter(c) => SampledValue::Counter(c.get()),
                    Metric::Gauge(g) => SampledValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampledValue::Histogram(h.snapshot()),
                };
                SampledEntry {
                    name: e.name,
                    labels: e.labels,
                    help: e.help,
                    value,
                }
            })
            .collect();
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_identity_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x_total", "help");
        let b = r.counter("x_total", "ignored");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.sample().len(), 1);
    }

    #[test]
    fn labels_distinguish_entries_and_sort() {
        let r = Registry::new();
        r.counter_with("e_total", &[("kind", "b")], "h").inc();
        r.counter_with("e_total", &[("kind", "a")], "h").add(5);
        r.gauge("a_gauge", "h").set(1.5);
        let s = r.sample();
        let ids: Vec<String> = s
            .iter()
            .map(|e| format!("{}{:?}", e.name, e.labels))
            .collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn kind_clash_yields_detached_handle_not_panic() {
        let r = Registry::new();
        let _c = r.counter("x", "h");
        let g = r.gauge("x", "h");
        g.set(7.0);
        // Only the original counter is registered.
        assert_eq!(r.sample().len(), 1);
        assert!(matches!(r.sample()[0].value, SampledValue::Counter(0)));
    }
}
