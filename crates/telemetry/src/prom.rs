//! Prometheus text exposition (format 0.0.4): hand-rolled writer,
//! strict validator, and a small sample parser for scrape deltas.
//!
//! The writer renders a [`Registry`] sample as `# HELP` / `# TYPE`
//! comment pairs followed by the samples of each metric family, in
//! sorted `(name, labels)` order. Histograms are exposed as the
//! conventional triplet — cumulative `<name>_bucket{le="…"}` series
//! (thinned to the octave boundaries; the full sub-bucket resolution
//! stays internal for quantiles), `<name>_sum`, `<name>_count` — with
//! `le` in the histogram's native unit (the daemon records
//! nanoseconds, and says so in the metric name).
//!
//! The validator mirrors the repo's bench-JSON validators: it re-parses
//! what the writer emits and enforces the invariants a scraper relies
//! on — name/label grammar, one `# TYPE` per family declared before its
//! samples, finite non-negative counters, strictly increasing `le` with
//! non-decreasing cumulative counts, a `+Inf` bucket equal to `_count`,
//! and no duplicate sample identities.

use std::collections::BTreeMap;

use crate::hist::HistSnapshot;
use crate::registry::{Registry, SampledValue};

fn name_ok(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn label_key_ok(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    format!("{{{}}}", parts.join(","))
}

fn render_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &HistSnapshot) {
    for (le, cum) in h.octave_cumulative() {
        out.push_str(&format!(
            "{name}_bucket{} {cum}\n",
            render_labels(labels, Some(("le", &le.to_string())))
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{} {}\n",
        render_labels(labels, Some(("le", "+Inf"))),
        h.count
    ));
    out.push_str(&format!("{name}_sum{} {}\n", render_labels(labels, None), h.sum));
    out.push_str(&format!("{name}_count{} {}\n", render_labels(labels, None), h.count));
}

/// Render the registry as Prometheus text. Two renders of a quiesced
/// registry are byte-identical.
pub fn render(registry: &Registry) -> String {
    let samples = registry.sample();
    let mut out = String::new();
    let mut last_name: Option<String> = None;
    for e in samples {
        if last_name.as_deref() != Some(e.name.as_str()) {
            let kind = match e.value {
                SampledValue::Counter(_) => "counter",
                SampledValue::Gauge(_) => "gauge",
                SampledValue::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# HELP {} {}\n", e.name, escape_help(&e.help)));
            out.push_str(&format!("# TYPE {} {kind}\n", e.name));
            last_name = Some(e.name.clone());
        }
        match &e.value {
            SampledValue::Counter(v) => {
                out.push_str(&format!("{}{} {v}\n", e.name, render_labels(&e.labels, None)));
            }
            SampledValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    e.name,
                    render_labels(&e.labels, None),
                    fmt_value(*v)
                ));
            }
            SampledValue::Histogram(h) => render_histogram(&mut out, &e.name, &e.labels, h),
        }
    }
    out
}

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Sample name as written (may carry `_bucket`/`_sum`/`_count`).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Parsed value.
    pub value: f64,
}

impl Sample {
    /// Canonical identity string: name plus sorted labels.
    pub fn id(&self) -> String {
        let mut labels = self.labels.clone();
        labels.sort();
        let rendered: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        if rendered.is_empty() {
            self.name.clone()
        } else {
            format!("{}{{{}}}", self.name, rendered.join(","))
        }
    }
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s.parse::<f64>().map_err(|_| format!("bad value {s:?}")),
    }
}

fn parse_sample_line(line: &str) -> Result<Sample, String> {
    let line = line.trim_end();
    let (head, rest) = match line.find(['{', ' ']) {
        Some(i) => line.split_at(i),
        None => return Err(format!("no value on line {line:?}")),
    };
    if !name_ok(head) {
        return Err(format!("bad metric name {head:?}"));
    }
    let mut labels = Vec::new();
    let value_part;
    if let Some(body) = rest.strip_prefix('{') {
        let close = body.find('}').ok_or_else(|| format!("unclosed labels in {line:?}"))?;
        let (label_str, after) = body.split_at(close);
        value_part = after[1..].trim();
        let mut s = label_str;
        while !s.is_empty() {
            let eq = s.find('=').ok_or_else(|| format!("bad label in {line:?}"))?;
            let key = &s[..eq];
            if !label_key_ok(key) {
                return Err(format!("bad label key {key:?}"));
            }
            let v = &s[eq + 1..];
            let v = v
                .strip_prefix('"')
                .ok_or_else(|| format!("unquoted label value in {line:?}"))?;
            // Scan to the closing quote, honouring escapes.
            let mut val = String::new();
            let mut chars = v.char_indices();
            let mut end = None;
            while let Some((i, c)) = chars.next() {
                match c {
                    '\\' => match chars.next() {
                        Some((_, 'n')) => val.push('\n'),
                        Some((_, c2)) => val.push(c2),
                        None => return Err(format!("dangling escape in {line:?}")),
                    },
                    '"' => {
                        end = Some(i);
                        break;
                    }
                    c => val.push(c),
                }
            }
            let end = end.ok_or_else(|| format!("unterminated label value in {line:?}"))?;
            labels.push((key.to_string(), val));
            s = &v[end + 1..];
            s = s.strip_prefix(',').unwrap_or(s);
        }
    } else {
        value_part = rest.trim();
    }
    // An optional timestamp after the value is permitted by the format;
    // take the first token as the value.
    let value_tok = value_part.split_whitespace().next().unwrap_or("");
    let value = parse_value(value_tok)?;
    Ok(Sample {
        name: head.to_string(),
        labels,
        value,
    })
}

/// Parse every sample line (skipping comments/blank lines). Returns the
/// samples in source order plus the `# TYPE` map.
pub fn parse_samples(text: &str) -> Result<(Vec<Sample>, BTreeMap<String, String>), String> {
    let mut samples = Vec::new();
    let mut types = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap_or("").to_string();
            let kind = it.next().unwrap_or("").to_string();
            types.insert(name, kind);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample_line(line)?);
    }
    Ok((samples, types))
}

/// The monotone (counter-like) samples of an exposition: all samples of
/// `counter` families plus histogram `_sum`/`_count`/`_bucket` series,
/// keyed by canonical sample id. This is what the load harness diffs
/// across a run.
pub fn counter_samples(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let (samples, types) = parse_samples(text)?;
    let mut out = BTreeMap::new();
    for s in samples {
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| s.name.strip_suffix(suf))
            .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"));
        let monotone = match base {
            Some(_) => true,
            None => types.get(&s.name).map(String::as_str) == Some("counter"),
        };
        if monotone {
            out.insert(s.id(), s.value);
        }
    }
    Ok(out)
}

fn base_name<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suf in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suf) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Validate an exposition document. `Err` carries the first violation.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen_ids: BTreeMap<String, ()> = BTreeMap::new();
    // (family, labels-without-le) → bucket series state.
    #[derive(Default)]
    struct HistState {
        last_le: Option<f64>,
        last_cum: Option<f64>,
        inf_cum: Option<f64>,
        count: Option<f64>,
        sum: Option<f64>,
    }
    let mut hists: BTreeMap<String, HistState> = BTreeMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap_or("");
            let kind = it.next().unwrap_or("");
            if !name_ok(name) {
                return Err(at(format!("bad TYPE name {name:?}")));
            }
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                return Err(at(format!("bad TYPE kind {kind:?}")));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(at(format!("duplicate TYPE for {name:?}")));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            if !name_ok(name) {
                return Err(at(format!("bad HELP name {name:?}")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let s = parse_sample_line(line).map_err(&at)?;
        let id = s.id();
        if seen_ids.insert(id.clone(), ()).is_some() {
            return Err(at(format!("duplicate sample {id}")));
        }
        for (k, _) in &s.labels {
            if !label_key_ok(k) {
                return Err(at(format!("bad label key {k:?}")));
            }
        }
        let base = base_name(&s.name, &types).to_string();
        let kind = match types.get(&base) {
            Some(k) => k.clone(),
            None => return Err(at(format!("sample {:?} has no preceding TYPE", s.name))),
        };
        match kind.as_str() {
            "counter" if !s.value.is_finite() || s.value < 0.0 => {
                return Err(at(format!("counter {id} has value {}", s.value)));
            }
            "counter" => {}
            "gauge" if s.value.is_nan() => {
                return Err(at(format!("gauge {id} is NaN")));
            }
            "gauge" => {}
            "histogram" => {
                if !s.value.is_finite() || s.value < 0.0 {
                    return Err(at(format!("histogram sample {id} has value {}", s.value)));
                }
                let series_labels: Vec<(String, String)> = {
                    let mut l: Vec<(String, String)> =
                        s.labels.iter().filter(|(k, _)| k != "le").cloned().collect();
                    l.sort();
                    l
                };
                let key = format!("{base}{series_labels:?}");
                let st = hists.entry(key).or_default();
                if s.name.ends_with("_bucket") {
                    let le = s
                        .labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| v.as_str())
                        .ok_or_else(|| at(format!("bucket {id} missing le")))?;
                    let le = parse_value(le).map_err(&at)?;
                    if let Some(prev) = st.last_le {
                        if le <= prev {
                            return Err(at(format!("le not increasing at {id}")));
                        }
                    }
                    if let Some(prev) = st.last_cum {
                        if s.value < prev {
                            return Err(at(format!("cumulative count decreased at {id}")));
                        }
                    }
                    if le == f64::INFINITY {
                        st.inf_cum = Some(s.value);
                    }
                    st.last_le = Some(le);
                    st.last_cum = Some(s.value);
                } else if s.name.ends_with("_count") {
                    st.count = Some(s.value);
                } else if s.name.ends_with("_sum") {
                    st.sum = Some(s.value);
                } else {
                    return Err(at(format!("unexpected histogram sample {id}")));
                }
            }
            _ => {}
        }
    }

    for (key, st) in &hists {
        let inf = st
            .inf_cum
            .ok_or_else(|| format!("histogram {key} has no +Inf bucket"))?;
        let count = st
            .count
            .ok_or_else(|| format!("histogram {key} has no _count"))?;
        if st.sum.is_none() {
            return Err(format!("histogram {key} has no _sum"));
        }
        if inf != count {
            return Err(format!("histogram {key}: +Inf bucket {inf} != _count {count}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("req_total", "requests").add(41);
        r.counter_with("err_total", &[("kind", "parse")], "errors").add(2);
        r.counter_with("err_total", &[("kind", "internal")], "errors");
        r.gauge("queue_depth", "queued frames").set(3.0);
        let h = r.histogram("service_ns", "service time");
        for v in [5u64, 100, 10_000, 1_000_000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn render_validates_and_is_deterministic() {
        let r = sample_registry();
        let a = render(&r);
        let b = render(&r);
        assert_eq!(a, b);
        validate_prometheus_text(&a).unwrap();
        assert!(a.contains("# TYPE req_total counter"));
        assert!(a.contains("# TYPE service_ns histogram"));
        assert!(a.contains("service_ns_bucket{le=\"+Inf\"} 4"));
        assert!(a.contains("service_ns_sum 1010105"));
        assert!(a.contains("err_total{kind=\"parse\"} 2"));
    }

    #[test]
    fn parse_roundtrip() {
        let r = sample_registry();
        let text = render(&r);
        let (samples, types) = parse_samples(&text).unwrap();
        assert_eq!(types.get("req_total").map(String::as_str), Some("counter"));
        let req = samples.iter().find(|s| s.name == "req_total").unwrap();
        assert_eq!(req.value, 41.0);
        let err = samples
            .iter()
            .find(|s| s.name == "err_total" && s.labels == vec![("kind".into(), "parse".into())])
            .unwrap();
        assert_eq!(err.value, 2.0);
    }

    #[test]
    fn counter_samples_include_histogram_series() {
        let text = render(&sample_registry());
        let mono = counter_samples(&text).unwrap();
        assert_eq!(mono.get("req_total"), Some(&41.0));
        assert_eq!(mono.get("service_ns_count"), Some(&4.0));
        assert!(mono.keys().any(|k| k.starts_with("service_ns_bucket")));
        assert!(!mono.contains_key("queue_depth"));
    }

    #[test]
    fn validator_rejects_drift() {
        // No TYPE before sample.
        assert!(validate_prometheus_text("x_total 3\n").is_err());
        // Negative counter.
        assert!(
            validate_prometheus_text("# TYPE x_total counter\nx_total -1\n").is_err()
        );
        // Duplicate sample.
        assert!(validate_prometheus_text(
            "# TYPE x_total counter\nx_total 1\nx_total 2\n"
        )
        .is_err());
        // le not increasing.
        assert!(validate_prometheus_text(
            "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"5\"} 2\n"
        )
        .is_err());
        // Cumulative decreases.
        assert!(validate_prometheus_text(
            "# TYPE h histogram\nh_bucket{le=\"5\"} 3\nh_bucket{le=\"10\"} 2\n"
        )
        .is_err());
        // +Inf != _count.
        assert!(validate_prometheus_text(
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n"
        )
        .is_err());
        // Missing +Inf.
        assert!(validate_prometheus_text(
            "# TYPE h histogram\nh_bucket{le=\"5\"} 3\nh_sum 1\nh_count 3\n"
        )
        .is_err());
        // Bad name.
        assert!(validate_prometheus_text("# TYPE 9x counter\n").is_err());
    }

    #[test]
    fn label_escaping_roundtrips() {
        let r = Registry::new();
        r.counter_with("c_total", &[("path", "a\"b\\c\nd")], "h").inc();
        let text = render(&r);
        validate_prometheus_text(&text).unwrap();
        let (samples, _) = parse_samples(&text).unwrap();
        assert_eq!(samples[0].labels[0].1, "a\"b\\c\nd");
    }
}
