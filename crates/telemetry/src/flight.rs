//! The always-on flight recorder: bounded per-worker ring buffers of
//! per-request records, dumped when a request errors or runs slow.
//!
//! Every served request appends one fixed-size record (opcode, FNV
//! digest of its arguments, queue-wait, service time, cache hits,
//! worker id, error label) to its worker's ring. Rings are bounded —
//! old records fall off the back — so the recorder's footprint is
//! `workers × ring` records regardless of uptime. When a request
//! errors, or its service time exceeds the configured threshold, the
//! recorder freezes the *surrounding window*: every record currently
//! held in every ring, sorted by the global admission sequence number,
//! so the dump reads as one deterministically ordered event log of
//! what the daemon was doing around the incident. Retained dumps are
//! themselves bounded (oldest dropped first).
//!
//! Each worker only ever locks its own ring on the hot path, and ring
//! mutexes are acquired in index order during a dump, so the recorder
//! cannot deadlock and adds one uncontended lock to the request path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use spsep_trace::chrome::chrome_trace_json;
use spsep_trace::TraceEvent;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a 64-bit digest, used to fingerprint request arguments without
/// retaining them.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Recorder sizing and trigger configuration.
#[derive(Clone, Debug)]
pub struct FlightConfig {
    /// Records retained per worker ring.
    pub ring: usize,
    /// Service-time threshold in nanoseconds; a request at or above it
    /// triggers a dump. `u64::MAX` disables the slow trigger.
    pub slow_ns: u64,
    /// Retained dumps (oldest evicted first).
    pub max_dumps: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            ring: 128,
            slow_ns: u64::MAX,
            max_dumps: 4,
        }
    }
}

/// One per-request record.
#[derive(Clone, Debug)]
pub struct RequestRecord {
    /// Global admission sequence number (the dump sort key).
    pub seq: u64,
    /// Worker index that served the request.
    pub worker: u32,
    /// Wire opcode label (`"point"`, `"source"`, …).
    pub opcode: &'static str,
    /// FNV-1a digest of the request arguments.
    pub args_digest: u64,
    /// Nanoseconds since the recorder epoch at service start.
    pub start_ns: u64,
    /// Nanoseconds spent queued before a worker picked the frame up.
    pub queue_wait_ns: u64,
    /// Nanoseconds of service (decode → answer → encode).
    pub service_ns: u64,
    /// Oracle row-cache hits observed during the request.
    pub cache_hits: u64,
    /// Error label if the request failed (`"parse"`, `"invalid_query"`, …).
    pub error: Option<String>,
}

/// Why a dump was taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DumpReason {
    /// The trigger request returned a wire error.
    Error,
    /// The trigger request's service time crossed the threshold.
    Slow,
}

/// A frozen window: every ring's contents at trigger time, seq-sorted.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// Sequence number of the request that tripped the dump.
    pub trigger_seq: u64,
    /// Trigger classification.
    pub reason: DumpReason,
    /// The window, sorted by `seq` (contains the trigger record).
    pub records: Vec<RequestRecord>,
}

/// The recorder. One per daemon; shared behind `Arc`.
pub struct FlightRecorder {
    cfg: FlightConfig,
    epoch: Instant,
    seq: AtomicU64,
    rings: Vec<Mutex<Vec<RequestRecord>>>,
    dumps: Mutex<Vec<FlightDump>>,
    dumps_total: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with `workers` rings.
    pub fn new(workers: usize, cfg: FlightConfig) -> Self {
        FlightRecorder {
            cfg,
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            rings: (0..workers.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            dumps: Mutex::new(Vec::new()),
            dumps_total: AtomicU64::new(0),
        }
    }

    /// Next global sequence number (call at admission).
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds since the recorder epoch.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The configured slow threshold in nanoseconds.
    pub fn slow_ns(&self) -> u64 {
        self.cfg.slow_ns
    }

    /// Append a record to its worker's ring; if it triggers (error, or
    /// `service_ns ≥ slow_ns`), freeze and retain a dump. Returns the
    /// reason when a dump was taken.
    pub fn record(&self, rec: RequestRecord) -> Option<DumpReason> {
        let reason = if rec.error.is_some() {
            Some(DumpReason::Error)
        } else if rec.service_ns >= self.cfg.slow_ns {
            Some(DumpReason::Slow)
        } else {
            None
        };
        let trigger_seq = rec.seq;
        let ring_idx = (rec.worker as usize) % self.rings.len();
        {
            let mut ring = lock(&self.rings[ring_idx]);
            ring.push(rec);
            let len = ring.len();
            if len > self.cfg.ring {
                ring.drain(..len - self.cfg.ring);
            }
        }
        if let Some(reason) = reason {
            let mut records = Vec::new();
            for ring in &self.rings {
                records.extend(lock(ring).iter().cloned());
            }
            records.sort_by_key(|r| r.seq);
            let dump = FlightDump {
                trigger_seq,
                reason,
                records,
            };
            let mut dumps = lock(&self.dumps);
            dumps.push(dump);
            let len = dumps.len();
            if len > self.cfg.max_dumps {
                dumps.drain(..len - self.cfg.max_dumps);
            }
            self.dumps_total.fetch_add(1, Ordering::Relaxed);
            return Some(reason);
        }
        None
    }

    /// Dumps taken over the recorder's lifetime (including evicted ones).
    pub fn dumps_total(&self) -> u64 {
        self.dumps_total.load(Ordering::Relaxed)
    }

    /// The retained dumps, oldest first.
    pub fn dumps(&self) -> Vec<FlightDump> {
        lock(&self.dumps).clone()
    }
}

/// Render a dump as a deterministic plain-text event log: one header
/// line, then one line per record in seq order, the trigger marked.
pub fn render_dump(dump: &FlightDump) -> String {
    let reason = match dump.reason {
        DumpReason::Error => "error",
        DumpReason::Slow => "slow",
    };
    let mut out = format!(
        "flight dump: trigger seq={} reason={} window={} records\n",
        dump.trigger_seq,
        reason,
        dump.records.len()
    );
    for r in &dump.records {
        let marker = if r.seq == dump.trigger_seq { ">" } else { " " };
        let err = r.error.as_deref().unwrap_or("-");
        out.push_str(&format!(
            "{marker} seq={:<8} worker={} op={:<8} args={:016x} wait_ns={:<10} service_ns={:<12} cache_hits={:<6} err={err}\n",
            r.seq, r.worker, r.opcode, r.args_digest, r.queue_wait_ns, r.service_ns, r.cache_hits
        ));
    }
    out
}

/// Export a dump as Chrome trace-event JSON via the existing
/// `spsep-trace` exporter: one complete event per record, on a track
/// per worker.
pub fn dump_chrome_json(dump: &FlightDump) -> String {
    let events: Vec<TraceEvent> = dump
        .records
        .iter()
        .map(|r| TraceEvent {
            label: format!("serve.{}", r.opcode),
            args: format!(
                "seq={} args={:016x} wait_ns={} cache_hits={} err={}",
                r.seq,
                r.args_digest,
                r.queue_wait_ns,
                r.cache_hits,
                r.error.as_deref().unwrap_or("-")
            ),
            tid: r.worker,
            thread_name: format!("serve-worker-{}", r.worker),
            seq: r.seq,
            start_ns: r.start_ns,
            dur_ns: r.service_ns.max(1),
            depth: 0,
            ops: 0,
            bytes: 0,
        })
        .collect();
    chrome_trace_json(&events, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, worker: u32, service_ns: u64, error: Option<&str>) -> RequestRecord {
        RequestRecord {
            seq,
            worker,
            opcode: "point",
            args_digest: fnv1a(&seq.to_le_bytes()),
            start_ns: seq * 1000,
            queue_wait_ns: 10,
            service_ns,
            cache_hits: 1,
            error: error.map(str::to_string),
        }
    }

    #[test]
    fn ring_is_bounded() {
        let fr = FlightRecorder::new(
            1,
            FlightConfig {
                ring: 8,
                ..FlightConfig::default()
            },
        );
        for i in 0..100 {
            assert_eq!(fr.record(rec(i, 0, 100, None)), None);
        }
        // Force a dump to observe the window size.
        fr.record(rec(100, 0, 100, Some("internal")));
        let dumps = fr.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].records.len(), 8);
        assert_eq!(dumps[0].records.last().map(|r| r.seq), Some(100));
    }

    #[test]
    fn slow_request_triggers_dump_containing_it() {
        let fr = FlightRecorder::new(
            2,
            FlightConfig {
                ring: 16,
                slow_ns: 1_000_000,
                max_dumps: 4,
            },
        );
        for i in 0..10 {
            fr.record(rec(i, (i % 2) as u32, 1000, None));
        }
        assert_eq!(fr.dumps_total(), 0);
        assert_eq!(fr.record(rec(10, 1, 5_000_000, None)), Some(DumpReason::Slow));
        let dumps = fr.dumps();
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        assert_eq!(d.reason, DumpReason::Slow);
        assert_eq!(d.trigger_seq, 10);
        assert!(d.records.iter().any(|r| r.seq == 10 && r.service_ns == 5_000_000));
        // Window is seq-sorted and spans both workers' rings.
        assert!(d.records.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(d.records.len(), 11);
    }

    #[test]
    fn erroring_request_triggers_dump() {
        let fr = FlightRecorder::new(1, FlightConfig::default());
        fr.record(rec(0, 0, 100, None));
        assert_eq!(
            fr.record(rec(1, 0, 100, Some("invalid_query"))),
            Some(DumpReason::Error)
        );
        let d = &fr.dumps()[0];
        assert_eq!(d.reason, DumpReason::Error);
        assert_eq!(
            d.records.last().and_then(|r| r.error.as_deref()),
            Some("invalid_query")
        );
    }

    #[test]
    fn retained_dumps_are_bounded() {
        let fr = FlightRecorder::new(
            1,
            FlightConfig {
                ring: 4,
                slow_ns: u64::MAX,
                max_dumps: 2,
            },
        );
        for i in 0..5 {
            fr.record(rec(i, 0, 1, Some("internal")));
        }
        assert_eq!(fr.dumps_total(), 5);
        let dumps = fr.dumps();
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[1].trigger_seq, 4);
    }

    #[test]
    fn render_is_deterministic_and_marks_trigger() {
        let fr = FlightRecorder::new(1, FlightConfig::default());
        fr.record(rec(7, 0, 9, None));
        fr.record(rec(8, 0, 9, Some("parse")));
        let d = &fr.dumps()[0];
        let text = render_dump(d);
        assert_eq!(text, render_dump(d));
        assert!(text.contains("trigger seq=8 reason=error"));
        assert!(text.lines().any(|l| l.starts_with("> seq=8")));
        assert!(text.lines().any(|l| l.starts_with("  seq=7")));
    }

    #[test]
    fn chrome_export_validates() {
        let fr = FlightRecorder::new(2, FlightConfig::default());
        fr.record(rec(0, 0, 500, None));
        fr.record(rec(1, 1, 700, None));
        fr.record(rec(2, 0, 900, Some("internal")));
        let d = &fr.dumps()[0];
        let json = dump_chrome_json(d);
        spsep_trace::chrome::validate_chrome_json(&json).unwrap();
    }
}
