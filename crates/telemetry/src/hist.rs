//! Fixed-footprint log-bucketed latency histogram.
//!
//! The bucket scheme is HdrHistogram-style: power-of-two *octaves*, each
//! split into `SUB = 2^SUB_BITS` equal-width sub-buckets, so the
//! relative width of any bucket is at most `1/SUB` (3.125% with
//! `SUB_BITS = 5`). Values below `SUB` get their own unit-width bucket
//! (exact). The whole histogram is a flat array of
//! `SUB × (OCTAVES + 1)` counters — ~10 KiB per shard, allocated once —
//! so recording never allocates and the daemon's memory footprint is
//! independent of uptime (this replaces the coarse 40-bucket
//! `LatencyHistogram` the daemon used to keep, and fixes the unbounded
//! per-sample retention the load harness still uses for its *exact*
//! reference percentiles).
//!
//! Concurrency: the histogram is internally sharded. Each recording
//! thread is assigned a shard once (round-robin over a process-global
//! counter, so a given thread hits the same shard index in *every*
//! histogram) and then only ever touches that shard's atomics with
//! relaxed ordering — no locks, no CAS loops, no false sharing between
//! workers on different shards. A read merges the shards by index-wise
//! summation, which is commutative and associative: the merged snapshot
//! depends only on the multiset of recorded values, never on thread
//! count or interleaving. That determinism claim is what the proptest
//! suite pins down.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// log2 of the number of sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32 → ≤ 3.125% relative bucket width).
pub const SUB: u64 = 1 << SUB_BITS;
/// Number of power-of-two octaves above the exact linear range.
/// `OCTAVES = 40` tracks values up to `2^45 − 1` (≈ 9.7 hours in
/// nanoseconds) before clamping into the final bucket.
pub const OCTAVES: u32 = 40;
/// Total bucket count: the linear range plus `OCTAVES` octave rows.
pub const BUCKETS: usize = (SUB as usize) * (OCTAVES as usize + 1);

/// Number of internal shards. Power of two, sized for the daemon's
/// worker-count sweep (1/2/4/8) plus the acceptor and control plane.
pub const SHARDS: usize = 8;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The shard index assigned to the calling thread (assigned round-robin
/// on first use; stable for the thread's lifetime and shared across all
/// histograms, so per-worker telemetry lands in per-worker shards).
pub fn thread_shard() -> usize {
    MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
        s.set(v);
        v
    })
}

/// Map a value to its bucket index.
///
/// Values `< SUB` map to the unit-width bucket `v`; a value in octave
/// `k` (i.e. `2^(SUB_BITS+k-1) ≤ v < 2^(SUB_BITS+k)`) maps to bucket
/// `k·SUB + sub` where `sub` keeps the top `SUB_BITS` bits below the
/// leading one. Values past the last octave clamp into the final
/// bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - u64::from(v.leading_zeros());
    let octave = msb - u64::from(SUB_BITS) + 1;
    if octave > u64::from(OCTAVES) {
        return BUCKETS - 1;
    }
    let sub = (v >> (msb - u64::from(SUB_BITS))) - SUB;
    (octave as usize) * (SUB as usize) + sub as usize
}

/// Half-open value range `[lo, hi)` covered by bucket `i`.
///
/// The final bucket absorbs every clamped value, so its upper bound is
/// reported as `u64::MAX`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < BUCKETS);
    if i == BUCKETS - 1 {
        let lo = (SUB + SUB - 1) << (OCTAVES - 1);
        return (lo, u64::MAX);
    }
    if i < SUB as usize {
        return (i as u64, i as u64 + 1);
    }
    let octave = (i as u64) >> SUB_BITS;
    let sub = (i as u64) & (SUB - 1);
    let lo = (SUB + sub) << (octave - 1);
    (lo, lo + (1 << (octave - 1)))
}

struct Shard {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A sharded, lock-free, fixed-footprint histogram of `u64` values
/// (the daemon records nanoseconds).
pub struct Histogram {
    shards: Vec<Shard>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Allocate an empty histogram (`SHARDS × BUCKETS` zeroed counters).
    pub fn new() -> Self {
        Histogram {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Record one value into the calling thread's shard. Lock-free:
    /// three relaxed atomic adds, no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[thread_shard()];
        shard.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Merge every shard (index-wise sum, fixed order) into an owned
    /// snapshot. Deterministic for a quiesced histogram: the result
    /// depends only on the multiset of recorded values.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut counts = vec![0u64; BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        for shard in &self.shards {
            for (acc, c) in counts.iter_mut().zip(shard.counts.iter()) {
                *acc += c.load(Ordering::Relaxed);
            }
            count += shard.count.load(Ordering::Relaxed);
            sum += shard.sum.load(Ordering::Relaxed);
        }
        HistSnapshot { counts, count, sum }
    }
}

/// An owned, merged view of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts, dense, length [`BUCKETS`].
    pub counts: Vec<u64>,
    /// Total recorded values (`Σ counts`).
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Merge another snapshot into this one: merge is index-wise sum,
    /// so `a.merge(b)` equals a snapshot of all values from both.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the *inclusive upper bound* of
    /// the bucket holding the nearest-rank element, so the reported
    /// value is never below the true quantile by more than one bucket
    /// width and is exact for values in the linear range. Returns 0 for
    /// an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let (_, hi) = bucket_bounds(i);
                return hi.saturating_sub(1);
            }
        }
        let (_, hi) = bucket_bounds(BUCKETS - 1);
        hi
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Cumulative counts at the octave boundaries, as
    /// `(le, cumulative)` pairs with `le` inclusive
    /// (`2^5−1, 2^6−1, …, 2^45−1`). This is the thinned series the
    /// Prometheus exposition emits — the full 1312-bucket resolution
    /// stays internal for quantiles.
    pub fn octave_cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(OCTAVES as usize + 1);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if (i + 1) % SUB as usize == 0 {
                let (_, hi) = bucket_bounds(i);
                let le = if i == BUCKETS - 1 {
                    hi
                } else {
                    hi.saturating_sub(1)
                };
                out.push((le, cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_always_within_its_bucket_bounds() {
        let probes: Vec<u64> = (0..200)
            .chain((0..64).map(|k| (1u64 << (k % 45)).saturating_sub(1)))
            .chain((0..64).map(|k| 1u64 << (k % 45)))
            .chain([12_345, 999_999, 1_000_000_007, u64::MAX / 2, u64::MAX])
            .collect();
        for v in probes {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "v={v} bucket={i} bounds=[{lo},{hi})"
            );
        }
    }

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        let mut prev_hi = 0u64;
        for i in 0..BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, prev_hi, "gap before bucket {i}");
            assert!(hi > lo);
            prev_hi = hi;
        }
        let (lo, hi) = bucket_bounds(BUCKETS - 1);
        assert_eq!(lo, prev_hi);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        // Outside the exact linear range, width/lo ≤ 1/SUB.
        for i in SUB as usize..BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            assert!((hi - lo) * SUB <= lo, "bucket {i}: [{lo},{hi})");
        }
    }

    #[test]
    fn merge_is_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..5000u64 {
            let v = v * v % 100_000;
            if v % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn quantile_is_within_one_bucket_of_exact() {
        let h = Histogram::new();
        let mut vals: Vec<u64> = (0..10_000u64).map(|i| (i * 7919) % 3_000_000).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count, 10_000);
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = vals[((q * vals.len() as f64).ceil() as usize - 1).min(vals.len() - 1)];
            let est = snap.quantile(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            assert!(
                est >= exact && est < hi.saturating_add(1) && est.saturating_sub(exact) <= hi - lo,
                "q={q}: exact={exact} est={est} bucket=[{lo},{hi})"
            );
        }
    }

    #[test]
    fn quantile_exact_in_linear_range() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), 5);
        assert_eq!(snap.quantile(1.0), 10);
        assert_eq!(snap.sum, 55);
    }

    #[test]
    fn octave_cumulative_ends_at_count() {
        let h = Histogram::new();
        for v in [0u64, 31, 32, 1000, 1 << 20, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        let cum = snap.octave_cumulative();
        assert_eq!(cum.len(), OCTAVES as usize + 1);
        assert_eq!(cum.last().map(|&(_, c)| c), Some(snap.count));
        // `le`s strictly increase; cumulative counts never decrease.
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn empty_snapshot() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.quantile(0.99), 0);
        assert_eq!(snap.mean(), 0.0);
    }
}
