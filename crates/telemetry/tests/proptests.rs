//! Property tests for the telemetry plane: the merged registry read
//! must depend only on the multiset of recorded values — never on the
//! number of recording threads, the partition of values across them,
//! or interleaving — and every rendered exposition must satisfy its
//! own validator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::thread;

use spsep_telemetry::{
    bucket_bounds, bucket_index, render, validate_prometheus_text, Histogram, Registry,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Recording the same multiset of values through 1, 2, 4, or 7
    /// threads (arbitrary partition) yields identical snapshots.
    #[test]
    fn histogram_merge_is_thread_count_independent(
        seed in any::<u64>(), n in 0usize..4000
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<u64> = (0..n)
            .map(|_| {
                let mag = rng.gen_range(0u32..40);
                rng.gen_range(0u64..(1u64 << mag).max(1))
            })
            .collect();

        let reference = Histogram::new();
        for &v in &values {
            reference.record(v);
        }
        let expected = reference.snapshot();

        for threads in [1usize, 2, 4, 7] {
            let h = Arc::new(Histogram::new());
            let chunks: Vec<Vec<u64>> = (0..threads)
                .map(|t| values.iter().copied().skip(t).step_by(threads).collect())
                .collect();
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let h = Arc::clone(&h);
                    thread::spawn(move || {
                        for v in chunk {
                            h.record(v);
                        }
                    })
                })
                .collect();
            for j in handles {
                j.join().unwrap();
            }
            prop_assert_eq!(&h.snapshot(), &expected, "threads={}", threads);
        }
    }

    /// Recording order never matters (shuffled single-thread replay).
    #[test]
    fn histogram_merge_is_order_independent(seed in any::<u64>(), n in 0usize..2000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1 << 30)).collect();
        let a = Histogram::new();
        for &v in &values {
            a.record(v);
        }
        // Fisher–Yates shuffle.
        for i in (1..values.len()).rev() {
            values.swap(i, rng.gen_range(0usize..=i));
        }
        let b = Histogram::new();
        for &v in &values {
            b.record(v);
        }
        prop_assert_eq!(a.snapshot(), b.snapshot());
    }

    /// Every recorded value lands in a bucket whose bounds contain it,
    /// and the nearest-rank quantile of the snapshot is within one
    /// bucket width of the exact nearest-rank percentile.
    #[test]
    fn quantiles_track_exact_percentiles(seed in any::<u64>(), n in 1usize..3000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1 << 34)).collect();
        let h = Histogram::new();
        for &v in &values {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            prop_assert!(lo <= v && (v < hi || hi == u64::MAX));
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for q in [0.5f64, 0.99, 0.999] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = values[rank - 1];
            let est = snap.quantile(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            prop_assert!(est >= exact, "q={} est {} < exact {}", q, est, exact);
            prop_assert!(
                est - exact <= hi - lo,
                "q={}: est {} off exact {} by more than bucket [{} {})", q, est, exact, lo, hi
            );
        }
    }

    /// A registry populated with arbitrary counters/gauges/histograms
    /// always renders validator-clean, deterministic text.
    #[test]
    fn rendered_exposition_always_validates(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let r = Registry::new();
        for i in 0..rng.gen_range(1usize..6) {
            r.counter_with(
                &format!("c{i}_total"),
                &[("kind", ["a", "b", "c"][i % 3])],
                "a counter",
            )
            .add(rng.gen_range(0u64..1000));
        }
        for i in 0..rng.gen_range(0usize..4) {
            r.gauge(&format!("g{i}"), "a gauge").set(rng.gen_range(-10.0..1e9));
        }
        let h = r.histogram("lat_ns", "latency");
        for _ in 0..rng.gen_range(0usize..500) {
            h.record(rng.gen_range(0u64..1 << 28));
        }
        let text = render(&r);
        prop_assert_eq!(&text, &render(&r));
        prop_assert!(validate_prometheus_text(&text).is_ok(),
            "{:?}", validate_prometheus_text(&text));
    }
}
