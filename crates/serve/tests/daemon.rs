//! End-to-end tests of the daemon over real TCP connections: protocol
//! round-trips, bit-identity against direct oracle calls at several
//! worker counts, admission shedding, deadline enforcement, graceful
//! shutdown, and concurrent cache reconfiguration.
//!
//! The adversarial suites (wire corruptions, shutdown under load)
//! live in `spsep-testkit`; these tests pin the happy paths and the
//! daemon's own contracts.

use spsep_core::{Algorithm, Oracle};
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits};
use spsep_serve::{
    Client, Request, Response, ServeConfig, Server, ServerHandle, WireError,
};
use std::net::SocketAddr;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

fn grid_oracle(dims: [usize; 2], seed: u64) -> Arc<Oracle> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (g, _) = spsep_graph::generators::grid(&dims, &mut rng);
    let tree = builders::grid_tree(&dims, RecursionLimits::default());
    Arc::new(Oracle::prepare(g, tree, Algorithm::LeavesUp, &Metrics::new()).unwrap())
}

struct Daemon {
    addr: SocketAddr,
    handle: ServerHandle,
    finished: mpsc::Receiver<spsep_serve::WireStats>,
}

fn spawn_daemon(oracle: Arc<Oracle>, config: ServeConfig) -> Daemon {
    let server = Server::bind(oracle, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let stats = server.run().unwrap();
        let _ = tx.send(stats);
    });
    Daemon {
        addr,
        handle,
        finished: rx,
    }
}

impl Daemon {
    fn client(&self) -> Client {
        Client::connect(self.addr, Duration::from_secs(5)).unwrap()
    }

    /// Trigger shutdown and wait for `run()` to return its final
    /// stats — bounded, so a wedged daemon fails the test instead of
    /// hanging it.
    fn stop(self) -> spsep_serve::WireStats {
        self.handle.shutdown();
        self.finished
            .recv_timeout(Duration::from_secs(30))
            .expect("daemon did not shut down within 30s")
    }
}

fn config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        ..ServeConfig::default()
    }
}

#[test]
fn ping_info_and_stats_round_trip() {
    let oracle = grid_oracle([5, 5], 1);
    let daemon = spawn_daemon(Arc::clone(&oracle), config(1));
    let mut c = daemon.client();
    assert_eq!(c.request(&Request::Ping).unwrap(), Response::Pong);
    match c.request(&Request::Info).unwrap() {
        Response::Info { n, m, eplus, algo } => {
            assert_eq!(n, oracle.n() as u64);
            assert_eq!(m, oracle.m() as u64);
            assert_eq!(eplus, oracle.stats().eplus_edges as u64);
            assert_eq!(algo, 41);
        }
        other => panic!("wrong response {other:?}"),
    }
    match c.request(&Request::Stats).unwrap() {
        Response::Stats(s) => {
            assert_eq!(s.workers, 1);
            assert!(s.cache_shards >= 1);
        }
        other => panic!("wrong response {other:?}"),
    }
    let final_stats = daemon.stop();
    assert!(final_stats.accepted >= 1);
}

#[test]
fn answers_are_bit_identical_to_direct_oracle_calls_at_every_worker_count() {
    let oracle = grid_oracle([7, 6], 2);
    let metrics = Metrics::new();
    let n = oracle.n() as u64;
    for workers in [1usize, 2, 4, 8] {
        let daemon = spawn_daemon(Arc::clone(&oracle), config(workers));
        let mut c = daemon.client();
        for s in 0..n.min(6) {
            for t in [0, 1, n - 1] {
                let want = oracle.distance(s as usize, t as usize, &metrics).unwrap();
                match c.request(&Request::Point { source: s, target: t }).unwrap() {
                    Response::Dist(d) => assert_eq!(
                        d.to_bits(),
                        want.to_bits(),
                        "workers={workers} {s}->{t}"
                    ),
                    other => panic!("wrong response {other:?}"),
                }
            }
        }
        let want = oracle.source_table(3, &metrics).unwrap();
        match c.request(&Request::Source { source: 3 }).unwrap() {
            Response::Table(row) => {
                assert_eq!(row.len(), want.len());
                for (a, b) in row.iter().zip(want.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
                }
            }
            other => panic!("wrong response {other:?}"),
        }
        let pairs: Vec<(u64, u64)> = (0..n).map(|s| (s, (s + 7) % n)).collect();
        let want = oracle
            .batch(
                &pairs
                    .iter()
                    .map(|&(u, v)| (u as usize, v as usize))
                    .collect::<Vec<_>>(),
                &metrics,
            )
            .unwrap();
        match c.request(&Request::Batch { pairs }).unwrap() {
            Response::Batch(dists) => {
                assert_eq!(dists.len(), want.len());
                for (a, b) in dists.iter().zip(&want) {
                    assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
                }
            }
            other => panic!("wrong response {other:?}"),
        }
        daemon.stop();
    }
}

#[test]
fn out_of_range_queries_get_typed_invalid_query_errors() {
    let oracle = grid_oracle([5, 5], 3);
    let n = oracle.n() as u64;
    let daemon = spawn_daemon(oracle, config(2));
    let mut c = daemon.client();
    for req in [
        Request::Point { source: n, target: 0 },
        Request::Point {
            source: 0,
            target: u64::MAX,
        },
        Request::Source { source: n + 7 },
        Request::Batch {
            pairs: vec![(0, 0), (n, 0)],
        },
    ] {
        match c.request(&req).unwrap() {
            Response::Error { code, .. } => {
                assert_eq!(code, WireError::InvalidQuery, "req {req:?}")
            }
            other => panic!("req {req:?}: wrong response {other:?}"),
        }
    }
    // The connection survives query rejections.
    assert_eq!(c.request(&Request::Ping).unwrap(), Response::Pong);
    let stats = daemon.stop();
    assert_eq!(stats.errors[WireError::InvalidQuery as usize - 1], 4);
}

#[test]
fn malformed_payload_answers_parse_and_keeps_the_connection() {
    let oracle = grid_oracle([5, 5], 4);
    let daemon = spawn_daemon(oracle, config(1));
    let mut c = daemon.client();
    // Well-framed payload, unassigned opcode.
    let mut frame = 1u32.to_le_bytes().to_vec();
    frame.push(0xe7);
    c.send_raw(&frame).unwrap();
    match c.read_response().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, WireError::Parse),
        other => panic!("wrong response {other:?}"),
    }
    // Same connection still serves.
    assert_eq!(c.request(&Request::Ping).unwrap(), Response::Pong);
    daemon.stop();
}

#[test]
fn admission_control_sheds_with_a_typed_overloaded_error() {
    let oracle = grid_oracle([5, 5], 5);
    // One worker, queue depth 1, and the worker is kept busy by an
    // open connection it is waiting on — so the queue fills with the
    // second connection and the third must be shed.
    let daemon = spawn_daemon(
        oracle,
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        },
    );
    // Occupies the single worker (keep-alive, no request yet).
    let mut pinned = daemon.client();
    assert_eq!(pinned.request(&Request::Ping).unwrap(), Response::Pong);
    // Sits in the queue.
    let _queued = daemon.client();
    std::thread::sleep(Duration::from_millis(100));
    // Must be shed: the daemon answers Overloaded without a request.
    let mut shed = Client::connect(daemon.addr, Duration::from_secs(5)).unwrap();
    match shed.read_response().unwrap() {
        Response::Error { code, .. } => assert_eq!(code, WireError::Overloaded),
        other => panic!("wrong response {other:?}"),
    }
    let stats = daemon.stop();
    assert!(stats.shed >= 1, "shed counter not charged: {stats:?}");
}

#[test]
fn slow_clients_cannot_pin_a_worker_forever() {
    let oracle = grid_oracle([5, 5], 6);
    let daemon = spawn_daemon(
        oracle,
        ServeConfig {
            workers: 1,
            read_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        },
    );
    // A client that sends half a frame and stalls: the daemon's read
    // deadline must fire and free the worker.
    let mut staller = daemon.client();
    staller.send_raw(&100u32.to_le_bytes()).unwrap(); // prefix only
    std::thread::sleep(Duration::from_millis(500));
    // The worker is free again: a healthy client gets served.
    let mut healthy = daemon.client();
    assert_eq!(healthy.request(&Request::Ping).unwrap(), Response::Pong);
    daemon.stop();
}

#[test]
fn shutdown_request_acks_drains_and_exits() {
    let oracle = grid_oracle([5, 5], 7);
    let daemon = spawn_daemon(oracle, config(2));
    let mut c = daemon.client();
    assert_eq!(
        c.request(&Request::Shutdown).unwrap(),
        Response::ShutdownAck
    );
    let stats = daemon
        .finished
        .recv_timeout(Duration::from_secs(30))
        .expect("daemon did not exit after a Shutdown request");
    assert!(stats.served >= 1);
    // New connections are refused outright.
    assert!(Client::connect(daemon.addr, Duration::from_millis(500)).is_err());
}

#[test]
fn queries_during_drain_get_a_typed_shutting_down_error() {
    let oracle = grid_oracle([5, 5], 8);
    let daemon = spawn_daemon(oracle, config(2));
    let mut c = daemon.client();
    assert_eq!(c.request(&Request::Ping).unwrap(), Response::Pong);
    daemon.handle.shutdown();
    // The already-admitted connection's next query is refused, typed.
    match c.request(&Request::Point { source: 0, target: 1 }) {
        Ok(Response::Error { code, .. }) => assert_eq!(code, WireError::ShuttingDown),
        // Worker may already have closed the drained connection.
        Ok(other) => panic!("wrong response {other:?}"),
        Err(_) => {}
    }
    daemon
        .finished
        .recv_timeout(Duration::from_secs(30))
        .expect("daemon did not drain");
}

#[test]
fn cache_reconfiguration_races_serving_without_changing_answers() {
    let oracle = grid_oracle([6, 6], 9);
    let metrics = Metrics::new();
    let n = oracle.n() as u64;
    let want: Vec<u64> = (0..n)
        .map(|s| {
            oracle
                .distance(s as usize, ((s + 5) % n) as usize, &metrics)
                .unwrap()
                .to_bits()
        })
        .collect();
    let daemon = spawn_daemon(Arc::clone(&oracle), config(4));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let resizer = {
        let oracle = Arc::clone(&oracle);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut cap = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                oracle.set_cache_capacity(cap % 5);
                cap += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    };
    let mut c = daemon.client();
    for round in 0..4 {
        for s in 0..n {
            match c
                .request(&Request::Point {
                    source: s,
                    target: (s + 5) % n,
                })
                .unwrap()
            {
                Response::Dist(d) => {
                    assert_eq!(d.to_bits(), want[s as usize], "round {round} source {s}")
                }
                other => panic!("wrong response {other:?}"),
            }
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    resizer.join().unwrap();
    daemon.stop();
}

#[test]
fn oversized_responses_become_invalid_query_not_a_panic() {
    let oracle = grid_oracle([8, 8], 10);
    // A frame bound so small the 64-entry distance table cannot fit.
    let daemon = spawn_daemon(
        oracle,
        ServeConfig {
            workers: 1,
            max_frame: 128,
            ..ServeConfig::default()
        },
    );
    let mut c = daemon.client();
    match c.request(&Request::Source { source: 0 }).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, WireError::InvalidQuery),
        other => panic!("wrong response {other:?}"),
    }
    // Small answers still fit and still serve.
    match c.request(&Request::Point { source: 0, target: 1 }).unwrap() {
        Response::Dist(d) => assert!(d.is_finite()),
        other => panic!("wrong response {other:?}"),
    }
    daemon.stop();
}
