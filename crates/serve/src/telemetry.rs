//! The daemon's telemetry bundle: every metric the server exports,
//! registered once at bind time, plus the flight recorder.
//!
//! Hot-path handles (`Arc<Counter>` / `Arc<Histogram>`) are plain
//! relaxed atomics; the registry lock is touched only at registration
//! and on scrape. The whole bundle honours a kill switch — the
//! `telemetry` cargo feature (on by default) compiles the recording
//! calls out entirely, and [`ServeConfig::telemetry`] disables them at
//! runtime (the E22 overhead bench measures on vs. off on the same
//! binary). Exposition keeps working either way; with recording off
//! the counters simply stay at zero.
//!
//! [`ServeConfig::telemetry`]: crate::server::ServeConfig

use std::sync::Arc;
use std::time::Duration;

use spsep_core::oracle::CacheStats;
use spsep_telemetry::{
    fnv1a, Counter, DumpReason, FlightConfig, FlightDump, FlightRecorder, Gauge, Histogram,
    Registry, RequestRecord,
};

use crate::protocol::{Request, WireError};

/// Stable label of a request opcode, indexed by [`op_index`].
pub(crate) const OP_LABELS: [&str; 8] = [
    "ping", "info", "point", "source", "batch", "stats", "metrics", "shutdown",
];

/// Dense index of a request for the per-opcode counters.
pub(crate) fn op_index(req: &Request) -> usize {
    match req {
        Request::Ping => 0,
        Request::Info => 1,
        Request::Point { .. } => 2,
        Request::Source { .. } => 3,
        Request::Batch { .. } => 4,
        Request::Stats => 5,
        Request::Metrics => 6,
        Request::Shutdown => 7,
    }
}

/// All server metrics plus the flight recorder, behind one struct so
/// `Shared` carries a single field.
pub(crate) struct ServerTelemetry {
    on: bool,
    pub(crate) registry: Arc<Registry>,
    pub(crate) flight: Arc<FlightRecorder>,
    requests: [Arc<Counter>; 8],
    errors: [Arc<Counter>; 5],
    pub(crate) served: Arc<Counter>,
    pub(crate) accepted: Arc<Counter>,
    pub(crate) shed: Arc<Counter>,
    pub(crate) io_errors: Arc<Counter>,
    pub(crate) yields: Arc<Counter>,
    pub(crate) panics: Arc<Counter>,
    flight_dumps: Arc<Counter>,
    pub(crate) scrapes: Arc<Counter>,
    pub(crate) queue_wait_ns: Arc<Histogram>,
    pub(crate) service_ns: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    draining: Arc<Gauge>,
    workers_g: Arc<Gauge>,
}

impl ServerTelemetry {
    /// Register every metric and size the flight recorder. `on` is the
    /// runtime kill switch; `slow_us` arms the flight recorder's slow
    /// trigger.
    pub(crate) fn new(workers: usize, on: bool, slow_us: Option<u64>) -> ServerTelemetry {
        let r = Arc::new(Registry::new());
        let requests = OP_LABELS.map(|op| {
            r.counter_with(
                "spsep_requests_total",
                &[("op", op)],
                "Requests decoded, by wire opcode",
            )
        });
        let errors = [
            WireError::Parse,
            WireError::InvalidQuery,
            WireError::Overloaded,
            WireError::ShuttingDown,
            WireError::Internal,
        ]
        .map(|e| {
            r.counter_with(
                "spsep_errors_total",
                &[("kind", e.label())],
                "Error responses sent, by taxonomy code",
            )
        });
        let flight_cfg = FlightConfig {
            slow_ns: slow_us.map_or(u64::MAX, |us| us.saturating_mul(1000)),
            ..FlightConfig::default()
        };
        ServerTelemetry {
            on,
            requests,
            errors,
            served: r.counter("spsep_served_total", "Requests answered successfully"),
            accepted: r.counter(
                "spsep_connections_accepted_total",
                "Connections admitted to the queue",
            ),
            shed: r.counter(
                "spsep_connections_shed_total",
                "Connections shed by admission control",
            ),
            io_errors: r.counter(
                "spsep_io_errors_total",
                "Connections dropped on an I/O failure or deadline expiry",
            ),
            yields: r.counter(
                "spsep_yields_total",
                "Connections yielded back to the queue at a frame boundary",
            ),
            panics: r.counter(
                "spsep_panics_total",
                "Worker panics caught and answered as internal errors",
            ),
            flight_dumps: r.counter(
                "spsep_flight_dumps_total",
                "Flight-recorder dumps triggered by slow or erroring requests",
            ),
            scrapes: r.counter(
                "spsep_metrics_scrapes_total",
                "Metrics expositions served (wire opcode or HTTP)",
            ),
            queue_wait_ns: r.histogram(
                "spsep_request_queue_wait_ns",
                "Admission-queue wait per connection, nanoseconds",
            ),
            service_ns: r.histogram(
                "spsep_request_service_ns",
                "Per-request service time (decode, answer, encode), nanoseconds",
            ),
            queue_depth: r.gauge("spsep_queue_depth", "Connections waiting for a worker"),
            draining: r.gauge("spsep_draining", "1 while graceful shutdown is draining"),
            workers_g: r.gauge("spsep_workers", "Worker threads serving requests"),
            flight: Arc::new(FlightRecorder::new(workers, flight_cfg)),
            registry: r,
        }
    }

    /// Whether recording is live: the `telemetry` cargo feature must be
    /// compiled in *and* the runtime switch must be on. With the
    /// feature off this is a constant `false` and the optimizer strips
    /// every recording call.
    #[inline]
    pub(crate) fn on(&self) -> bool {
        cfg!(feature = "telemetry") && self.on
    }

    /// Count a decoded request by opcode.
    #[inline]
    pub(crate) fn count_request(&self, op: usize) {
        if self.on() {
            self.requests[op].inc();
        }
    }

    /// Count an error response by taxonomy code.
    #[inline]
    pub(crate) fn count_error(&self, code: WireError) {
        if self.on() {
            self.errors[code as usize - 1].inc();
        }
    }

    /// Record an admission-queue wait sample.
    #[inline]
    pub(crate) fn observe_queue_wait(&self, d: Duration) {
        if self.on() {
            self.queue_wait_ns.record(duration_ns(d));
        }
    }

    /// Record a service-time sample.
    #[inline]
    pub(crate) fn observe_service(&self, d: Duration) {
        if self.on() {
            self.service_ns.record(duration_ns(d));
        }
    }

    /// Feed one request into the flight recorder; returns the dump
    /// reason when this request tripped a window dump.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn flight_record(
        &self,
        worker: u32,
        seq: u64,
        opcode: &'static str,
        frame: &[u8],
        start_ns: u64,
        queue_wait_ns: u64,
        service: Duration,
        cache_hits: u64,
        error: Option<&'static str>,
    ) -> Option<DumpReason> {
        if !self.on() {
            return None;
        }
        let reason = self.flight.record(RequestRecord {
            seq,
            worker,
            opcode,
            args_digest: fnv1a(frame),
            start_ns,
            queue_wait_ns,
            service_ns: duration_ns(service),
            cache_hits,
            error: error.map(str::to_string),
        });
        if reason.is_some() {
            self.flight_dumps.inc();
        }
        reason
    }

    /// The retained flight dumps.
    pub(crate) fn flight_dumps(&self) -> Vec<FlightDump> {
        self.flight.dumps()
    }

    /// A histogram-derived quantile in microseconds (the wire unit).
    pub(crate) fn quantile_us(h: &Histogram, q: f64) -> f64 {
        h.snapshot().quantile(q) as f64 / 1000.0
    }

    /// Refresh every scrape-time gauge. Called under no lock except the
    /// registry's registration mutex (idempotent re-registration
    /// returns the existing handles), so it is safe from any thread.
    pub(crate) fn refresh_gauges(
        &self,
        queue_depth: usize,
        draining: bool,
        workers: usize,
        cache: &CacheStats,
    ) {
        self.queue_depth.set(queue_depth as f64);
        self.draining.set(if draining { 1.0 } else { 0.0 });
        self.workers_g.set(workers as f64);

        let r = &self.registry;
        r.gauge("spsep_cache_hits", "Row-cache hits across all shards")
            .set(cache.hits as f64);
        r.gauge("spsep_cache_misses", "Row-cache misses across all shards")
            .set(cache.misses as f64);
        r.gauge("spsep_cache_evictions", "Row-cache evictions across all shards")
            .set(cache.evictions as f64);
        r.gauge("spsep_cache_entries", "Rows resident across all shards")
            .set(cache.entries as f64);
        r.gauge("spsep_cache_capacity", "Configured row-cache capacity")
            .set(cache.capacity as f64);
        for (i, s) in cache.shards.iter().enumerate() {
            let shard = i.to_string();
            r.gauge_with(
                "spsep_cache_shard_hits",
                &[("shard", &shard)],
                "Row-cache hits, per shard",
            )
            .set(s.hits as f64);
            r.gauge_with(
                "spsep_cache_shard_misses",
                &[("shard", &shard)],
                "Row-cache misses, per shard",
            )
            .set(s.misses as f64);
            r.gauge_with(
                "spsep_cache_shard_entries",
                &[("shard", &shard)],
                "Rows resident, per shard",
            )
            .set(s.entries as f64);
        }

        // Executor pool telemetry: the query path runs on the global
        // `rayon`-shim pool, whose counters accumulate from pool
        // creation — monotone, but exported as gauges because they are
        // sampled, not owned, by this registry.
        let pool = rayon::pool_stats();
        r.gauge("spsep_pool_steal_backs", "join second-closures stolen back by their caller")
            .set(pool.steal_backs as f64);
        r.gauge(
            "spsep_pool_reclaimed_handles",
            "Stale batch handles reclaimed by their caller",
        )
        .set(pool.reclaimed_handles as f64);
        r.gauge(
            "spsep_pool_max_queue_depth",
            "Maximum executor injector queue depth observed",
        )
        .set(pool.max_queue_depth as f64);
        for w in &pool.workers {
            r.gauge_with(
                "spsep_pool_worker_busy_ns",
                &[("worker", &w.name)],
                "Nanoseconds spent executing tasks, per executor worker",
            )
            .set(w.busy_ns as f64);
            r.gauge_with(
                "spsep_pool_worker_tasks",
                &[("worker", &w.name)],
                "Tasks executed, per executor worker",
            )
            .set(w.tasks as f64);
        }
    }

    /// Export the Theorem 4.1/5.1 work/depth ledger as one gauge pair
    /// per entry: the measured/predicted ratio and the envelope
    /// verdict. Called once at bind time when the served oracle carries
    /// a ledger (prepared in-process or reloaded from the sidecar).
    pub(crate) fn set_ledger(&self, ledger: &spsep_core::analysis::WorkLedger) {
        for e in &ledger.entries {
            self.registry
                .gauge_with(
                    "spsep_ledger_ratio",
                    &[("entry", &e.label)],
                    "Work/depth ledger: measured / predicted envelope ratio",
                )
                .set(e.ratio);
            self.registry
                .gauge_with(
                    "spsep_ledger_within",
                    &[("entry", &e.label)],
                    "Work/depth ledger: 1 when measured <= slack * predicted",
                )
                .set(if e.within { 1.0 } else { 0.0 });
        }
    }
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}
