//! Long-lived concurrent query serving for the distance oracle.
//!
//! The paper's economics are prepare-once/query-many: preprocessing
//! pays `O(d_G log n)`-depth work for the `E⁺` augmentation so every
//! later query is a cheap scheduled run (Theorem 3.1 + §4). That only
//! pays off when the prepared [`Oracle`](spsep_core::Oracle) stays
//! resident and absorbs sustained concurrent traffic — this crate is
//! that serving layer:
//!
//! * [`protocol`] — the hand-rolled length-prefixed wire format
//!   (the workspace stays zero-dep), strict in both directions: every
//!   malformed, truncated, or oversized frame becomes a typed error,
//!   never a panic or a hang;
//! * [`server`] — the daemon: bounded-admission accept loop,
//!   thread-per-worker request loop over `Arc<Oracle>` (whose LRU row
//!   cache is sharded for concurrency in `spsep-core`), per-request
//!   deadlines, graceful drain-and-exit shutdown;
//! * the telemetry plane (`spsep-telemetry` wired through the server):
//!   lock-free counters/gauges/histograms, Prometheus text exposition
//!   via the `Request::Metrics` opcode and an optional plain-HTTP
//!   `GET /metrics` side port, and an always-on flight recorder that
//!   dumps a window of recent requests around slow or erroring ones
//!   (DESIGN.md §14);
//! * [`client`] — a blocking typed client, plus raw-byte escape
//!   hatches for fault injection;
//! * [`load`] — an open-loop load harness with zipfian source skew
//!   and a chaos mode that also scrapes the exposition before/after
//!   the run, feeding the committed `BENCH_serve.json` artifact.
//!
//! The fault model and its tests live in `spsep-testkit`
//! (`wire_corruptions()` and the daemon shutdown suite).

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod load;
pub mod protocol;
pub mod server;
mod telemetry;

pub use client::Client;
pub use load::{run_load, LoadConfig, LoadReport, Mix};
pub use protocol::{Request, Response, WireError, WireStats, MAX_FRAME};
pub use server::{answer_query, install_signal_handlers, ServeConfig, Server, ServerHandle};
