//! The wire protocol of the query daemon: strict length-prefixed frames.
//!
//! Hand-rolled on [`spsep_graph::bytes`] (the workspace vendors no
//! external crates). Every message is one **frame**:
//!
//! ```text
//! u32 LE payload length (1 ..= max_frame)  ·  payload bytes
//! payload = u8 opcode · opcode-specific body (little-endian fields)
//! ```
//!
//! The codec is strict in both directions:
//!
//! * [`read_frame`] distinguishes a clean close at a frame boundary
//!   ([`FrameIn::Eof`]), an idle keep-alive expiry
//!   ([`FrameIn::IdleTimeout`]), and *everything else* — a zero or
//!   oversized length prefix, a connection that dies or stalls
//!   mid-frame — which surfaces as a typed [`SpsepError`], never a
//!   panic and never an unbounded blocking read;
//! * [`decode_request`] / [`decode_response`] run on a bounds-checked
//!   [`ByteReader`] and require the payload to be *exhausted* — a
//!   well-framed payload with trailing garbage is a parse error, not a
//!   silently tolerated extension.
//!
//! Malformed input therefore always lands in one of two buckets the
//! daemon can answer deterministically: a typed
//! [`Response::Error`] frame (when the framing itself is still intact
//! enough to reply) or a clean close. The fault-injection catalog
//! (`spsep_testkit::wire_corruptions`) pins this down entry by entry.

use spsep_graph::bytes::{ByteReader, ByteWriter};
use spsep_graph::SpsepError;
use std::io::{ErrorKind, Read, Write};

/// Default upper bound on a frame payload, in bytes (1 MiB).
///
/// Large enough for a full distance table of a 130k-vertex graph or a
/// ~65k-pair batch; small enough that a hostile length prefix cannot
/// make the daemon allocate unbounded memory.
pub const MAX_FRAME: u32 = 1 << 20;

/// Request opcodes (client → daemon).
mod req_op {
    pub const PING: u8 = 0x01;
    pub const INFO: u8 = 0x02;
    pub const POINT: u8 = 0x03;
    pub const SOURCE: u8 = 0x04;
    pub const BATCH: u8 = 0x05;
    pub const STATS: u8 = 0x06;
    pub const SHUTDOWN: u8 = 0x07;
    pub const METRICS: u8 = 0x08;
}

/// Response opcodes (daemon → client).
mod resp_op {
    pub const PONG: u8 = 0x41;
    pub const INFO: u8 = 0x42;
    pub const DIST: u8 = 0x43;
    pub const TABLE: u8 = 0x44;
    pub const BATCH: u8 = 0x45;
    pub const STATS: u8 = 0x46;
    pub const SHUTDOWN_ACK: u8 = 0x47;
    pub const METRICS: u8 = 0x48;
    pub const ERROR: u8 = 0x7f;
}

/// A query-daemon request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Instance metadata (vertex/edge/shortcut counts, algorithm).
    Info,
    /// Point-to-point distance.
    Point {
        /// Source vertex (0-based).
        source: u64,
        /// Target vertex (0-based).
        target: u64,
    },
    /// Full single-source distance table.
    Source {
        /// Source vertex (0-based).
        source: u64,
    },
    /// Bulk point-to-point distances, answered in input order.
    Batch {
        /// `(source, target)` pairs.
        pairs: Vec<(u64, u64)>,
    },
    /// Serving statistics snapshot (admission, latency, cache shards).
    Stats,
    /// Prometheus text exposition of the daemon's telemetry registry —
    /// the wire-native twin of the plain-HTTP `GET /metrics` side
    /// port.
    Metrics,
    /// Ask the daemon to drain in-flight requests and exit.
    Shutdown,
}

/// Typed wire error codes — the taxonomy every malformed or refused
/// request is answered with.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum WireError {
    /// Malformed frame or payload (bad opcode, truncation, trailing
    /// garbage, oversized length prefix).
    Parse = 1,
    /// Structurally valid request the oracle rejected (e.g. vertex out
    /// of range).
    InvalidQuery = 2,
    /// Admission control shed this connection: the pending-connection
    /// queue is full.
    Overloaded = 3,
    /// The daemon is draining for shutdown and refuses new work.
    ShuttingDown = 4,
    /// An unexpected server-side failure (e.g. a caught worker panic).
    Internal = 5,
}

impl WireError {
    /// Decode a wire error code.
    pub fn from_code(code: u8) -> Option<WireError> {
        match code {
            1 => Some(WireError::Parse),
            2 => Some(WireError::InvalidQuery),
            3 => Some(WireError::Overloaded),
            4 => Some(WireError::ShuttingDown),
            5 => Some(WireError::Internal),
            _ => None,
        }
    }

    /// Stable lowercase label (used in reports and the error taxonomy).
    pub fn label(self) -> &'static str {
        match self {
            WireError::Parse => "parse",
            WireError::InvalidQuery => "invalid_query",
            WireError::Overloaded => "overloaded",
            WireError::ShuttingDown => "shutting_down",
            WireError::Internal => "internal",
        }
    }
}

/// Serving statistics snapshot carried by [`Response::Stats`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireStats {
    /// Connections accepted (admitted to the queue).
    pub accepted: u64,
    /// Connections shed by admission control (answered `Overloaded`).
    pub shed: u64,
    /// Requests answered successfully.
    pub served: u64,
    /// Error responses sent, by taxonomy code (parse, invalid_query,
    /// overloaded, shutting_down, internal — in that order).
    pub errors: [u64; 5],
    /// Connections dropped on an I/O failure or deadline expiry.
    pub io_errors: u64,
    /// Queue-wait percentiles in microseconds (p50, p99, p999),
    /// derived from the daemon's fixed-footprint telemetry histograms.
    pub queue_wait_us: [f64; 3],
    /// Service-time percentiles in microseconds (p50, p99, p999),
    /// derived from the daemon's fixed-footprint telemetry histograms.
    pub service_us: [f64; 3],
    /// Row-cache hits across all shards.
    pub cache_hits: u64,
    /// Row-cache misses across all shards.
    pub cache_misses: u64,
    /// Row-cache evictions across all shards.
    pub cache_evictions: u64,
    /// Number of cache shards.
    pub cache_shards: u32,
    /// Worker threads serving requests.
    pub workers: u32,
}

/// A query-daemon response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Info`].
    Info {
        /// Vertices of the served instance.
        n: u64,
        /// Original edges.
        m: u64,
        /// Shortcut edges in `E⁺`.
        eplus: u64,
        /// Algorithm code (41, 43, or 44).
        algo: u8,
    },
    /// Answer to [`Request::Point`].
    Dist(f64),
    /// Answer to [`Request::Source`] — the full distance table.
    Table(Vec<f64>),
    /// Answer to [`Request::Batch`] — one distance per input pair.
    Batch(Vec<f64>),
    /// Answer to [`Request::Stats`].
    Stats(WireStats),
    /// Answer to [`Request::Metrics`] — the Prometheus text exposition
    /// (UTF-8; clamped by the frame bound like every response).
    Metrics(String),
    /// Answer to [`Request::Shutdown`]; the daemon drains and exits
    /// after sending this.
    ShutdownAck,
    /// A typed error. The connection stays usable after payload-level
    /// parse errors and query rejections; framing-level violations are
    /// answered best-effort and then closed.
    Error {
        /// Taxonomy code.
        code: WireError,
        /// Human-readable description.
        message: String,
    },
}

/// Wrap a payload in a length-prefixed frame.
fn frame(payload: Vec<u8>) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME as usize);
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Encode a request as a complete frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match req {
        Request::Ping => w.u8(req_op::PING),
        Request::Info => w.u8(req_op::INFO),
        Request::Point { source, target } => {
            w.u8(req_op::POINT);
            w.u64(*source);
            w.u64(*target);
        }
        Request::Source { source } => {
            w.u8(req_op::SOURCE);
            w.u64(*source);
        }
        Request::Batch { pairs } => {
            w.u8(req_op::BATCH);
            w.u32(pairs.len() as u32);
            for &(u, v) in pairs {
                w.u64(u);
                w.u64(v);
            }
        }
        Request::Stats => w.u8(req_op::STATS),
        Request::Metrics => w.u8(req_op::METRICS),
        Request::Shutdown => w.u8(req_op::SHUTDOWN),
    }
    frame(w.into_inner())
}

/// Decode a request payload (the frame's length prefix already
/// stripped). Strict: unknown opcodes, truncated fields, overrunning
/// counts, and trailing bytes are all typed [`SpsepError::Parse`]
/// errors.
pub fn decode_request(payload: &[u8]) -> Result<Request, SpsepError> {
    let mut r = ByteReader::new(payload);
    let op = r.u8("request opcode")?;
    let req = match op {
        req_op::PING => Request::Ping,
        req_op::INFO => Request::Info,
        req_op::POINT => Request::Point {
            source: r.u64("point source")?,
            target: r.u64("point target")?,
        },
        req_op::SOURCE => Request::Source {
            source: r.u64("source vertex")?,
        },
        req_op::BATCH => {
            let count = r.u32("batch pair count")? as usize;
            if count.saturating_mul(16) > r.remaining() {
                return Err(SpsepError::parse(format!(
                    "batch declares {count} pairs but only {} payload bytes remain",
                    r.remaining()
                )));
            }
            let mut pairs = Vec::with_capacity(count);
            for i in 0..count {
                let u = r.u64(&format!("batch pair {i} source"))?;
                let v = r.u64(&format!("batch pair {i} target"))?;
                pairs.push((u, v));
            }
            Request::Batch { pairs }
        }
        req_op::STATS => Request::Stats,
        req_op::METRICS => Request::Metrics,
        req_op::SHUTDOWN => Request::Shutdown,
        other => {
            return Err(SpsepError::parse(format!(
                "unknown request opcode 0x{other:02x}"
            )))
        }
    };
    r.expect_exhausted("request payload")?;
    Ok(req)
}

/// Encode a response as a complete frame (length prefix included).
///
/// # Errors
///
/// [`SpsepError::Parse`] when the response would not fit in `max_frame`
/// bytes (e.g. a distance table of a graph too large for the protocol)
/// — the daemon turns this into a typed `InvalidQuery` wire error
/// instead of sending a frame the peer must reject.
pub fn encode_response(resp: &Response, max_frame: u32) -> Result<Vec<u8>, SpsepError> {
    let mut w = ByteWriter::new();
    match resp {
        Response::Pong => w.u8(resp_op::PONG),
        Response::Info { n, m, eplus, algo } => {
            w.u8(resp_op::INFO);
            w.u64(*n);
            w.u64(*m);
            w.u64(*eplus);
            w.u8(*algo);
        }
        Response::Dist(d) => {
            w.u8(resp_op::DIST);
            w.f64(*d);
        }
        Response::Table(row) => {
            w.u8(resp_op::TABLE);
            w.u64(row.len() as u64);
            for &d in row {
                w.f64(d);
            }
        }
        Response::Batch(dists) => {
            w.u8(resp_op::BATCH);
            w.u32(dists.len() as u32);
            for &d in dists {
                w.f64(d);
            }
        }
        Response::Stats(s) => {
            w.u8(resp_op::STATS);
            w.u64(s.accepted);
            w.u64(s.shed);
            w.u64(s.served);
            for e in s.errors {
                w.u64(e);
            }
            w.u64(s.io_errors);
            for q in s.queue_wait_us {
                w.f64(q);
            }
            for q in s.service_us {
                w.f64(q);
            }
            w.u64(s.cache_hits);
            w.u64(s.cache_misses);
            w.u64(s.cache_evictions);
            w.u32(s.cache_shards);
            w.u32(s.workers);
        }
        Response::Metrics(text) => {
            w.u8(resp_op::METRICS);
            let bytes = text.as_bytes();
            w.u32(bytes.len() as u32);
            w.bytes(bytes);
        }
        Response::ShutdownAck => w.u8(resp_op::SHUTDOWN_ACK),
        Response::Error { code, message } => {
            w.u8(resp_op::ERROR);
            w.u8(*code as u8);
            let bytes = message.as_bytes();
            // Clamp hostile/runaway messages so the error itself always
            // frames.
            let len = bytes.len().min(4096);
            w.u32(len as u32);
            w.bytes(&bytes[..len]);
        }
    }
    let payload = w.into_inner();
    if payload.len() > max_frame as usize {
        return Err(SpsepError::parse(format!(
            "response of {} bytes exceeds the {max_frame}-byte frame bound",
            payload.len()
        )));
    }
    Ok(frame(payload))
}

/// Decode a response payload (the frame's length prefix already
/// stripped).
pub fn decode_response(payload: &[u8]) -> Result<Response, SpsepError> {
    let mut r = ByteReader::new(payload);
    let op = r.u8("response opcode")?;
    let resp = match op {
        resp_op::PONG => Response::Pong,
        resp_op::INFO => Response::Info {
            n: r.u64("info n")?,
            m: r.u64("info m")?,
            eplus: r.u64("info eplus")?,
            algo: r.u8("info algo")?,
        },
        resp_op::DIST => Response::Dist(r.f64("distance")?),
        resp_op::TABLE => {
            let count = r.count("table length", 8)?;
            let mut row = Vec::with_capacity(count);
            for _ in 0..count {
                row.push(r.f64("table entry")?);
            }
            Response::Table(row)
        }
        resp_op::BATCH => {
            let count = r.u32("batch answer count")? as usize;
            if count.saturating_mul(8) > r.remaining() {
                return Err(SpsepError::parse(format!(
                    "batch answer declares {count} entries but only {} bytes remain",
                    r.remaining()
                )));
            }
            let mut dists = Vec::with_capacity(count);
            for _ in 0..count {
                dists.push(r.f64("batch answer")?);
            }
            Response::Batch(dists)
        }
        resp_op::STATS => {
            let mut s = WireStats {
                accepted: r.u64("stats accepted")?,
                shed: r.u64("stats shed")?,
                served: r.u64("stats served")?,
                ..WireStats::default()
            };
            for e in &mut s.errors {
                *e = r.u64("stats error count")?;
            }
            s.io_errors = r.u64("stats io errors")?;
            for q in &mut s.queue_wait_us {
                *q = r.f64("stats queue wait")?;
            }
            for q in &mut s.service_us {
                *q = r.f64("stats service time")?;
            }
            s.cache_hits = r.u64("stats cache hits")?;
            s.cache_misses = r.u64("stats cache misses")?;
            s.cache_evictions = r.u64("stats cache evictions")?;
            s.cache_shards = r.u32("stats cache shards")?;
            s.workers = r.u32("stats workers")?;
            Response::Stats(s)
        }
        resp_op::METRICS => {
            let len = r.u32("metrics text length")? as usize;
            let bytes = r.take(len, "metrics text")?;
            let text = std::str::from_utf8(bytes)
                .map_err(|_| SpsepError::parse("metrics text is not UTF-8"))?;
            Response::Metrics(text.to_string())
        }
        resp_op::SHUTDOWN_ACK => Response::ShutdownAck,
        resp_op::ERROR => {
            let code = r.u8("error code")?;
            let code = WireError::from_code(code)
                .ok_or_else(|| SpsepError::parse(format!("unknown error code {code}")))?;
            let len = r.u32("error message length")? as usize;
            let bytes = r.take(len, "error message")?;
            Response::Error {
                code,
                message: String::from_utf8_lossy(bytes).into_owned(),
            }
        }
        other => {
            return Err(SpsepError::parse(format!(
                "unknown response opcode 0x{other:02x}"
            )))
        }
    };
    r.expect_exhausted("response payload")?;
    Ok(resp)
}

/// Outcome of reading one frame from a connection.
#[derive(Debug)]
pub enum FrameIn {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly at a frame boundary.
    Eof,
    /// No new frame arrived within the read deadline while the stream
    /// was at a frame boundary — the keep-alive expired. The connection
    /// should be closed without an error.
    IdleTimeout,
}

/// `true` for the error kinds a timed-out blocking read reports.
fn is_timeout(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// What happened at a frame boundary while trying to read the first
/// byte of the next frame.
#[derive(Debug)]
pub enum FrameStart {
    /// The byte arrived; the frame has started.
    Started(u8),
    /// Clean EOF before any byte of the next frame.
    Eof,
    /// The read deadline expired before any byte of the next frame.
    Idle,
}

/// Fill `buf` completely. Once any byte of a frame has been read, EOF
/// and timeouts become typed [`SpsepError::Parse`] errors — a peer
/// that dies or stalls mid-frame leaves the stream unrecoverable.
fn read_full(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), SpsepError> {
    let mut read = 0usize;
    while read < buf.len() {
        match r.read(&mut buf[read..]) {
            Ok(0) => {
                return Err(SpsepError::parse(format!(
                    "connection closed after {read} of {} bytes of {what}",
                    buf.len()
                )));
            }
            Ok(k) => read += k,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => {
                return Err(SpsepError::parse(format!(
                    "read deadline expired after {read} of {} bytes of {what}",
                    buf.len()
                )));
            }
            Err(e) => return Err(SpsepError::Io(e)),
        }
    }
    Ok(())
}

/// Read the first byte of the next frame, classifying the benign
/// boundary outcomes (clean close, idle keep-alive expiry) instead of
/// treating them as errors. The stream's current read timeout is the
/// poll interval — the daemon sets it short here so shutdown can
/// interrupt idle keep-alive waits, then restores the full per-request
/// deadline before [`read_frame_rest`].
///
/// # Errors
///
/// [`SpsepError::Io`] on hard transport failures only.
pub fn poll_frame_start(r: &mut impl Read) -> Result<FrameStart, SpsepError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(FrameStart::Eof),
            Ok(_) => return Ok(FrameStart::Started(first[0])),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(e.kind()) => return Ok(FrameStart::Idle),
            Err(e) => return Err(SpsepError::Io(e)),
        }
    }
}

/// Read the remainder of a frame whose first length-prefix byte was
/// already consumed by [`poll_frame_start`]. The stream is mid-frame
/// throughout: EOF and timeouts are framing violations here.
///
/// # Errors
///
/// [`SpsepError::Parse`] for any framing violation — a zero or
/// oversized length prefix, EOF or a stalled peer mid-frame;
/// [`SpsepError::Io`] for hard transport failures.
pub fn read_frame_rest(
    r: &mut impl Read,
    first: u8,
    max_frame: u32,
) -> Result<Vec<u8>, SpsepError> {
    let mut len_buf = [0u8; 4];
    len_buf[0] = first;
    read_full(r, &mut len_buf[1..], "frame length prefix")?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(SpsepError::parse("zero-length frame"));
    }
    if len > max_frame {
        return Err(SpsepError::parse(format!(
            "frame length {len} exceeds the {max_frame}-byte bound"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    read_full(r, &mut payload, "frame payload")?;
    Ok(payload)
}

/// Read one frame. The stream's read timeout doubles as both the idle
/// keep-alive (at a frame boundary) and the per-request read deadline
/// (mid-frame).
///
/// # Errors
///
/// [`SpsepError::Parse`] for any framing violation — a zero or
/// oversized length prefix, EOF or a stalled peer mid-frame;
/// [`SpsepError::Io`] for hard transport failures. Either way the
/// connection must be closed; only `Ok(FrameIn::Frame(_))` leaves it
/// usable.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<FrameIn, SpsepError> {
    // Only the very first byte gets boundary treatment: a timeout or
    // EOF after 1–3 prefix bytes is mid-frame and therefore fatal.
    match poll_frame_start(r)? {
        FrameStart::Eof => Ok(FrameIn::Eof),
        FrameStart::Idle => Ok(FrameIn::IdleTimeout),
        FrameStart::Started(b) => Ok(FrameIn::Frame(read_frame_rest(r, b, max_frame)?)),
    }
}

/// Write one already-encoded frame and flush it.
///
/// # Errors
///
/// [`SpsepError::Io`] on any transport failure, including an expired
/// write deadline (a dead or unreading peer cannot pin the writer).
pub fn write_frame(w: &mut impl Write, bytes: &[u8]) -> Result<(), SpsepError> {
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let bytes = encode_request(&req);
        let payload = &bytes[4..];
        assert_eq!(
            u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize,
            payload.len()
        );
        assert_eq!(decode_request(payload).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let bytes = encode_response(&resp, MAX_FRAME).unwrap();
        assert_eq!(decode_response(&bytes[4..]).unwrap(), resp);
    }

    #[test]
    fn every_request_roundtrips() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Info);
        roundtrip_req(Request::Point {
            source: 7,
            target: u64::MAX,
        });
        roundtrip_req(Request::Source { source: 0 });
        roundtrip_req(Request::Batch { pairs: vec![] });
        roundtrip_req(Request::Batch {
            pairs: vec![(1, 2), (3, 4), (0, 0)],
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Shutdown);
    }

    #[test]
    fn every_response_roundtrips() {
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::Info {
            n: 100,
            m: 400,
            eplus: 950,
            algo: 41,
        });
        roundtrip_resp(Response::Dist(f64::INFINITY));
        roundtrip_resp(Response::Dist(-0.0));
        roundtrip_resp(Response::Table(vec![0.0, 1.5, f64::INFINITY]));
        roundtrip_resp(Response::Batch(vec![2.5; 17]));
        roundtrip_resp(Response::Stats(WireStats {
            accepted: 10,
            shed: 2,
            served: 100,
            errors: [1, 2, 3, 4, 5],
            io_errors: 6,
            queue_wait_us: [1.0, 2.0, 2.5],
            service_us: [3.0, 4.0, 4.5],
            cache_hits: 7,
            cache_misses: 8,
            cache_evictions: 9,
            cache_shards: 8,
            workers: 4,
        }));
        roundtrip_resp(Response::Metrics(
            "# TYPE spsep_served_total counter\nspsep_served_total 12\n".to_string(),
        ));
        roundtrip_resp(Response::ShutdownAck);
        roundtrip_resp(Response::Error {
            code: WireError::Overloaded,
            message: "queue full".into(),
        });
    }

    #[test]
    fn dist_roundtrip_is_bit_exact() {
        let d = f64::from_bits(0x7ff0_0000_0000_0001); // a signaling-ish NaN pattern
        let bytes = encode_response(&Response::Dist(d), MAX_FRAME).unwrap();
        match decode_response(&bytes[4..]).unwrap() {
            Response::Dist(out) => assert_eq!(out.to_bits(), d.to_bits()),
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn unknown_opcode_is_a_parse_error() {
        assert!(matches!(
            decode_request(&[0xee]),
            Err(SpsepError::Parse { .. })
        ));
        assert!(matches!(
            decode_response(&[0x00]),
            Err(SpsepError::Parse { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_a_parse_error() {
        let mut bytes = encode_request(&Request::Ping);
        bytes.push(0xaa); // extend payload…
        let err = decode_request(&bytes[4..]).unwrap_err();
        assert!(matches!(err, SpsepError::Parse { .. }), "{err}");
    }

    #[test]
    fn truncated_payload_is_a_parse_error() {
        let bytes = encode_request(&Request::Point {
            source: 1,
            target: 2,
        });
        let payload = &bytes[4..];
        for cut in 1..payload.len() {
            let err = decode_request(&payload[..cut]).unwrap_err();
            assert!(matches!(err, SpsepError::Parse { .. }), "cut {cut}: {err}");
        }
    }

    #[test]
    fn hostile_batch_count_is_rejected_without_allocation() {
        let mut w = ByteWriter::new();
        w.u8(0x05);
        w.u32(u32::MAX); // declares 4 billion pairs in a tiny payload
        let err = decode_request(&w.into_inner()).unwrap_err();
        assert!(matches!(err, SpsepError::Parse { .. }), "{err}");
    }

    #[test]
    fn frame_reader_enforces_the_length_bound() {
        // Oversized length prefix.
        let mut buf: Vec<u8> = (MAX_FRAME + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut buf.as_slice(), MAX_FRAME).unwrap_err();
        assert!(matches!(err, SpsepError::Parse { .. }), "{err}");

        // Zero-length frame.
        let buf = 0u32.to_le_bytes().to_vec();
        let err = read_frame(&mut buf.as_slice(), MAX_FRAME).unwrap_err();
        assert!(matches!(err, SpsepError::Parse { .. }), "{err}");

        // Clean EOF at the boundary.
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut { empty }, MAX_FRAME).unwrap(),
            FrameIn::Eof
        ));

        // Truncated mid-frame: a prefix promising more than is there.
        let mut buf = 100u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&[1, 2, 3]);
        let err = read_frame(&mut buf.as_slice(), MAX_FRAME).unwrap_err();
        assert!(matches!(err, SpsepError::Parse { .. }), "{err}");
    }

    #[test]
    fn oversized_response_is_a_typed_error() {
        let resp = Response::Table(vec![0.0; 4096]);
        let err = encode_response(&resp, 1024).unwrap_err();
        assert!(matches!(err, SpsepError::Parse { .. }), "{err}");
    }

    #[test]
    fn error_messages_are_clamped() {
        let resp = Response::Error {
            code: WireError::Parse,
            message: "x".repeat(100_000),
        };
        let bytes = encode_response(&resp, MAX_FRAME).unwrap();
        match decode_response(&bytes[4..]).unwrap() {
            Response::Error { message, .. } => assert_eq!(message.len(), 4096),
            other => panic!("wrong response {other:?}"),
        }
    }
}
