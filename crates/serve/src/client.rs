//! A blocking client for the daemon protocol.
//!
//! Used by `spsep-cli load`, the fault-injection suites, and anything
//! else that wants typed request/response access to a running daemon.
//! The escape hatches ([`Client::send_raw`], [`Client::shutdown_write`])
//! exist so the chaos harness can put *exact* malformed bytes and
//! mid-stream disconnects on the wire through the same connection
//! type.

use crate::protocol::{self, FrameIn, Request, Response, MAX_FRAME};
use spsep_graph::SpsepError;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to a query daemon.
pub struct Client {
    stream: TcpStream,
    max_frame: u32,
}

impl Client {
    /// Connect with a connect/read/write deadline of `timeout` and the
    /// default frame bound.
    ///
    /// # Errors
    ///
    /// [`SpsepError::Io`] when the daemon is unreachable.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Client, SpsepError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| SpsepError::parse("daemon address resolves to nothing"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_frame: MAX_FRAME,
        })
    }

    /// Send one request and read its response.
    ///
    /// # Errors
    ///
    /// [`SpsepError::Io`] on transport failure; [`SpsepError::Parse`]
    /// when the daemon closes mid-frame or answers with bytes the codec
    /// rejects.
    pub fn request(&mut self, req: &Request) -> Result<Response, SpsepError> {
        let bytes = protocol::encode_request(req);
        protocol::write_frame(&mut self.stream, &bytes)?;
        self.read_response()
    }

    /// Read one response frame (after [`Client::request`] or
    /// [`Client::send_raw`]).
    ///
    /// # Errors
    ///
    /// [`SpsepError::Parse`] if the daemon closed the connection or the
    /// response does not decode; [`SpsepError::Io`] on transport
    /// failure.
    pub fn read_response(&mut self) -> Result<Response, SpsepError> {
        match protocol::read_frame(&mut self.stream, self.max_frame)? {
            FrameIn::Frame(payload) => protocol::decode_response(&payload),
            FrameIn::Eof => Err(SpsepError::parse(
                "daemon closed the connection before responding",
            )),
            FrameIn::IdleTimeout => Err(SpsepError::parse(
                "read deadline expired waiting for the daemon's response",
            )),
        }
    }

    /// Try to read one response, distinguishing a clean close
    /// (`Ok(None)`) from a decoded frame — what the corruption suites
    /// assert with ("typed error *or* clean close").
    ///
    /// # Errors
    ///
    /// [`SpsepError::Parse`] on an undecodable or truncated response;
    /// [`SpsepError::Io`] on transport failure.
    pub fn read_response_or_close(&mut self) -> Result<Option<Response>, SpsepError> {
        match protocol::read_frame(&mut self.stream, self.max_frame)? {
            FrameIn::Frame(payload) => Ok(Some(protocol::decode_response(&payload)?)),
            FrameIn::Eof | FrameIn::IdleTimeout => Ok(None),
        }
    }

    /// Write raw bytes — frames, partial frames, or garbage — without
    /// any codec involvement. The chaos injection primitive.
    ///
    /// # Errors
    ///
    /// [`SpsepError::Io`] on transport failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), SpsepError> {
        protocol::write_frame(&mut self.stream, bytes)
    }

    /// Half-close the write side — a mid-stream disconnect as the
    /// daemon sees it.
    ///
    /// # Errors
    ///
    /// [`SpsepError::Io`] if the socket refuses the shutdown.
    pub fn shutdown_write(&mut self) -> Result<(), SpsepError> {
        self.stream.shutdown(std::net::Shutdown::Write)?;
        Ok(())
    }
}
