//! Open-loop load harness with zipfian skew and chaos injection.
//!
//! **Open-loop** means arrivals are scheduled on a fixed clock
//! (`rate` requests/second, spread round-robin over `connections`
//! independent connections) and latency is measured from the
//! *scheduled arrival*, not from when the client got around to
//! sending. A daemon that falls behind therefore shows the queueing
//! delay it actually inflicts — closed-loop harnesses hide exactly
//! this (coordinated omission).
//!
//! The query stream mixes point, single-source, and batch requests
//! with zipfian-skewed sources (hot sources exercise the cache shards;
//! the tail defeats them). Chaos mode replaces a fraction of requests
//! with protocol corruptions and mid-stream disconnects — the daemon
//! must answer every one with a typed error or a clean close while
//! healthy traffic continues on the other connections.

use crate::client::Client;
use crate::protocol::{Request, Response, WireStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spsep_core::Oracle;
use spsep_graph::SpsepError;
use spsep_pram::Metrics;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Relative weights of the request kinds in the generated stream.
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    /// Point-to-point queries.
    pub point: u32,
    /// Full single-source table queries.
    pub source: u32,
    /// Batch queries ([`LoadConfig::batch_size`] pairs each).
    pub batch: u32,
}

impl Default for Mix {
    fn default() -> Mix {
        Mix {
            point: 8,
            source: 1,
            batch: 1,
        }
    }
}

/// Load-harness configuration.
#[derive(Clone)]
pub struct LoadConfig {
    /// Daemon address.
    pub addr: String,
    /// Target arrival rate, requests per second (all connections
    /// combined).
    pub rate: f64,
    /// How long to generate arrivals for.
    pub duration: Duration,
    /// Concurrent connections; arrivals are assigned round-robin.
    pub connections: usize,
    /// Request-kind mix.
    pub mix: Mix,
    /// Pairs per batch request.
    pub batch_size: usize,
    /// Zipf exponent θ for source skew (0 = uniform). Source `k` is
    /// drawn with probability ∝ 1/(k+1)^θ over the vertex range.
    pub zipf_theta: f64,
    /// Number of vertices in the served instance (the sampling range).
    pub n: usize,
    /// Probability that a generated request is replaced by a chaos
    /// injection (0 disables chaos).
    pub chaos: f64,
    /// RNG seed — the schedule, query stream, and injections are fully
    /// deterministic given the seed.
    pub seed: u64,
    /// Per-request client deadline.
    pub timeout: Duration,
    /// When set, every point/source/batch answer is compared
    /// bit-for-bit against this oracle; mismatches are counted as
    /// `verify_mismatch` (and fail the harness's callers).
    pub verify: Option<Arc<Oracle>>,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: String::new(),
            rate: 500.0,
            duration: Duration::from_secs(2),
            connections: 4,
            mix: Mix::default(),
            batch_size: 8,
            zipf_theta: 0.8,
            n: 1,
            chaos: 0.0,
            seed: 0x5eed,
            timeout: Duration::from_secs(5),
            verify: None,
        }
    }
}

/// What the harness observed for the whole run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests scheduled (including chaos injections).
    pub scheduled: u64,
    /// Requests answered successfully.
    pub ok: u64,
    /// Chaos injections sent.
    pub chaos_sent: u64,
    /// Chaos injections that ended in a typed error or clean close
    /// (the only acceptable outcomes).
    pub chaos_handled: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Sustained throughput: `ok / elapsed`.
    pub qps: f64,
    /// Latency percentiles over successful requests, microseconds:
    /// p50, p99, p999 (open-loop: measured from scheduled arrival).
    pub latency_us: [f64; 3],
    /// Error taxonomy: wire-error labels, transport failures
    /// (`io`), verification failures (`verify_mismatch`), and
    /// unexpected chaos outcomes (`chaos_unhandled`).
    pub errors: BTreeMap<String, u64>,
    /// The daemon's own final stats (fetched over the wire after the
    /// run; `None` if the daemon became unreachable).
    pub daemon: Option<WireStats>,
    /// Monotone-sample deltas from the daemon's Prometheus exposition,
    /// scraped over the `Request::Metrics` opcode immediately before
    /// and after the run: canonical sample id → increase. Only samples
    /// that moved are kept. Empty when either scrape failed.
    pub metrics_delta: BTreeMap<String, f64>,
    /// Whether both scraped expositions passed the strict validator
    /// (`None` when a scrape itself failed, e.g. telemetry-less
    /// daemon builds).
    pub metrics_valid: Option<bool>,
}

impl LoadReport {
    /// Total requests that did not complete successfully.
    pub fn failed(&self) -> u64 {
        self.errors.values().sum()
    }
}

/// One scheduled arrival.
struct Arrival {
    /// Offset from the run start.
    at: Duration,
    action: Action,
}

#[derive(Debug)]
enum Action {
    Query(Request),
    Chaos(ChaosKind),
}

/// The inline chaos catalog — the same corruption *styles* as
/// `spsep_testkit::wire_corruptions` (which is the authoritative,
/// exhaustively-tested catalog; this copy keeps the load harness free
/// of a dev-only dependency).
#[derive(Clone, Copy, Debug)]
enum ChaosKind {
    /// A frame whose length prefix promises more bytes than are sent,
    /// followed by a half-close: mid-frame disconnect.
    TruncatedFrame,
    /// A length prefix beyond the frame bound.
    OversizedPrefix,
    /// A well-framed payload with an unassigned opcode.
    BadOpcode,
    /// Random bytes that do not even frame.
    Garbage,
    /// A valid request, then a disconnect before reading the answer.
    DisconnectAfterSend,
}

const CHAOS_KINDS: [ChaosKind; 5] = [
    ChaosKind::TruncatedFrame,
    ChaosKind::OversizedPrefix,
    ChaosKind::BadOpcode,
    ChaosKind::Garbage,
    ChaosKind::DisconnectAfterSend,
];

/// Cumulative zipfian distribution over `0..n` with exponent `theta`.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().unwrap_or(&1.0);
        let u = rng.gen_range(0.0..total);
        // First index whose cumulative weight exceeds the draw.
        self.cumulative.partition_point(|&c| c <= u)
    }
}

/// Build the full deterministic arrival schedule up front.
fn build_schedule(config: &LoadConfig) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(config.n.max(1), config.zipf_theta.max(0.0));
    let total = (config.rate * config.duration.as_secs_f64()).floor() as u64;
    let gap = Duration::from_secs_f64(1.0 / config.rate.max(1e-9));
    let mix_total = (config.mix.point + config.mix.source + config.mix.batch).max(1);
    let mut schedule = Vec::with_capacity(total as usize);
    for i in 0..total {
        let at = gap * (i as u32);
        let action = if config.chaos > 0.0 && rng.gen_bool(config.chaos) {
            Action::Chaos(CHAOS_KINDS[rng.gen_range(0..CHAOS_KINDS.len())])
        } else {
            let roll = rng.gen_range(0..mix_total);
            let req = if roll < config.mix.point {
                Request::Point {
                    source: zipf.sample(&mut rng) as u64,
                    target: rng.gen_range(0..config.n.max(1)) as u64,
                }
            } else if roll < config.mix.point + config.mix.source {
                Request::Source {
                    source: zipf.sample(&mut rng) as u64,
                }
            } else {
                let pairs = (0..config.batch_size.max(1))
                    .map(|_| {
                        (
                            zipf.sample(&mut rng) as u64,
                            rng.gen_range(0..config.n.max(1)) as u64,
                        )
                    })
                    .collect();
                Request::Batch { pairs }
            };
            Action::Query(req)
        };
        schedule.push(Arrival { at, action });
    }
    schedule
}

/// Per-connection tallies, merged after the join.
#[derive(Default)]
struct ConnOutcome {
    ok: u64,
    chaos_sent: u64,
    chaos_handled: u64,
    latencies_us: Vec<u64>,
    errors: BTreeMap<String, u64>,
}

impl ConnOutcome {
    fn count_error(&mut self, label: &str) {
        *self.errors.entry(label.to_string()).or_insert(0) += 1;
    }
}

/// Compare a response bit-for-bit against direct oracle answers.
fn verify_response(
    oracle: &Oracle,
    metrics: &Metrics,
    req: &Request,
    resp: &Response,
) -> bool {
    match (req, resp) {
        (Request::Point { source, target }, Response::Dist(d)) => oracle
            .distance(*source as usize, *target as usize, metrics)
            .map(|want| want.to_bits() == d.to_bits())
            .unwrap_or(false),
        (Request::Source { source }, Response::Table(row)) => oracle
            .source_table(*source as usize, metrics)
            .map(|want| {
                want.len() == row.len()
                    && want
                        .iter()
                        .zip(row)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
            })
            .unwrap_or(false),
        (Request::Batch { pairs }, Response::Batch(dists)) => {
            let pairs: Vec<(usize, usize)> = pairs
                .iter()
                .map(|&(u, v)| (u as usize, v as usize))
                .collect();
            oracle
                .batch(&pairs, metrics)
                .map(|want| {
                    want.len() == dists.len()
                        && want
                            .iter()
                            .zip(dists)
                            .all(|(a, b)| a.to_bits() == b.to_bits())
                })
                .unwrap_or(false)
        }
        _ => false,
    }
}

/// Send one chaos injection on a dedicated throwaway connection (so
/// the connection-poisoning corruptions cannot take healthy traffic
/// down with them). Returns `true` when the daemon's reaction was a
/// typed error or a clean close.
fn inject_chaos(config: &LoadConfig, kind: ChaosKind, rng: &mut StdRng) -> bool {
    let Ok(mut client) = Client::connect(config.addr.as_str(), config.timeout) else {
        return false;
    };
    let outcome = match kind {
        ChaosKind::TruncatedFrame => {
            let mut bytes = 64u32.to_le_bytes().to_vec();
            bytes.extend_from_slice(&[0x03; 7]); // 7 of the promised 64
            let _ = client.send_raw(&bytes);
            let _ = client.shutdown_write();
            client.read_response_or_close()
        }
        ChaosKind::OversizedPrefix => {
            let bytes = u32::MAX.to_le_bytes().to_vec();
            if client.send_raw(&bytes).is_err() {
                return true; // daemon already slammed the door: clean
            }
            client.read_response_or_close()
        }
        ChaosKind::BadOpcode => {
            let mut bytes = 1u32.to_le_bytes().to_vec();
            bytes.push(0xee);
            let _ = client.send_raw(&bytes);
            client.read_response_or_close()
        }
        ChaosKind::Garbage => {
            let mut bytes = vec![0u8; 32];
            for b in &mut bytes {
                *b = rng.gen_range(0..=255u32) as u8;
            }
            let _ = client.send_raw(&bytes);
            let _ = client.shutdown_write();
            client.read_response_or_close()
        }
        ChaosKind::DisconnectAfterSend => {
            let req = Request::Point {
                source: rng.gen_range(0..config.n.max(1)) as u64,
                target: rng.gen_range(0..config.n.max(1)) as u64,
            };
            let bytes = crate::protocol::encode_request(&req);
            let _ = client.send_raw(&bytes);
            drop(client); // full disconnect before the answer
            return true;
        }
    };
    matches!(
        outcome,
        Ok(None) | Ok(Some(Response::Error { .. })) | Err(SpsepError::Io(_))
    )
}

/// The per-connection send loop over its slice of the schedule.
fn run_connection(
    config: &LoadConfig,
    arrivals: &[Arrival],
    start: Instant,
    seed: u64,
) -> ConnOutcome {
    let mut out = ConnOutcome::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let metrics = Metrics::new();
    let mut client: Option<Client> = None;
    for arrival in arrivals {
        // Open-loop pacing: wait for the scheduled instant, never for
        // the previous response.
        let now = start.elapsed();
        if now < arrival.at {
            std::thread::sleep(arrival.at - now);
        }
        match &arrival.action {
            Action::Chaos(kind) => {
                out.chaos_sent += 1;
                if inject_chaos(config, *kind, &mut rng) {
                    out.chaos_handled += 1;
                } else {
                    out.count_error("chaos_unhandled");
                }
            }
            Action::Query(req) => {
                let c = match &mut client {
                    Some(c) => c,
                    None => match Client::connect(config.addr.as_str(), config.timeout) {
                        Ok(c) => client.insert(c),
                        Err(_) => {
                            out.count_error("io");
                            continue;
                        }
                    },
                };
                match c.request(req) {
                    Ok(Response::Error { code, .. }) => {
                        out.count_error(code.label());
                    }
                    Ok(resp) => {
                        if let Some(oracle) = &config.verify {
                            if !verify_response(oracle, &metrics, req, &resp) {
                                out.count_error("verify_mismatch");
                                continue;
                            }
                        }
                        out.ok += 1;
                        let latency = start.elapsed().saturating_sub(arrival.at);
                        out.latencies_us
                            .push(latency.as_micros().min(u64::MAX as u128) as u64);
                    }
                    Err(_) => {
                        out.count_error("io");
                        client = None; // reconnect on the next arrival
                    }
                }
            }
        }
    }
    out
}

/// Percentile over an unsorted sample set (nearest-rank); 0 when
/// empty.
fn percentile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * q).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1] as f64
}

/// Run the load harness against a daemon and collect the report.
///
/// Deterministic schedule, skew, and chaos per [`LoadConfig::seed`];
/// wall-clock results obviously vary with the machine.
///
/// # Errors
///
/// [`SpsepError::Io`] only when the daemon is unreachable at startup
/// (a liveness ping fails); per-request failures are *reported*, not
/// raised.
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, SpsepError> {
    Client::connect(config.addr.as_str(), config.timeout)?
        .request(&Request::Ping)?;
    let scrape_before = scrape_metrics(config);
    let schedule = build_schedule(config);
    let conns = config.connections.max(1);
    // Round-robin assignment keeps each connection's arrivals in
    // schedule order.
    let mut per_conn: Vec<Vec<Arrival>> = (0..conns).map(|_| Vec::new()).collect();
    for (i, arrival) in schedule.into_iter().enumerate() {
        per_conn[i % conns].push(arrival);
    }
    let scheduled: u64 = per_conn.iter().map(|v| v.len() as u64).sum();

    let start = Instant::now();
    let outcomes: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_conn
            .iter()
            .enumerate()
            .map(|(i, arrivals)| {
                let seed = config.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
                scope.spawn(move || run_connection(config, arrivals, start, seed))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let elapsed = start.elapsed();

    let mut report = LoadReport {
        scheduled,
        elapsed,
        ..LoadReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    for out in outcomes {
        report.ok += out.ok;
        report.chaos_sent += out.chaos_sent;
        report.chaos_handled += out.chaos_handled;
        latencies.extend(out.latencies_us);
        for (label, count) in out.errors {
            *report.errors.entry(label).or_insert(0) += count;
        }
    }
    latencies.sort_unstable();
    report.qps = report.ok as f64 / elapsed.as_secs_f64().max(1e-9);
    report.latency_us = [
        percentile_us(&latencies, 0.50),
        percentile_us(&latencies, 0.99),
        percentile_us(&latencies, 0.999),
    ];
    report.daemon = Client::connect(config.addr.as_str(), config.timeout)
        .and_then(|mut c| c.request(&Request::Stats))
        .ok()
        .and_then(|resp| match resp {
            Response::Stats(s) => Some(s),
            _ => None,
        });
    let scrape_after = scrape_metrics(config);
    report.metrics_valid = match (&scrape_before, &scrape_after) {
        (Some((_, a)), Some((_, b))) => Some(*a && *b),
        _ => None,
    };
    if let (Some((before, _)), Some((after, _))) = (scrape_before, scrape_after) {
        for (id, now) in after {
            let delta = now - before.get(&id).copied().unwrap_or(0.0);
            if delta != 0.0 {
                report.metrics_delta.insert(id, delta);
            }
        }
    }
    Ok(report)
}

/// Scrape the daemon's exposition over the wire opcode: the monotone
/// samples (for deltas) plus the strict validator's verdict.
fn scrape_metrics(config: &LoadConfig) -> Option<(BTreeMap<String, f64>, bool)> {
    let text = Client::connect(config.addr.as_str(), config.timeout)
        .and_then(|mut c| c.request(&Request::Metrics))
        .ok()
        .and_then(|resp| match resp {
            Response::Metrics(text) => Some(text),
            _ => None,
        })?;
    let valid = spsep_telemetry::validate_prometheus_text(&text).is_ok();
    let samples = spsep_telemetry::counter_samples(&text).unwrap_or_default();
    Some((samples, valid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_paced() {
        let config = LoadConfig {
            rate: 1000.0,
            duration: Duration::from_millis(100),
            n: 50,
            chaos: 0.2,
            ..LoadConfig::default()
        };
        let a = build_schedule(&config);
        let b = build_schedule(&config);
        assert_eq!(a.len(), 100);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            match (&x.action, &y.action) {
                (Action::Query(p), Action::Query(q)) => assert_eq!(p, q),
                (Action::Chaos(_), Action::Chaos(_)) => {}
                other => panic!("schedules diverged: {other:?}"),
            }
        }
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        let chaos = a
            .iter()
            .filter(|ar| matches!(ar.action, Action::Chaos(_)))
            .count();
        assert!(chaos > 0, "chaos 0.2 over 100 arrivals produced none");
    }

    #[test]
    fn zipf_skews_toward_small_sources() {
        let zipf = Zipf::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0usize;
        const DRAWS: usize = 2000;
        for _ in 0..DRAWS {
            let s = zipf.sample(&mut rng);
            assert!(s < 1000);
            if s < 10 {
                head += 1;
            }
        }
        assert!(
            head > DRAWS / 4,
            "zipf(1.1): only {head}/{DRAWS} draws in the head"
        );
    }

    #[test]
    fn uniform_theta_zero_covers_the_range() {
        let zipf = Zipf::new(8, 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[zipf.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampling missed a source");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 0.50), 50.0);
        assert_eq!(percentile_us(&sorted, 0.99), 99.0);
        assert_eq!(percentile_us(&sorted, 0.999), 100.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
    }
}
