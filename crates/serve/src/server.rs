//! The daemon: bounded-admission TCP listener, thread-per-worker
//! request loop, live telemetry plane, graceful shutdown.
//!
//! ```text
//!          accept loop (main thread, non-blocking poll)
//!                 │  queue full → Overloaded frame, close (shed)
//!                 │  draining   → ShuttingDown frame, close
//!                 ▼
//!        bounded connection queue (Mutex<VecDeque> + Condvar)
//!                 │  pop ⇒ queue-wait sample
//!                 ▼
//!      worker 0 … worker W−1   (thread per worker, catch_unwind)
//!                 │  framed requests, per-request deadlines
//!                 │  per-request: counters, histograms, flight record
//!                 ▼
//!        Arc<Oracle> — sharded LRU row cache (spsep-core)
//!
//!   side port (optional): GET /metrics → Prometheus text exposition
//! ```
//!
//! Robustness invariants (pinned by `spsep-testkit`'s wire-corruption
//! and shutdown suites):
//!
//! * **no panic escapes a worker** — connection handlers run under
//!   [`std::panic::catch_unwind`]; a panic answers `Internal` and
//!   closes only that connection;
//! * **no hung connection** — every socket carries read/write
//!   deadlines, so a dead or stalled peer costs at most one timeout;
//! * **every refusal is typed** — shed connections get `Overloaded`,
//!   drain-phase requests get `ShuttingDown`, malformed frames get
//!   `Parse`, out-of-range queries get `InvalidQuery`;
//! * **shutdown drains** — in-flight requests complete, queued
//!   connections are answered with a typed error, the listener closes,
//!   and [`Server::run`] returns the final stats (the daemon exits 0);
//! * **telemetry is passive** — recording is relaxed atomics off the
//!   lock path; disabling it (runtime switch or compiling without the
//!   `telemetry` feature) never changes an answer byte.

use crate::protocol::{
    self, Request, Response, WireError, WireStats, MAX_FRAME,
};
use crate::telemetry::{op_index, ServerTelemetry, OP_LABELS};
use spsep_core::{Algorithm, Oracle};
use spsep_graph::SpsepError;
use spsep_pram::Metrics;
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads; each serves one connection at a time.
    pub workers: usize,
    /// Pending-connection queue bound. An accept that would exceed it
    /// is shed with a typed `Overloaded` error — the admission-control
    /// cap.
    pub queue_depth: usize,
    /// Frame payload bound in bytes (both directions).
    pub max_frame: u32,
    /// Per-request read deadline; doubles as the idle keep-alive at a
    /// frame boundary.
    pub read_timeout: Duration,
    /// Per-response write deadline.
    pub write_timeout: Duration,
    /// Runtime telemetry switch. When `false` the registry and flight
    /// recorder exist but record nothing (exposition still answers,
    /// with zeroed counters). Compile with `--no-default-features` to
    /// strip the recording calls entirely.
    pub telemetry: bool,
    /// Optional plain-HTTP side port serving `GET /metrics` for
    /// scrapers that do not speak the framed protocol (port 0 picks a
    /// free port). `None` disables the listener; the wire opcode
    /// `Request::Metrics` works regardless.
    pub metrics_addr: Option<String>,
    /// Slow-query threshold for the flight recorder, microseconds: a
    /// request at or above it triggers a window dump. `None` arms the
    /// error trigger only.
    pub slow_us: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            max_frame: MAX_FRAME,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            telemetry: true,
            metrics_addr: None,
            slow_us: None,
        }
    }
}

/// Paper-facing algorithm code used on the wire (Algorithm 4.1 → 41,
/// Algorithm 4.3 → 43, Remark 4.4 → 44).
fn algo_wire_code(algo: Algorithm) -> u8 {
    match algo {
        Algorithm::LeavesUp => 41,
        Algorithm::PathDoubling => 43,
        Algorithm::SharedDoubling => 44,
    }
}

/// Atomic serving counters, snapshotted into [`WireStats`]. These are
/// the wire-stats source of truth and always count (they predate the
/// telemetry plane and cost one relaxed add each); the registry's
/// counters mirror them for Prometheus exposition.
struct ServerStats {
    accepted: AtomicU64,
    shed: AtomicU64,
    served: AtomicU64,
    errors: [AtomicU64; 5],
    io_errors: AtomicU64,
}

impl ServerStats {
    fn new() -> ServerStats {
        ServerStats {
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            errors: std::array::from_fn(|_| AtomicU64::new(0)),
            io_errors: AtomicU64::new(0),
        }
    }

    fn count_error(&self, code: WireError) {
        self.errors[code as usize - 1].fetch_add(1, Ordering::Relaxed);
    }
}

/// A connection in the pending queue. Connections enter once at
/// admission and re-enter each time a worker *yields* them at a frame
/// boundary (round-robin fairness: one keep-alive client cannot pin a
/// worker while others wait).
struct Conn {
    stream: TcpStream,
    /// When the connection (re-)entered the queue.
    enqueued: Instant,
    /// `true` until the first pop: the admission queue-wait sample is
    /// taken once, not per yield cycle.
    fresh: bool,
    /// Last time a byte arrived — the keep-alive clock, preserved
    /// across yields so the idle expiry stays `read_timeout` total.
    last_activity: Instant,
    /// The admission queue-wait, carried into every flight record this
    /// connection produces.
    queue_wait_ns: u64,
}

/// Everything a worker needs, shared behind one `Arc`.
struct Shared {
    oracle: Arc<Oracle>,
    config: ServeConfig,
    metrics: Metrics,
    stats: ServerStats,
    tel: ServerTelemetry,
    queue: Mutex<VecDeque<Conn>>,
    available: Condvar,
    /// Set by [`ServerHandle::shutdown`], a `Shutdown` request, or a
    /// Unix signal: stop admitting, start draining.
    draining: AtomicBool,
    /// Set once the accept loop has exited; lets idle workers leave.
    accept_done: AtomicBool,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || signal_received()
    }

    fn snapshot(&self) -> WireStats {
        let cache = self.oracle.cache_stats();
        WireStats {
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            served: self.stats.served.load(Ordering::Relaxed),
            errors: std::array::from_fn(|i| self.stats.errors[i].load(Ordering::Relaxed)),
            io_errors: self.stats.io_errors.load(Ordering::Relaxed),
            // Percentiles come from the fixed-footprint telemetry
            // histograms (≤3.125% relative bucket width); zeros when
            // telemetry is off.
            queue_wait_us: [
                ServerTelemetry::quantile_us(&self.tel.queue_wait_ns, 0.50),
                ServerTelemetry::quantile_us(&self.tel.queue_wait_ns, 0.99),
                ServerTelemetry::quantile_us(&self.tel.queue_wait_ns, 0.999),
            ],
            service_us: [
                ServerTelemetry::quantile_us(&self.tel.service_ns, 0.50),
                ServerTelemetry::quantile_us(&self.tel.service_ns, 0.99),
                ServerTelemetry::quantile_us(&self.tel.service_ns, 0.999),
            ],
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_shards: cache.shards.len() as u32,
            workers: self.config.workers as u32,
        }
    }
}

/// Render the Prometheus exposition: refresh the scrape-time gauges
/// (queue depth, drain flag, cache shards, executor pool), then walk
/// the registry. Served by both the `Request::Metrics` wire opcode and
/// the HTTP side port.
fn metrics_text(shared: &Shared) -> String {
    if shared.tel.on() {
        shared.tel.scrapes.inc();
    }
    let queue_depth = lock_queue(shared).len();
    shared.tel.refresh_gauges(
        queue_depth,
        shared.shutting_down(),
        shared.config.workers,
        &shared.oracle.cache_stats(),
    );
    spsep_telemetry::render(&shared.tel.registry)
}

/// Remote control for a running [`Server`] — clone it into another
/// thread and ask the daemon to drain and exit.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin graceful shutdown: refuse new connections, drain the
    /// queue with typed errors, let in-flight requests finish.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Live stats snapshot.
    pub fn stats(&self) -> WireStats {
        self.shared.snapshot()
    }

    /// The Prometheus text exposition, exactly as a scrape would see
    /// it (refreshes the gauges; counts as a scrape).
    pub fn metrics_text(&self) -> String {
        metrics_text(&self.shared)
    }

    /// The flight-recorder dumps retained so far (bounded; oldest
    /// evicted first).
    pub fn flight_dumps(&self) -> Vec<spsep_telemetry::FlightDump> {
        self.shared.tel.flight_dumps()
    }
}

/// The query daemon. Bind with [`Server::bind`], then block on
/// [`Server::run`] until shutdown.
pub struct Server {
    listener: TcpListener,
    /// Optional plain-HTTP `GET /metrics` side listener.
    http: Option<TcpListener>,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener (and the metrics side port, when configured)
    /// and set up the shared worker state. The daemon does not serve
    /// until [`Server::run`]. When the oracle carries a work/depth
    /// ledger (prepared in-process or reloaded from a sidecar), the
    /// Theorem 4.1/5.1 envelope verdicts are exported as gauges.
    ///
    /// # Errors
    ///
    /// [`SpsepError::Io`] when an address cannot be bound.
    pub fn bind(oracle: Arc<Oracle>, config: ServeConfig) -> Result<Server, SpsepError> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let http = match &config.metrics_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let tel = ServerTelemetry::new(config.workers.max(1), config.telemetry, config.slow_us);
        if let Some(ledger) = oracle.ledger() {
            tel.set_ledger(ledger);
        }
        let shared = Arc::new(Shared {
            oracle,
            config,
            metrics: Metrics::new(),
            stats: ServerStats::new(),
            tel,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            draining: AtomicBool::new(false),
            accept_done: AtomicBool::new(false),
        });
        Ok(Server {
            listener,
            http,
            shared,
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// [`SpsepError::Io`] if the socket cannot report its address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, SpsepError> {
        Ok(self.listener.local_addr()?)
    }

    /// The bound metrics side-port address, when one was configured.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// A control handle for triggering shutdown from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serve until shutdown is requested (via [`ServerHandle`], a
    /// `Shutdown` request, or SIGINT/SIGTERM once
    /// [`install_signal_handlers`] ran), then drain and return the
    /// final stats report.
    ///
    /// # Errors
    ///
    /// [`SpsepError::Io`] only for hard listener failures; per-
    /// connection errors are counted, answered, and never abort the
    /// daemon.
    pub fn run(self) -> Result<WireStats, SpsepError> {
        let Server {
            listener,
            http,
            shared,
        } = self;
        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spsep-serve-{i}"))
                    .spawn(move || worker_loop(&shared, i as u32))
            })
            .collect::<Result<_, _>>()?;
        let http_thread = match http {
            Some(l) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("spsep-metrics-http".to_string())
                        .spawn(move || http_loop(&l, &shared))?,
                )
            }
            None => None,
        };

        while !shared.shutting_down() {
            match listener.accept() {
                Ok((stream, _)) => admit(&shared, stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(SpsepError::Io(e)),
            }
        }
        // Stop admitting: close the listener before draining so the
        // port is released the moment shutdown begins.
        drop(listener);
        shared.accept_done.store(true, Ordering::SeqCst);
        shared.available.notify_all();
        for w in workers {
            // A worker that panicked already counted an Internal error;
            // joining it must not take the daemon down with it.
            let _ = w.join();
        }
        if let Some(t) = http_thread {
            let _ = t.join();
        }
        Ok(shared.snapshot())
    }
}

/// Admission control: enqueue the connection or shed it with a typed
/// error frame.
fn admit(shared: &Shared, stream: TcpStream) {
    // Deadlines are set before any byte moves: even the shed path must
    // not let a dead peer pin the accept loop.
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut q = lock_queue(shared);
    if q.len() >= shared.config.queue_depth {
        drop(q);
        shared.stats.shed.fetch_add(1, Ordering::Relaxed);
        if shared.tel.on() {
            shared.tel.shed.inc();
        }
        refuse(shared, stream, WireError::Overloaded, "connection queue full");
        return;
    }
    shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
    if shared.tel.on() {
        shared.tel.accepted.inc();
    }
    let now = Instant::now();
    q.push_back(Conn {
        stream,
        enqueued: now,
        fresh: true,
        last_activity: now,
        queue_wait_ns: 0,
    });
    drop(q);
    shared.available.notify_one();
}

/// Best-effort typed refusal: write one error frame and close.
fn refuse(shared: &Shared, mut stream: TcpStream, code: WireError, message: &str) {
    shared.stats.count_error(code);
    shared.tel.count_error(code);
    let resp = Response::Error {
        code,
        message: message.to_string(),
    };
    if let Ok(bytes) = protocol::encode_response(&resp, shared.config.max_frame) {
        let _ = protocol::write_frame(&mut stream, &bytes);
    }
}

fn lock_queue(shared: &Shared) -> std::sync::MutexGuard<'_, VecDeque<Conn>> {
    match shared.queue.lock() {
        Ok(g) => g,
        // The queue holds plain values; a panic inside a critical
        // section cannot leave it inconsistent.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// What a worker does with a connection after serving it for a while.
enum ConnFate {
    /// Closed (clean close, expiry, framing violation, drain).
    Closed,
    /// Other connections are waiting: put this one back in the queue
    /// and serve them first (frame-granularity round-robin).
    Yielded,
}

/// Worker thread: pop connections until shutdown has drained the
/// queue.
fn worker_loop(shared: &Shared, worker: u32) {
    loop {
        let popped = {
            let mut q = lock_queue(shared);
            loop {
                if let Some(conn) = q.pop_front() {
                    break Some(conn);
                }
                if shared.shutting_down() && shared.accept_done.load(Ordering::SeqCst) {
                    break None;
                }
                q = match shared.available.wait_timeout(q, Duration::from_millis(50)) {
                    Ok((g, _)) => g,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        let Some(mut conn) = popped else {
            return;
        };
        if conn.fresh {
            let wait = conn.enqueued.elapsed();
            shared.tel.observe_queue_wait(wait);
            conn.queue_wait_ns = u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX);
            conn.fresh = false;
        }
        let outcome =
            panic::catch_unwind(AssertUnwindSafe(|| serve_connection(shared, &mut conn, worker)));
        match outcome {
            Ok(ConnFate::Yielded) => {
                if shared.tel.on() {
                    shared.tel.yields.inc();
                }
                conn.enqueued = Instant::now();
                let mut q = lock_queue(shared);
                q.push_back(conn);
                drop(q);
                shared.available.notify_one();
            }
            Ok(ConnFate::Closed) => {}
            Err(_) => {
                // A panic in the oracle or codec must cost exactly one
                // connection: answer Internal best-effort and move on.
                let resp = Response::Error {
                    code: WireError::Internal,
                    message: "internal server error".to_string(),
                };
                shared.stats.count_error(WireError::Internal);
                shared.tel.count_error(WireError::Internal);
                if shared.tel.on() {
                    shared.tel.panics.inc();
                }
                if let Ok(bytes) = protocol::encode_response(&resp, shared.config.max_frame) {
                    let _ = protocol::write_frame(&mut conn.stream, &bytes);
                }
            }
        }
    }
}

/// `true` when other connections are waiting for a worker.
fn others_waiting(shared: &Shared) -> bool {
    !lock_queue(shared).is_empty()
}

/// The interval at which a worker waiting at a frame boundary
/// re-checks the shutdown flag and the queue: bounds both graceful-
/// shutdown latency and the yield latency for waiting connections,
/// without shortening any mid-frame deadline.
const BOUNDARY_POLL: Duration = Duration::from_millis(50);

/// What arrived at a frame boundary.
enum Boundary {
    Frame(Vec<u8>),
    /// Clean close or keep-alive expiry.
    Close,
    /// Nothing yet, but other connections are waiting — yield.
    Yield,
    /// Framing violation (answer typed, then close).
    Broken(SpsepError),
    /// Transport failure.
    Dead,
}

/// Wait for the next frame. Polls the frame *start* at
/// [`BOUNDARY_POLL`] so an idle connection notices shutdown within one
/// tick and yields to waiting connections between requests; once the
/// first byte arrives, the full per-request read deadline applies to
/// the rest of the frame. The keep-alive clock (`last_activity`)
/// spans yields, so the idle expiry is `read_timeout` of genuine
/// silence, not per-visit.
fn next_frame(shared: &Shared, conn: &mut Conn) -> Boundary {
    let poll = shared.config.read_timeout.min(BOUNDARY_POLL);
    let _ = conn.stream.set_read_timeout(Some(poll));
    loop {
        match protocol::poll_frame_start(&mut conn.stream) {
            Ok(protocol::FrameStart::Eof) => return Boundary::Close,
            Ok(protocol::FrameStart::Idle) => {
                if shared.shutting_down()
                    || conn.last_activity.elapsed() >= shared.config.read_timeout
                {
                    return Boundary::Close;
                }
                if others_waiting(shared) {
                    return Boundary::Yield;
                }
            }
            Ok(protocol::FrameStart::Started(b)) => {
                conn.last_activity = Instant::now();
                let _ = conn.stream.set_read_timeout(Some(shared.config.read_timeout));
                return match protocol::read_frame_rest(
                    &mut conn.stream,
                    b,
                    shared.config.max_frame,
                ) {
                    Ok(payload) => Boundary::Frame(payload),
                    Err(SpsepError::Io(_)) => Boundary::Dead,
                    Err(e) => Boundary::Broken(e),
                };
            }
            Err(_) => return Boundary::Dead,
        }
    }
}

/// Serve one connection until it closes, breaks, or yields to waiting
/// connections at a frame boundary.
fn serve_connection(shared: &Shared, conn: &mut Conn, worker: u32) -> ConnFate {
    loop {
        let frame = match next_frame(shared, conn) {
            Boundary::Frame(payload) => payload,
            Boundary::Close => return ConnFate::Closed,
            Boundary::Yield => return ConnFate::Yielded,
            Boundary::Dead => {
                shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                if shared.tel.on() {
                    shared.tel.io_errors.inc();
                }
                return ConnFate::Closed;
            }
            Boundary::Broken(e) => {
                // Framing violation (oversized/zero prefix, mid-frame
                // truncation or stall): answer typed, then close — the
                // stream position is unrecoverable.
                send(shared, &mut conn.stream, Response::Error {
                    code: WireError::Parse,
                    message: e.to_string(),
                });
                return ConnFate::Closed;
            }
        };
        let started = Instant::now();
        // Flight-recorder bookkeeping is gathered up front so the
        // record covers decode + answer + encode. The cache-hit delta
        // is sampled lock-free; under concurrency it may attribute
        // another worker's hits to this request (documented, bounded
        // imprecision).
        let tel_on = shared.tel.on();
        let (seq, start_ns, hits_before) = if tel_on {
            (
                shared.tel.flight.next_seq(),
                shared.tel.flight.now_ns(),
                shared.oracle.cache_hits_total(),
            )
        } else {
            (0, 0, 0)
        };
        let stream = &mut conn.stream;
        let req = match protocol::decode_request(&frame) {
            Ok(req) => req,
            Err(e) => {
                // Payload-level damage: the framing is intact, so the
                // connection stays usable after the typed reply.
                let keep = send(shared, stream, Response::Error {
                    code: WireError::Parse,
                    message: e.to_string(),
                });
                shared.tel.flight_record(
                    worker,
                    seq,
                    "parse",
                    &frame,
                    start_ns,
                    conn.queue_wait_ns,
                    started.elapsed(),
                    0,
                    Some(WireError::Parse.label()),
                );
                if keep {
                    continue;
                }
                return ConnFate::Closed;
            }
        };
        shared.tel.count_request(op_index(&req));
        let op_label = OP_LABELS[op_index(&req)];
        // Requests arriving once the drain has begun are refused with a
        // typed error; the request currently executing on each worker
        // (and the control plane: Ping/Stats/Metrics/Shutdown) still
        // completes — a scraper can watch the drain happen.
        if shared.shutting_down()
            && matches!(
                req,
                Request::Point { .. } | Request::Source { .. } | Request::Batch { .. } | Request::Info
            )
        {
            send(shared, stream, Response::Error {
                code: WireError::ShuttingDown,
                message: "daemon is draining for shutdown".to_string(),
            });
            return ConnFate::Closed;
        }
        let resp = match req {
            Request::Stats => Response::Stats(shared.snapshot()),
            Request::Metrics => Response::Metrics(metrics_text(shared)),
            Request::Shutdown => {
                shared.draining.store(true, Ordering::SeqCst);
                shared.available.notify_all();
                send(shared, stream, Response::ShutdownAck);
                shared.stats.served.fetch_add(1, Ordering::Relaxed);
                if tel_on {
                    shared.tel.served.inc();
                }
                return ConnFate::Closed;
            }
            ref q => match answer_query(&shared.oracle, q, &shared.metrics) {
                Some(resp) => resp,
                // Unreachable: Stats/Metrics/Shutdown are handled above.
                None => Response::Error {
                    code: WireError::Internal,
                    message: "unroutable request".to_string(),
                },
            },
        };
        let service = started.elapsed();
        shared.tel.observe_service(service);
        let was_error = matches!(resp, Response::Error { .. });
        let err_label = match &resp {
            Response::Error { code, .. } => Some(code.label()),
            _ => None,
        };
        let hits = if tel_on {
            shared.oracle.cache_hits_total().saturating_sub(hits_before)
        } else {
            0
        };
        shared.tel.flight_record(
            worker,
            seq,
            op_label,
            &frame,
            start_ns,
            conn.queue_wait_ns,
            service,
            hits,
            err_label,
        );
        if !send(shared, stream, resp) {
            return ConnFate::Closed;
        }
        if !was_error {
            shared.stats.served.fetch_add(1, Ordering::Relaxed);
            if tel_on {
                shared.tel.served.inc();
            }
        }
    }
}

/// Encode and write one response, downgrading an unencodable (over-
/// sized) response to a typed `InvalidQuery` error and counting every
/// error by taxonomy code. Returns `false` when the connection is no
/// longer writable.
fn send(shared: &Shared, stream: &mut TcpStream, resp: Response) -> bool {
    if let Response::Error { code, .. } = resp {
        shared.stats.count_error(code);
        shared.tel.count_error(code);
    }
    let bytes = match protocol::encode_response(&resp, shared.config.max_frame) {
        Ok(bytes) => bytes,
        Err(e) => {
            let fallback = Response::Error {
                code: WireError::InvalidQuery,
                message: format!("response exceeds the frame bound: {e}"),
            };
            shared.stats.count_error(WireError::InvalidQuery);
            shared.tel.count_error(WireError::InvalidQuery);
            match protocol::encode_response(&fallback, shared.config.max_frame) {
                Ok(bytes) => bytes,
                Err(_) => return false,
            }
        }
    };
    match protocol::write_frame(stream, &bytes) {
        Ok(()) => true,
        Err(_) => {
            shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            if shared.tel.on() {
                shared.tel.io_errors.inc();
            }
            false
        }
    }
}

/// Serve the plain-HTTP metrics side port until shutdown: a minimal
/// HTTP/1.1 responder that answers `GET /metrics` with the text
/// exposition and anything else with 404. One request per connection
/// (`Connection: close`); deadlines bound every socket operation.
fn http_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => serve_http(shared, stream),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // A hard listener failure kills only the side port; the
            // wire opcode keeps serving scrapes.
            Err(_) => return,
        }
    }
}

/// Answer one HTTP request on the metrics side port, best-effort.
fn serve_http(shared: &Shared, mut stream: TcpStream) {
    use std::io::{Read, Write};
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    // Read until the header terminator (we ignore the headers) with a
    // hard cap so a hostile peer cannot balloon the buffer.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(k) => {
                buf.extend_from_slice(&chunk[..k]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= 4096 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = buf
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let (status, body) = if request_line.starts_with(b"GET /metrics ") {
        ("200 OK", metrics_text(shared))
    } else {
        ("404 Not Found", "only GET /metrics is served here\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

/// Answer a data-plane request directly against the oracle — the same
/// routine serves the daemon and `spsep-cli serve`'s one-shot replay
/// mode, so both speak the identical codec and produce bit-identical
/// answers. Returns `None` for the daemon-only control requests
/// (`Stats`, `Metrics`, `Shutdown`).
pub fn answer_query(oracle: &Oracle, req: &Request, metrics: &Metrics) -> Option<Response> {
    let resp = match req {
        Request::Ping => Response::Pong,
        Request::Info => Response::Info {
            n: oracle.n() as u64,
            m: oracle.m() as u64,
            eplus: oracle.stats().eplus_edges as u64,
            algo: algo_wire_code(oracle.algo()),
        },
        Request::Point { source, target } => {
            match checked_pair(oracle, *source, *target)
                .and_then(|(u, v)| oracle.distance(u, v, metrics))
            {
                Ok(d) => Response::Dist(d),
                Err(e) => query_error(&e),
            }
        }
        Request::Source { source } => {
            match checked_vertex(oracle, *source)
                .and_then(|u| oracle.source_table(u, metrics))
            {
                Ok(row) => Response::Table(row.to_vec()),
                Err(e) => query_error(&e),
            }
        }
        Request::Batch { pairs } => {
            let checked: Result<Vec<(usize, usize)>, SpsepError> = pairs
                .iter()
                .map(|&(u, v)| checked_pair(oracle, u, v))
                .collect();
            match checked.and_then(|pairs| oracle.batch(&pairs, metrics)) {
                Ok(dists) => Response::Batch(dists),
                Err(e) => query_error(&e),
            }
        }
        Request::Stats | Request::Metrics | Request::Shutdown => return None,
    };
    Some(resp)
}

/// Reject wire vertex ids that do not fit `usize` or the instance.
fn checked_vertex(oracle: &Oracle, v: u64) -> Result<usize, SpsepError> {
    let n = oracle.n() as u64;
    if v >= n {
        return Err(SpsepError::invalid_vertex(
            v.min(u32::MAX as u64) as u32,
            format!("query vertex out of range 0..{n}"),
        ));
    }
    Ok(v as usize)
}

fn checked_pair(oracle: &Oracle, u: u64, v: u64) -> Result<(usize, usize), SpsepError> {
    Ok((checked_vertex(oracle, u)?, checked_vertex(oracle, v)?))
}

/// Map an oracle error onto the wire taxonomy.
fn query_error(e: &SpsepError) -> Response {
    let code = match e {
        SpsepError::InvalidGraph { .. } | SpsepError::InvalidDecomposition { .. } => {
            WireError::InvalidQuery
        }
        SpsepError::Parse { .. } => WireError::Parse,
        _ => WireError::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// Set by the signal handler; polled by the accept loop and workers.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT/SIGTERM arrived since [`install_signal_handlers`].
pub fn signal_received() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work: flip the flag; the serving threads
    // poll it at their next loop iteration.
    SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Route SIGINT and SIGTERM into the graceful-shutdown flag so `kill`
/// and Ctrl-C drain the daemon instead of aborting it mid-request.
/// Uses the raw libc `signal(2)` binding (the workspace links libc
/// through std already); a no-op on non-Unix targets.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `on_signal` is async-signal-safe (a single atomic
        // store) and has the exact `extern "C" fn(i32)` ABI signal(2)
        // expects.
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_codes_follow_the_paper_numbering() {
        assert_eq!(algo_wire_code(Algorithm::LeavesUp), 41);
        assert_eq!(algo_wire_code(Algorithm::PathDoubling), 43);
        assert_eq!(algo_wire_code(Algorithm::SharedDoubling), 44);
    }

    // Recording is dead-coded without the `telemetry` feature, so the
    // two tests below only make sense with it compiled in.
    #[cfg(feature = "telemetry")]
    #[test]
    fn server_telemetry_exposition_validates() {
        let tel = ServerTelemetry::new(2, true, Some(1_000));
        tel.count_request(op_index(&Request::Ping));
        tel.count_request(op_index(&Request::Point { source: 0, target: 1 }));
        tel.count_error(WireError::Parse);
        tel.observe_queue_wait(Duration::from_micros(3));
        tel.observe_service(Duration::from_micros(120));
        let text = spsep_telemetry::render(&tel.registry);
        spsep_telemetry::validate_prometheus_text(&text).expect("exposition validates");
        assert!(text.contains("spsep_requests_total{op=\"ping\"} 1"));
        assert!(text.contains("spsep_requests_total{op=\"point\"} 1"));
        assert!(text.contains("spsep_errors_total{kind=\"parse\"} 1"));
        assert!(text.contains("spsep_request_service_ns_count 1"));
    }

    #[test]
    fn telemetry_switch_gates_recording() {
        let tel = ServerTelemetry::new(1, false, None);
        tel.count_request(op_index(&Request::Ping));
        tel.observe_service(Duration::from_micros(50));
        assert!(!tel.on());
        let text = spsep_telemetry::render(&tel.registry);
        assert!(
            text.contains("spsep_requests_total{op=\"ping\"} 0"),
            "counters stay zero with the runtime switch off"
        );
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn slow_trigger_produces_a_flight_dump() {
        let tel = ServerTelemetry::new(1, true, Some(0));
        let reason = tel.flight_record(
            0,
            tel.flight.next_seq(),
            "point",
            b"frame",
            tel.flight.now_ns(),
            7,
            Duration::from_micros(10),
            1,
            None,
        );
        assert!(matches!(reason, Some(spsep_telemetry::DumpReason::Slow)));
        let dumps = tel.flight_dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].records[0].opcode, "point");
    }
}
