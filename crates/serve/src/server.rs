//! The daemon: bounded-admission TCP listener, thread-per-worker
//! request loop, graceful shutdown.
//!
//! ```text
//!          accept loop (main thread, non-blocking poll)
//!                 │  queue full → Overloaded frame, close (shed)
//!                 │  draining   → ShuttingDown frame, close
//!                 ▼
//!        bounded connection queue (Mutex<VecDeque> + Condvar)
//!                 │  pop ⇒ queue-wait sample
//!                 ▼
//!      worker 0 … worker W−1   (thread per worker, catch_unwind)
//!                 │  framed requests, per-request deadlines
//!                 ▼
//!        Arc<Oracle> — sharded LRU row cache (spsep-core)
//! ```
//!
//! Robustness invariants (pinned by `spsep-testkit`'s wire-corruption
//! and shutdown suites):
//!
//! * **no panic escapes a worker** — connection handlers run under
//!   [`std::panic::catch_unwind`]; a panic answers `Internal` and
//!   closes only that connection;
//! * **no hung connection** — every socket carries read/write
//!   deadlines, so a dead or stalled peer costs at most one timeout;
//! * **every refusal is typed** — shed connections get `Overloaded`,
//!   drain-phase requests get `ShuttingDown`, malformed frames get
//!   `Parse`, out-of-range queries get `InvalidQuery`;
//! * **shutdown drains** — in-flight requests complete, queued
//!   connections are answered with a typed error, the listener closes,
//!   and [`Server::run`] returns the final stats (the daemon exits 0).

use crate::protocol::{
    self, Request, Response, WireError, WireStats, MAX_FRAME,
};
use spsep_core::{Algorithm, Oracle};
use spsep_graph::SpsepError;
use spsep_pram::Metrics;
use std::collections::VecDeque;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads; each serves one connection at a time.
    pub workers: usize,
    /// Pending-connection queue bound. An accept that would exceed it
    /// is shed with a typed `Overloaded` error — the admission-control
    /// cap.
    pub queue_depth: usize,
    /// Frame payload bound in bytes (both directions).
    pub max_frame: u32,
    /// Per-request read deadline; doubles as the idle keep-alive at a
    /// frame boundary.
    pub read_timeout: Duration,
    /// Per-response write deadline.
    pub write_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            max_frame: MAX_FRAME,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Paper-facing algorithm code used on the wire (Algorithm 4.1 → 41,
/// Algorithm 4.3 → 43, Remark 4.4 → 44).
fn algo_wire_code(algo: Algorithm) -> u8 {
    match algo {
        Algorithm::LeavesUp => 41,
        Algorithm::PathDoubling => 43,
        Algorithm::SharedDoubling => 44,
    }
}

/// Log-linear latency histogram: bucket `i` covers `[2^(i−1), 2^i)`
/// microseconds (bucket 0 is `< 1 µs`). Bounded memory regardless of
/// how long the daemon lives; the load harness keeps exact samples,
/// this is the daemon's own running account.
struct LatencyHistogram {
    buckets: [AtomicU64; 40],
    count: AtomicU64,
}

impl LatencyHistogram {
    fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
        }
    }

    fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let idx = (64 - us.leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bound of the bucket containing quantile `q` (0 ..= 1), in
    /// microseconds. 0 when no samples were recorded.
    fn quantile_us(&self, q: f64) -> f64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 1.0 } else { (1u64 << i) as f64 };
            }
        }
        (1u64 << (self.buckets.len() - 1)) as f64
    }
}

/// Atomic serving counters, snapshotted into [`WireStats`].
struct ServerStats {
    accepted: AtomicU64,
    shed: AtomicU64,
    served: AtomicU64,
    errors: [AtomicU64; 5],
    io_errors: AtomicU64,
    queue_wait: LatencyHistogram,
    service: LatencyHistogram,
}

impl ServerStats {
    fn new() -> ServerStats {
        ServerStats {
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            errors: std::array::from_fn(|_| AtomicU64::new(0)),
            io_errors: AtomicU64::new(0),
            queue_wait: LatencyHistogram::new(),
            service: LatencyHistogram::new(),
        }
    }

    fn count_error(&self, code: WireError) {
        self.errors[code as usize - 1].fetch_add(1, Ordering::Relaxed);
    }
}

/// A connection in the pending queue. Connections enter once at
/// admission and re-enter each time a worker *yields* them at a frame
/// boundary (round-robin fairness: one keep-alive client cannot pin a
/// worker while others wait).
struct Conn {
    stream: TcpStream,
    /// When the connection (re-)entered the queue.
    enqueued: Instant,
    /// `true` until the first pop: the admission queue-wait sample is
    /// taken once, not per yield cycle.
    fresh: bool,
    /// Last time a byte arrived — the keep-alive clock, preserved
    /// across yields so the idle expiry stays `read_timeout` total.
    last_activity: Instant,
}

/// Everything a worker needs, shared behind one `Arc`.
struct Shared {
    oracle: Arc<Oracle>,
    config: ServeConfig,
    metrics: Metrics,
    stats: ServerStats,
    queue: Mutex<VecDeque<Conn>>,
    available: Condvar,
    /// Set by [`ServerHandle::shutdown`], a `Shutdown` request, or a
    /// Unix signal: stop admitting, start draining.
    draining: AtomicBool,
    /// Set once the accept loop has exited; lets idle workers leave.
    accept_done: AtomicBool,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || signal_received()
    }

    fn snapshot(&self) -> WireStats {
        let cache = self.oracle.cache_stats();
        WireStats {
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            served: self.stats.served.load(Ordering::Relaxed),
            errors: std::array::from_fn(|i| self.stats.errors[i].load(Ordering::Relaxed)),
            io_errors: self.stats.io_errors.load(Ordering::Relaxed),
            queue_wait_us: [
                self.stats.queue_wait.quantile_us(0.50),
                self.stats.queue_wait.quantile_us(0.99),
            ],
            service_us: [
                self.stats.service.quantile_us(0.50),
                self.stats.service.quantile_us(0.99),
            ],
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_shards: cache.shards.len() as u32,
            workers: self.config.workers as u32,
        }
    }
}

/// Remote control for a running [`Server`] — clone it into another
/// thread and ask the daemon to drain and exit.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin graceful shutdown: refuse new connections, drain the
    /// queue with typed errors, let in-flight requests finish.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Live stats snapshot.
    pub fn stats(&self) -> WireStats {
        self.shared.snapshot()
    }
}

/// The query daemon. Bind with [`Server::bind`], then block on
/// [`Server::run`] until shutdown.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener and set up the shared worker state. The
    /// daemon does not serve until [`Server::run`].
    ///
    /// # Errors
    ///
    /// [`SpsepError::Io`] when the address cannot be bound.
    pub fn bind(oracle: Arc<Oracle>, config: ServeConfig) -> Result<Server, SpsepError> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            oracle,
            config,
            metrics: Metrics::new(),
            stats: ServerStats::new(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            draining: AtomicBool::new(false),
            accept_done: AtomicBool::new(false),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// [`SpsepError::Io`] if the socket cannot report its address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, SpsepError> {
        Ok(self.listener.local_addr()?)
    }

    /// A control handle for triggering shutdown from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serve until shutdown is requested (via [`ServerHandle`], a
    /// `Shutdown` request, or SIGINT/SIGTERM once
    /// [`install_signal_handlers`] ran), then drain and return the
    /// final stats report.
    ///
    /// # Errors
    ///
    /// [`SpsepError::Io`] only for hard listener failures; per-
    /// connection errors are counted, answered, and never abort the
    /// daemon.
    pub fn run(self) -> Result<WireStats, SpsepError> {
        let Server { listener, shared } = self;
        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spsep-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<Result<_, _>>()?;

        while !shared.shutting_down() {
            match listener.accept() {
                Ok((stream, _)) => admit(&shared, stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(SpsepError::Io(e)),
            }
        }
        // Stop admitting: close the listener before draining so the
        // port is released the moment shutdown begins.
        drop(listener);
        shared.accept_done.store(true, Ordering::SeqCst);
        shared.available.notify_all();
        for w in workers {
            // A worker that panicked already counted an Internal error;
            // joining it must not take the daemon down with it.
            let _ = w.join();
        }
        Ok(shared.snapshot())
    }
}

/// Admission control: enqueue the connection or shed it with a typed
/// error frame.
fn admit(shared: &Shared, stream: TcpStream) {
    // Deadlines are set before any byte moves: even the shed path must
    // not let a dead peer pin the accept loop.
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut q = lock_queue(shared);
    if q.len() >= shared.config.queue_depth {
        drop(q);
        shared.stats.shed.fetch_add(1, Ordering::Relaxed);
        refuse(shared, stream, WireError::Overloaded, "connection queue full");
        return;
    }
    shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
    let now = Instant::now();
    q.push_back(Conn {
        stream,
        enqueued: now,
        fresh: true,
        last_activity: now,
    });
    drop(q);
    shared.available.notify_one();
}

/// Best-effort typed refusal: write one error frame and close.
fn refuse(shared: &Shared, mut stream: TcpStream, code: WireError, message: &str) {
    shared.stats.count_error(code);
    let resp = Response::Error {
        code,
        message: message.to_string(),
    };
    if let Ok(bytes) = protocol::encode_response(&resp, shared.config.max_frame) {
        let _ = protocol::write_frame(&mut stream, &bytes);
    }
}

fn lock_queue(shared: &Shared) -> std::sync::MutexGuard<'_, VecDeque<Conn>> {
    match shared.queue.lock() {
        Ok(g) => g,
        // The queue holds plain values; a panic inside a critical
        // section cannot leave it inconsistent.
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// What a worker does with a connection after serving it for a while.
enum ConnFate {
    /// Closed (clean close, expiry, framing violation, drain).
    Closed,
    /// Other connections are waiting: put this one back in the queue
    /// and serve them first (frame-granularity round-robin).
    Yielded,
}

/// Worker thread: pop connections until shutdown has drained the
/// queue.
fn worker_loop(shared: &Shared) {
    loop {
        let popped = {
            let mut q = lock_queue(shared);
            loop {
                if let Some(conn) = q.pop_front() {
                    break Some(conn);
                }
                if shared.shutting_down() && shared.accept_done.load(Ordering::SeqCst) {
                    break None;
                }
                q = match shared.available.wait_timeout(q, Duration::from_millis(50)) {
                    Ok((g, _)) => g,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        let Some(mut conn) = popped else {
            return;
        };
        if conn.fresh {
            shared.stats.queue_wait.record(conn.enqueued.elapsed());
            conn.fresh = false;
        }
        let outcome =
            panic::catch_unwind(AssertUnwindSafe(|| serve_connection(shared, &mut conn)));
        match outcome {
            Ok(ConnFate::Yielded) => {
                conn.enqueued = Instant::now();
                let mut q = lock_queue(shared);
                q.push_back(conn);
                drop(q);
                shared.available.notify_one();
            }
            Ok(ConnFate::Closed) => {}
            Err(_) => {
                // A panic in the oracle or codec must cost exactly one
                // connection: answer Internal best-effort and move on.
                let resp = Response::Error {
                    code: WireError::Internal,
                    message: "internal server error".to_string(),
                };
                shared.stats.count_error(WireError::Internal);
                if let Ok(bytes) = protocol::encode_response(&resp, shared.config.max_frame) {
                    let _ = protocol::write_frame(&mut conn.stream, &bytes);
                }
            }
        }
    }
}

/// `true` when other connections are waiting for a worker.
fn others_waiting(shared: &Shared) -> bool {
    !lock_queue(shared).is_empty()
}

/// The interval at which a worker waiting at a frame boundary
/// re-checks the shutdown flag and the queue: bounds both graceful-
/// shutdown latency and the yield latency for waiting connections,
/// without shortening any mid-frame deadline.
const BOUNDARY_POLL: Duration = Duration::from_millis(50);

/// What arrived at a frame boundary.
enum Boundary {
    Frame(Vec<u8>),
    /// Clean close or keep-alive expiry.
    Close,
    /// Nothing yet, but other connections are waiting — yield.
    Yield,
    /// Framing violation (answer typed, then close).
    Broken(SpsepError),
    /// Transport failure.
    Dead,
}

/// Wait for the next frame. Polls the frame *start* at
/// [`BOUNDARY_POLL`] so an idle connection notices shutdown within one
/// tick and yields to waiting connections between requests; once the
/// first byte arrives, the full per-request read deadline applies to
/// the rest of the frame. The keep-alive clock (`last_activity`)
/// spans yields, so the idle expiry is `read_timeout` of genuine
/// silence, not per-visit.
fn next_frame(shared: &Shared, conn: &mut Conn) -> Boundary {
    let poll = shared.config.read_timeout.min(BOUNDARY_POLL);
    let _ = conn.stream.set_read_timeout(Some(poll));
    loop {
        match protocol::poll_frame_start(&mut conn.stream) {
            Ok(protocol::FrameStart::Eof) => return Boundary::Close,
            Ok(protocol::FrameStart::Idle) => {
                if shared.shutting_down()
                    || conn.last_activity.elapsed() >= shared.config.read_timeout
                {
                    return Boundary::Close;
                }
                if others_waiting(shared) {
                    return Boundary::Yield;
                }
            }
            Ok(protocol::FrameStart::Started(b)) => {
                conn.last_activity = Instant::now();
                let _ = conn.stream.set_read_timeout(Some(shared.config.read_timeout));
                return match protocol::read_frame_rest(
                    &mut conn.stream,
                    b,
                    shared.config.max_frame,
                ) {
                    Ok(payload) => Boundary::Frame(payload),
                    Err(SpsepError::Io(_)) => Boundary::Dead,
                    Err(e) => Boundary::Broken(e),
                };
            }
            Err(_) => return Boundary::Dead,
        }
    }
}

/// Serve one connection until it closes, breaks, or yields to waiting
/// connections at a frame boundary.
fn serve_connection(shared: &Shared, conn: &mut Conn) -> ConnFate {
    loop {
        let frame = match next_frame(shared, conn) {
            Boundary::Frame(payload) => payload,
            Boundary::Close => return ConnFate::Closed,
            Boundary::Yield => return ConnFate::Yielded,
            Boundary::Dead => {
                shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                return ConnFate::Closed;
            }
            Boundary::Broken(e) => {
                // Framing violation (oversized/zero prefix, mid-frame
                // truncation or stall): answer typed, then close — the
                // stream position is unrecoverable.
                send(shared, &mut conn.stream, Response::Error {
                    code: WireError::Parse,
                    message: e.to_string(),
                });
                return ConnFate::Closed;
            }
        };
        let stream = &mut conn.stream;
        let started = Instant::now();
        let req = match protocol::decode_request(&frame) {
            Ok(req) => req,
            Err(e) => {
                // Payload-level damage: the framing is intact, so the
                // connection stays usable after the typed reply.
                let keep = send(shared, stream, Response::Error {
                    code: WireError::Parse,
                    message: e.to_string(),
                });
                if keep {
                    continue;
                }
                return ConnFate::Closed;
            }
        };
        // Requests arriving once the drain has begun are refused with a
        // typed error; the request currently executing on each worker
        // (and the control plane: Ping/Stats/Shutdown) still completes.
        if shared.shutting_down()
            && matches!(
                req,
                Request::Point { .. } | Request::Source { .. } | Request::Batch { .. } | Request::Info
            )
        {
            send(shared, stream, Response::Error {
                code: WireError::ShuttingDown,
                message: "daemon is draining for shutdown".to_string(),
            });
            return ConnFate::Closed;
        }
        let resp = match req {
            Request::Stats => Response::Stats(shared.snapshot()),
            Request::Shutdown => {
                shared.draining.store(true, Ordering::SeqCst);
                shared.available.notify_all();
                send(shared, stream, Response::ShutdownAck);
                shared.stats.served.fetch_add(1, Ordering::Relaxed);
                return ConnFate::Closed;
            }
            ref q => match answer_query(&shared.oracle, q, &shared.metrics) {
                Some(resp) => resp,
                // Unreachable: Stats/Shutdown are handled above.
                None => Response::Error {
                    code: WireError::Internal,
                    message: "unroutable request".to_string(),
                },
            },
        };
        shared.stats.service.record(started.elapsed());
        let was_error = matches!(resp, Response::Error { .. });
        if !send(shared, stream, resp) {
            return ConnFate::Closed;
        }
        if !was_error {
            shared.stats.served.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Encode and write one response, downgrading an unencodable (over-
/// sized) response to a typed `InvalidQuery` error and counting every
/// error by taxonomy code. Returns `false` when the connection is no
/// longer writable.
fn send(shared: &Shared, stream: &mut TcpStream, resp: Response) -> bool {
    if let Response::Error { code, .. } = resp {
        shared.stats.count_error(code);
    }
    let bytes = match protocol::encode_response(&resp, shared.config.max_frame) {
        Ok(bytes) => bytes,
        Err(e) => {
            let fallback = Response::Error {
                code: WireError::InvalidQuery,
                message: format!("response exceeds the frame bound: {e}"),
            };
            shared.stats.count_error(WireError::InvalidQuery);
            match protocol::encode_response(&fallback, shared.config.max_frame) {
                Ok(bytes) => bytes,
                Err(_) => return false,
            }
        }
    };
    match protocol::write_frame(stream, &bytes) {
        Ok(()) => true,
        Err(_) => {
            shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

/// Answer a data-plane request directly against the oracle — the same
/// routine serves the daemon and `spsep-cli serve`'s one-shot replay
/// mode, so both speak the identical codec and produce bit-identical
/// answers. Returns `None` for the daemon-only control requests
/// (`Stats`, `Shutdown`).
pub fn answer_query(oracle: &Oracle, req: &Request, metrics: &Metrics) -> Option<Response> {
    let resp = match req {
        Request::Ping => Response::Pong,
        Request::Info => Response::Info {
            n: oracle.n() as u64,
            m: oracle.m() as u64,
            eplus: oracle.stats().eplus_edges as u64,
            algo: algo_wire_code(oracle.algo()),
        },
        Request::Point { source, target } => {
            match checked_pair(oracle, *source, *target)
                .and_then(|(u, v)| oracle.distance(u, v, metrics))
            {
                Ok(d) => Response::Dist(d),
                Err(e) => query_error(&e),
            }
        }
        Request::Source { source } => {
            match checked_vertex(oracle, *source)
                .and_then(|u| oracle.source_table(u, metrics))
            {
                Ok(row) => Response::Table(row.to_vec()),
                Err(e) => query_error(&e),
            }
        }
        Request::Batch { pairs } => {
            let checked: Result<Vec<(usize, usize)>, SpsepError> = pairs
                .iter()
                .map(|&(u, v)| checked_pair(oracle, u, v))
                .collect();
            match checked.and_then(|pairs| oracle.batch(&pairs, metrics)) {
                Ok(dists) => Response::Batch(dists),
                Err(e) => query_error(&e),
            }
        }
        Request::Stats | Request::Shutdown => return None,
    };
    Some(resp)
}

/// Reject wire vertex ids that do not fit `usize` or the instance.
fn checked_vertex(oracle: &Oracle, v: u64) -> Result<usize, SpsepError> {
    let n = oracle.n() as u64;
    if v >= n {
        return Err(SpsepError::invalid_vertex(
            v.min(u32::MAX as u64) as u32,
            format!("query vertex out of range 0..{n}"),
        ));
    }
    Ok(v as usize)
}

fn checked_pair(oracle: &Oracle, u: u64, v: u64) -> Result<(usize, usize), SpsepError> {
    Ok((checked_vertex(oracle, u)?, checked_vertex(oracle, v)?))
}

/// Map an oracle error onto the wire taxonomy.
fn query_error(e: &SpsepError) -> Response {
    let code = match e {
        SpsepError::InvalidGraph { .. } | SpsepError::InvalidDecomposition { .. } => {
            WireError::InvalidQuery
        }
        SpsepError::Parse { .. } => WireError::Parse,
        _ => WireError::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// Set by the signal handler; polled by the accept loop and workers.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT/SIGTERM arrived since [`install_signal_handlers`].
pub fn signal_received() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work: flip the flag; the serving threads
    // poll it at their next loop iteration.
    SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Route SIGINT and SIGTERM into the graceful-shutdown flag so `kill`
/// and Ctrl-C drain the daemon instead of aborting it mid-request.
/// Uses the raw libc `signal(2)` binding (the workspace links libc
/// through std already); a no-op on non-Unix targets.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `on_signal` is async-signal-safe (a single atomic
        // store) and has the exact `extern "C" fn(i32)` ABI signal(2)
        // expects.
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0.0, "empty histogram reports 0");
        for us in [10u64, 20, 30, 40, 1000] {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile_us(0.50);
        assert!((16.0..=64.0).contains(&p50), "p50 bucket bound {p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 >= 1000.0, "p99 bucket bound {p99}");
    }

    #[test]
    fn algo_codes_follow_the_paper_numbering() {
        assert_eq!(algo_wire_code(Algorithm::LeavesUp), 41);
        assert_eq!(algo_wire_code(Algorithm::PathDoubling), 43);
        assert_eq!(algo_wire_code(Algorithm::SharedDoubling), 44);
    }
}
