//! Property tests for the difference-constraint solver: systems with a
//! planted solution are always feasible and check out; systems with a
//! planted negative cycle are always rejected; the separator path agrees
//! with Bellman–Ford.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spsep_pram::Metrics;
use spsep_tvpi::{grid_schedule_system, Solution, System};

/// A random feasible system: plant x*, emit constraints with nonnegative
/// slack around it.
fn planted_system(n: usize, m: usize, seed: u64) -> (System, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xstar: Vec<f64> = (0..n).map(|_| rng.gen_range(-50.0..50.0)).collect();
    let mut sys = System::new(n);
    for _ in 0..m {
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n);
        if i == j {
            j = (j + 1) % n;
        }
        let slack = rng.gen_range(0.0..5.0);
        sys.add(i, j, xstar[i] - xstar[j] + slack);
    }
    (sys, xstar)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn planted_feasible_systems_solve(n in 2usize..60, m in 1usize..200, seed in any::<u64>()) {
        let (sys, xstar) = planted_system(n, m, seed);
        sys.check(&xstar, 1e-9).expect("planted solution satisfies");
        let metrics = Metrics::new();
        match sys.solve(&metrics) {
            Solution::Feasible(x) => sys.check(&x, 1e-9).expect("solver output satisfies"),
            Solution::Infeasible => prop_assert!(false, "feasible system rejected"),
        }
    }

    #[test]
    fn solver_matches_bellman_ford(n in 2usize..40, m in 1usize..120, seed in any::<u64>()) {
        let (sys, _) = planted_system(n, m, seed);
        let metrics = Metrics::new();
        let (a, b) = (sys.solve(&metrics), sys.solve_bellman_ford());
        match (a, b) {
            (Solution::Feasible(x), Solution::Feasible(y)) => {
                for (xa, ya) in x.iter().zip(&y) {
                    prop_assert!((xa - ya).abs() < 1e-6, "{xa} vs {ya}");
                }
            }
            other => prop_assert!(false, "disagreement: {other:?}"),
        }
    }

    #[test]
    fn planted_negative_cycle_rejected(
        n in 3usize..40, m in 0usize..80, cyc in 2usize..5, seed in any::<u64>()
    ) {
        let (mut sys, _) = planted_system(n, m, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        // Plant a strictly negative constraint cycle on random distinct
        // variables.
        use rand::seq::SliceRandom;
        let mut vars: Vec<usize> = (0..n).collect();
        vars.shuffle(&mut rng);
        let cyc = cyc.min(n);
        for i in 0..cyc {
            sys.add(vars[i], vars[(i + 1) % cyc], -1.0);
        }
        let metrics = Metrics::new();
        prop_assert_eq!(sys.solve(&metrics), Solution::Infeasible);
        prop_assert_eq!(sys.solve_bellman_ford(), Solution::Infeasible);
    }

    #[test]
    fn grid_systems_feasible_iff_positive_slack(
        rows in 2usize..10, cols in 2usize..10, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let good = grid_schedule_system(rows, cols, 5.0, 1.0, &mut rng);
        let metrics = Metrics::new();
        prop_assert!(matches!(good.solve(&metrics), Solution::Feasible(_)));
        let mut rng = StdRng::seed_from_u64(seed);
        let bad = grid_schedule_system(rows, cols, 5.0, -0.5, &mut rng);
        prop_assert_eq!(bad.solve(&metrics), Solution::Infeasible);
    }
}
