//! Application: systems of difference constraints solved through the
//! separator-decomposition shortest-path engine.
//!
//! The paper (Section 1) highlights "solving linear systems of
//! inequalities where each inequality involves at most two variables" as
//! an application outside the shortest-path realm: the Cohen–Megiddo
//! solver's `Õ(n³)` term is the work bound of a Floyd–Warshall-style
//! path computation on the *underlying graph* of the system, and "the
//! algorithm can use instead the work bound of any polylog-time directed
//! all-pairs shortest-paths algorithm that is applicable to the underlying
//! graph" — when that graph has a `k^μ`-separator decomposition the system
//! solves in `Õ(n^{1+2μ} + mn)`.
//!
//! This crate implements the canonical instance of that connection —
//! **difference constraints** `x_i − x_j ≤ c` — whose underlying graph
//! computation *is* single-source shortest paths (the general `ax+by≤c`
//! case layers a piecewise-linear function semiring on the identical graph
//! engine; see DESIGN.md). Feasibility ⇔ no negative cycle; a feasible
//! point is read off a distance vector (Cormen–Leiserson–Rivest, the
//! paper's reference \[3\]).
//!
//! The constraint graph: a vertex per variable, an edge `j → i` of weight
//! `c` per constraint `x_i − x_j ≤ c`; then `x_i = dist(virtual source →
//! i)` satisfies every constraint. We accelerate the distance computation
//! with the separator pipeline whenever the caller provides (or lets us
//! build) a decomposition of the constraint graph — exactly the
//! structured systems the paper motivates (grid-like constraint patterns
//! from scheduling and layout problems).

use spsep_core::{preprocess, Algorithm};
use spsep_graph::semiring::Tropical;
use spsep_graph::{DiGraph, Edge};
use spsep_pram::Metrics;
use spsep_separator::{builders, RecursionLimits, SepTree};

/// One difference constraint `x_i − x_j ≤ c`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Constraint {
    /// Index of the bounded variable (`i`).
    pub i: usize,
    /// Index of the reference variable (`j`).
    pub j: usize,
    /// The bound `c`.
    pub c: f64,
}

impl Constraint {
    /// `x_i − x_j ≤ c`.
    pub fn new(i: usize, j: usize, c: f64) -> Self {
        Constraint { i, j, c }
    }
}

/// A system of difference constraints over `num_vars` variables.
///
/// ```
/// use spsep_tvpi::{System, Solution};
/// use spsep_pram::Metrics;
///
/// let mut sys = System::new(2);
/// sys.add(0, 1, 3.0);   // x0 − x1 ≤ 3
/// sys.add(1, 0, -1.0);  // x1 − x0 ≤ −1   (i.e. x1 ≤ x0 − 1)
/// match sys.solve(&Metrics::new()) {
///     Solution::Feasible(x) => sys.check(&x, 1e-9).unwrap(),
///     Solution::Infeasible => unreachable!(),
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct System {
    num_vars: usize,
    constraints: Vec<Constraint>,
}

/// Outcome of a solve.
#[derive(Clone, Debug, PartialEq)]
pub enum Solution {
    /// A satisfying assignment (one of infinitely many; maximal in each
    /// coordinate among solutions with `max x_i = 0`).
    Feasible(Vec<f64>),
    /// The constraints contain a negative cycle: no assignment exists.
    Infeasible,
}

impl System {
    /// Empty system over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        System {
            num_vars,
            constraints: Vec::new(),
        }
    }

    /// Add `x_i − x_j ≤ c`.
    pub fn add(&mut self, i: usize, j: usize, c: f64) -> &mut Self {
        assert!(i < self.num_vars && j < self.num_vars);
        assert!(i != j, "a difference constraint needs two distinct variables");
        self.constraints.push(Constraint::new(i, j, c));
        self
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// `true` if no constraints were added.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The underlying constraint graph (paper Section 1: "a vertex
    /// corresponding to each variable and an edge to each inequality").
    ///
    /// Classic formulations append a virtual super-source; that vertex is
    /// *universal* and would wreck any separator structure, so the solver
    /// instead runs a **multi-source** query (every variable seeded at
    /// `0`), which is equivalent and keeps the constraint graph exactly
    /// the structured graph the paper analyzes.
    pub fn constraint_graph(&self) -> DiGraph<f64> {
        let mut edges: Vec<Edge<f64>> = Vec::with_capacity(self.constraints.len());
        for c in &self.constraints {
            edges.push(Edge::new(c.j, c.i, c.c));
        }
        DiGraph::from_edges(self.num_vars, edges)
    }

    /// Solve using the separator-decomposition engine with a decomposition
    /// tree built by BFS bisection over the constraint graph's skeleton.
    ///
    /// Structured systems (banded/grid-like variable interactions) get the
    /// paper's `Õ(n^{1+2μ})`-style bound; arbitrary systems still solve
    /// correctly through the fallback separators.
    pub fn solve(&self, metrics: &Metrics) -> Solution {
        let g = self.constraint_graph();
        let adj = g.undirected_skeleton();
        let tree = builders::bfs_tree(&adj, RecursionLimits::default());
        self.solve_with_tree(&g, &tree, metrics)
    }

    /// Solve with a caller-provided decomposition tree of the constraint
    /// graph (as returned by [`System::constraint_graph`]).
    pub fn solve_with_tree(
        &self,
        g: &DiGraph<f64>,
        tree: &SepTree,
        metrics: &Metrics,
    ) -> Solution {
        match preprocess::<Tropical>(g, tree, Algorithm::LeavesUp, metrics) {
            Err(_) => Solution::Infeasible,
            Ok(pre) => {
                // Multi-source query: every variable starts at 0 — the
                // super-source trick without the super-source.
                let (dist, _) = pre.distances_from_init(vec![0.0; self.num_vars]);
                Solution::Feasible(dist)
            }
        }
    }

    /// Reference solve via plain Bellman–Ford (for cross-checks and the
    /// E12 baseline). Uses the textbook virtual super-source.
    pub fn solve_bellman_ford(&self) -> Solution {
        let n = self.num_vars;
        let mut edges: Vec<Edge<f64>> = Vec::with_capacity(self.constraints.len() + n);
        for c in &self.constraints {
            edges.push(Edge::new(c.j, c.i, c.c));
        }
        for v in 0..n {
            edges.push(Edge::new(n, v, 0.0));
        }
        let g = DiGraph::from_edges(n + 1, edges);
        match spsep_baselines::bellman_ford(&g, n) {
            Err(_) => Solution::Infeasible,
            Ok(r) => Solution::Feasible(r.dist[..n].to_vec()),
        }
    }

    /// Check an assignment against every constraint (`tol` slack for
    /// floating-point).
    pub fn check(&self, x: &[f64], tol: f64) -> Result<(), Constraint> {
        for c in &self.constraints {
            if x[c.i] - x[c.j] > c.c + tol {
                return Err(*c);
            }
        }
        Ok(())
    }
}

/// Build a grid-structured scheduling system: variables laid out on a
/// `rows × cols` grid with precedence constraints between neighbours. A
/// ground-truth schedule `x*(r,c) ≈ gap·(r+c)` is planted first and every
/// constraint is generated *around it* — forward constraints are tight at
/// `x*` ("the next task starts this much later"), backward constraints
/// leave `slack ≥ 0` of room — so the system is feasible iff
/// `slack ≥ 0`, and its underlying graph is exactly the paper's 2-D grid
/// family.
pub fn grid_schedule_system(
    rows: usize,
    cols: usize,
    gap: f64,
    slack: f64,
    rng: &mut impl rand::Rng,
) -> System {
    let mut sys = System::new(rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    let xstar: Vec<f64> = (0..rows * cols)
        .map(|v| {
            let (r, c) = (v / cols, v % cols);
            gap * (r + c) as f64 + rng.gen_range(0.0..0.4 * gap)
        })
        .collect();
    let pair = |sys: &mut System, i: usize, j: usize| {
        // Tight forward constraint and slack backward constraint, both
        // anchored at the planted schedule.
        sys.add(i, j, xstar[i] - xstar[j]);
        sys.add(j, i, xstar[j] - xstar[i] + slack);
    };
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                pair(&mut sys, id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                pair(&mut sys, id(r, c), id(r + 1, c));
            }
        }
    }
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simple_feasible_system() {
        let mut sys = System::new(3);
        sys.add(0, 1, 3.0); // x0 ≤ x1 + 3
        sys.add(1, 2, -2.0); // x1 ≤ x2 − 2
        sys.add(2, 0, 1.0); // x2 ≤ x0 + 1
        let metrics = Metrics::new();
        match sys.solve(&metrics) {
            Solution::Feasible(x) => sys.check(&x, 1e-9).expect("assignment satisfies"),
            Solution::Infeasible => panic!("system is feasible"),
        }
    }

    #[test]
    fn infeasible_cycle() {
        let mut sys = System::new(2);
        sys.add(0, 1, -1.0); // x0 ≤ x1 − 1
        sys.add(1, 0, -1.0); // x1 ≤ x0 − 1  → x0 ≤ x0 − 2, impossible
        let metrics = Metrics::new();
        assert_eq!(sys.solve(&metrics), Solution::Infeasible);
        assert_eq!(sys.solve_bellman_ford(), Solution::Infeasible);
    }

    #[test]
    fn separator_solution_matches_bellman_ford() {
        let mut rng = StdRng::seed_from_u64(31);
        let sys = grid_schedule_system(5, 6, 1.0, 0.5, &mut rng);
        let metrics = Metrics::new();
        let (a, b) = (sys.solve(&metrics), sys.solve_bellman_ford());
        match (a, b) {
            (Solution::Feasible(x), Solution::Feasible(y)) => {
                sys.check(&x, 1e-9).unwrap();
                sys.check(&y, 1e-9).unwrap();
                for (xa, ya) in x.iter().zip(&y) {
                    assert!((xa - ya).abs() < 1e-6, "{xa} vs {ya}");
                }
            }
            other => panic!("expected both feasible, got {other:?}"),
        }
    }

    #[test]
    fn tight_schedule_is_infeasible_when_slack_negative() {
        let mut rng = StdRng::seed_from_u64(32);
        // slack < 0 makes the forward+backward pair a negative cycle.
        let sys = grid_schedule_system(3, 3, 1.0, -0.8, &mut rng);
        let metrics = Metrics::new();
        assert_eq!(sys.solve(&metrics), Solution::Infeasible);
    }

    #[test]
    fn unconstrained_variables_stay_at_zero() {
        let sys = System::new(4);
        let metrics = Metrics::new();
        match sys.solve(&metrics) {
            Solution::Feasible(x) => assert_eq!(x, vec![0.0; 4]),
            _ => panic!(),
        }
    }

    #[test]
    fn check_reports_the_violated_constraint() {
        let mut sys = System::new(2);
        sys.add(0, 1, 1.0);
        let bad = [5.0, 0.0];
        assert_eq!(sys.check(&bad, 1e-9), Err(Constraint::new(0, 1, 1.0)));
    }
}
