//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, and [`BenchmarkId`]. Each
//! benchmark body is timed over a small fixed number of iterations and
//! the mean is printed — no statistics, no HTML reports. Good enough to
//! keep the benches compiling and smoke-runnable.

use std::time::{Duration, Instant};

/// Label for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id.
pub trait IntoBenchmarkId {
    /// Render to the printed label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark bodies; [`Bencher::iter`] times the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Iterations per measurement (the shim repurposes sample size).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = n.max(1) as u64;
        self
    }

    /// Accepted and ignored (single measurement in the shim).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored (single measurement in the shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run and report one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&self.name, &id.into_id(), b.iters, b.elapsed);
        self
    }

    /// Run and report one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&self.name, &id.into_id(), b.iters, b.elapsed);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, iters: u64, elapsed: Duration) {
    let mean_us = if iters == 0 {
        0.0
    } else {
        elapsed.as_secs_f64() * 1e6 / iters as f64
    };
    println!("bench {group}/{id}: {mean_us:.1} us/iter ({iters} iters)");
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: 10,
            _parent: self,
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Prevent the optimizer from discarding `x` (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Mirror of `criterion_group!`: defines a runner fn calling each bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_produces_runner() {
        benches();
    }
}
