//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its property tests use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with [`strategy::Strategy::prop_map`],
//! [`arbitrary::any`], integer/float range strategies, tuple strategies,
//! and `prop_assert*` macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` times over inputs
//! drawn from a deterministic per-case RNG (seeded from the case index),
//! so failures reproduce exactly across runs. There is **no shrinking**
//! — a failing case reports the raw sampled values via the panic message
//! of the underlying `assert!`.

pub mod test_runner {
    //! Runner configuration and the deterministic test RNG.

    /// Mirror of `proptest::test_runner::Config` (the subset used).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Mirror of `proptest::test_runner::Config::with_cases`.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case RNG handed to strategies.
    pub struct TestRng(pub rand::rngs::StdRng);

    impl TestRng {
        /// RNG for case number `case` — a fixed base seed mixed with the
        /// case index, so every run samples the same sequence.
        pub fn for_case(case: u64) -> Self {
            use rand::SeedableRng;
            TestRng(rand::rngs::StdRng::seed_from_u64(
                0x5eed_cafe_0000_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of the given value (mirror of
    /// `proptest::strategy::Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: rand::SampleUniform,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.0.gen_range(self.start..self.end)
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: rand::SampleUniform,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.0.gen_range(*self.start()..=*self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A/0);
    impl_tuple_strategy!(A/0, B/1);
    impl_tuple_strategy!(A/0, B/1, C/2);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.0.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.0.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only: arbitrary magnitudes in ±1e9.
            rng.0.gen_range(-1.0e9..1.0e9)
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The canonical strategy for `T` (mirror of `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn` runs `cases` times over sampled
/// inputs. See the crate docs for the differences from real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case as u64);
                    $( let $pat =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

/// Assertion inside a property test (panics on failure, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
// The struct-update config form is kept on purpose: it pins the
// public `ProptestConfig { cases, ..default() }` syntax real proptest
// users write, even though the shim's config has no other fields.
#[allow(clippy::needless_update)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, u64)> {
        (1usize..10, any::<u64>()).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Ranges honor their bounds.
        #[test]
        fn ranges_in_bounds(n in 3usize..17, x in -4i64..4, f in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-4..4).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn mapped_strategies_apply((a, _b) in arb_pair(), flag in any::<bool>()) {
            prop_assert_eq!(a % 2, 0);
            prop_assert_eq!((flag as u8) & 1, flag as u8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0usize..1000;
        let a: Vec<usize> = (0..20)
            .map(|c| s.sample(&mut crate::test_runner::TestRng::for_case(c)))
            .collect();
        let b: Vec<usize> = (0..20)
            .map(|c| s.sample(&mut crate::test_runner::TestRng::for_case(c)))
            .collect();
        assert_eq!(a, b);
    }
}
