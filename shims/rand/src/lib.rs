//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed,
//! which is all the tests and instance generators rely on. Streams are
//! **not** bit-compatible with the real `rand` crate.

/// Low-level generator interface (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample uniformly from a half-open
/// or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling; the tiny modulo bias is
                // irrelevant for test-instance generation.
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + r) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                if lo == hi {
                    return lo;
                }
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ (Blackman–Vigna), seeded
    /// through SplitMix64. Stands in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice helpers (mirror of `rand::seq::SliceRandom`).
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_honored() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
