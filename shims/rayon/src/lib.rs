//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset it uses. [`join`] runs its closures on real
//! scoped threads; the `par_iter` family returns ordinary sequential
//! iterators (every std `Iterator` adaptor keeps working, so call sites
//! are source-compatible). Algorithmic results are identical; only
//! wall-clock parallelism of the iterator adaptors is sacrificed until
//! the real crate is restorable.

/// Run `a` and `b` potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirror; thread-count hints are accepted and ignored.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    _num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepted for API compatibility; the shim always runs inline.
    pub fn num_threads(mut self, n: usize) -> Self {
        self._num_threads = n;
        self
    }

    /// Build the (inline) pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }
}

/// Pool mirror: `install` simply invokes the closure.
pub struct ThreadPool;

impl ThreadPool {
    /// Run `f` "inside the pool".
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }
}

/// Number of threads the pool would use (the shim runs inline).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

pub mod prelude {
    //! Parallel-iterator traits, mapped onto sequential std iterators.

    /// Mirror of `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item;
        /// Underlying iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Consume `self` into a "parallel" (here: sequential) iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Mirror of `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type.
        type Item: 'a;
        /// Underlying iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate `&self` "in parallel".
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
    where
        &'a T: IntoIterator,
    {
        type Item = <&'a T as IntoIterator>::Item;
        type Iter = <&'a T as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Mirror of `rayon::iter::IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Item type.
        type Item: 'a;
        /// Underlying iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate `&mut self` "in parallel".
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
    where
        &'a mut T: IntoIterator,
    {
        type Item = <&'a mut T as IntoIterator>::Item;
        type Iter = <&'a mut T as IntoIterator>::IntoIter;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Fallible-reduction mirror of `ParallelIterator::try_reduce`,
    /// blanket-implemented for every iterator over `Result`s.
    pub trait TryReduceExt<T, E>: Iterator<Item = Result<T, E>> + Sized {
        /// Reduce `Ok` items with `op`, short-circuiting on the first
        /// `Err`; `identity` seeds the accumulator as in rayon.
        fn try_reduce<ID, OP>(self, identity: ID, op: OP) -> Result<T, E>
        where
            ID: Fn() -> T,
            OP: Fn(T, T) -> Result<T, E>,
        {
            let mut acc = identity();
            for item in self {
                acc = op(acc, item?)?;
            }
            Ok(acc)
        }
    }

    impl<I, T, E> TryReduceExt<T, E> for I where I: Iterator<Item = Result<T, E>> {}

    /// Mirror of `rayon::slice::ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        /// Mutable chunks of at most `chunk_size` elements.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
        /// Unstable sort (sequential in the shim).
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable();
        }
    }

    /// Mirror of `rayon::slice::ParallelSlice`.
    pub trait ParallelSlice<T> {
        /// Chunks of at most `chunk_size` elements.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both_and_propagates_panics() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
        let res = std::panic::catch_unwind(|| {
            super::join(|| (), || panic!("boom"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn par_iter_adapters_behave_like_std() {
        let v = vec![3u64, 1, 2];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        let sum: u64 = (0..10u64).into_par_iter().sum();
        assert_eq!(sum, 45);
        let mut w = v.clone();
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![4, 2, 3]);
        w.par_sort_unstable();
        assert_eq!(w, vec![2, 3, 4]);
        let mut buf = [0u8; 10];
        for (i, c) in buf.par_chunks_mut(3).enumerate() {
            c.fill(i as u8);
        }
        assert_eq!(buf, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 7), 7);
        assert!(super::current_num_threads() >= 1);
    }
}
