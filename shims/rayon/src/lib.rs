//! Offline stand-in for the `rayon` crate — now a real executor.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset it uses. Earlier revisions ran every
//! `par_iter` sequentially and spawned an OS thread per [`join`]; this
//! revision executes parallel regions on a fixed-size worker pool
//! (`pool`: shared injector queue, chunk-grain work stealing,
//! steal-back `join`) while preserving a strict **determinism
//! contract** (`iter`: chunk boundaries are a pure function of
//! input length, merges happen in chunk order), so results are
//! bit-identical at any thread count.
//!
//! Thread-count control, strongest first:
//!
//! 1. [`with_max_threads`] / [`ThreadPool::install`] — scoped cap,
//!    inherited by nested regions and by pool workers executing the
//!    scope's chunks;
//! 2. the `SPSEP_THREADS` environment variable — process-wide default
//!    (read once, at first pool use);
//! 3. `std::thread::available_parallelism()`.
//!
//! A panic inside a parallel region is caught per chunk, drains the
//! region, and is re-raised exactly once on the calling thread (lowest
//! chunk index wins, deterministically) — never a poisoned lock, never
//! a hang. `spsep_core::preprocess` maps that re-raised panic to
//! `SpsepError::Executor`.

mod pool;

pub mod iter;

pub use pool::{join, pool_stats, reset_pool_stats, with_max_threads, PoolStats, WorkerStats};

/// Below this weight (caller-chosen units: elements, vertices, …)
/// [`join_weighted`] runs sequentially — publishing to the pool costs a
/// queue push + latch, which tiny workloads (e.g. Algorithm 4.1 on
/// small leaves) should not pay.
pub const JOIN_SEQ_CUTOFF: usize = 256;

/// [`join`] with a granularity cutoff: runs `a(); b()` inline when
/// `weight < `[`JOIN_SEQ_CUTOFF`], otherwise parallelizes.
pub fn join_weighted<A, B, RA, RB>(weight: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if weight < JOIN_SEQ_CUTOFF {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        join(a, b)
    }
}

/// Effective thread count of the current scope: the innermost
/// [`with_max_threads`] cap, else `SPSEP_THREADS`, else the host
/// parallelism.
pub fn current_num_threads() -> usize {
    pool::effective_threads()
}

/// Total threads the shared pool can bring to bear (its worker count
/// plus the calling thread). [`with_max_threads`] clamps to this; it is
/// at least 8 even on single-core hosts so concurrency tests can
/// oversubscribe.
pub fn max_threads() -> usize {
    pool::capacity()
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirror. The shim has one shared pool; "building a pool of
/// `n` threads" maps to a scoped [`with_max_threads`]`(n)` cap applied
/// by [`ThreadPool::install`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` threads (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Pool mirror: a capability to run closures under a thread-count cap.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread-count cap in scope.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        if self.num_threads == 0 {
            f()
        } else {
            with_max_threads(self.num_threads, f)
        }
    }
}

pub mod prelude {
    //! The parallel-iterator trait surface, mirroring `rayon::prelude`.

    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSlice, ParallelSliceMut, TryReduceExt,
    };
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    use super::prelude::*;

    #[test]
    fn join_returns_both_and_propagates_panics() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
        let res = catch_unwind(|| {
            super::join(|| (), || panic!("boom"));
        });
        assert!(res.is_err());
        // The pool must stay usable after a panic (no poisoned state).
        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn join_prefers_first_closures_panic() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            super::join(|| panic!("first"), || panic!("second"));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "first");
    }

    #[test]
    fn join_weighted_small_runs_inline_without_pool_handoff() {
        // Pin the cutoff contract: below JOIN_SEQ_CUTOFF both closures
        // run on the calling thread, in order.
        let caller = std::thread::current().id();
        let order = Mutex::new(Vec::new());
        let (ta, tb) = super::join_weighted(
            super::JOIN_SEQ_CUTOFF - 1,
            || {
                order.lock().unwrap().push('a');
                std::thread::current().id()
            },
            || {
                order.lock().unwrap().push('b');
                std::thread::current().id()
            },
        );
        assert_eq!((ta, tb), (caller, caller));
        assert_eq!(*order.lock().unwrap(), vec!['a', 'b']);
        // At the cutoff the second closure may migrate; results are
        // unchanged either way.
        let (ra, rb) = super::join_weighted(super::JOIN_SEQ_CUTOFF, || 6 * 7, || 6 * 8);
        assert_eq!((ra, rb), (42, 48));
    }

    #[test]
    fn parallel_regions_actually_use_multiple_threads() {
        // With enough chunks and an oversubscribed cap, at least two
        // distinct threads must participate (workers park otherwise).
        let ids = Mutex::new(HashSet::new());
        super::with_max_threads(4, || {
            (0..1024usize).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::hint::black_box(std::time::Instant::now());
                std::thread::sleep(std::time::Duration::from_micros(50));
            });
        });
        assert!(
            ids.lock().unwrap().len() >= 2,
            "expected >=2 participating threads, got {}",
            ids.lock().unwrap().len()
        );
    }

    #[test]
    fn with_max_threads_one_stays_on_caller() {
        let caller = std::thread::current().id();
        super::with_max_threads(1, || {
            (0..256usize).into_par_iter().for_each(|_| {
                assert_eq!(std::thread::current().id(), caller);
            });
            let (ta, tb) = super::join(
                || std::thread::current().id(),
                || std::thread::current().id(),
            );
            assert_eq!((ta, tb), (caller, caller));
        });
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn float_sums_are_bit_identical_across_thread_counts() {
        // Non-associative op: bit-identity requires the fixed chunk
        // boundaries + ordered merge, which is the contract under test.
        let xs: Vec<f64> = (0..10_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let expect: f64 = super::with_max_threads(1, || xs.par_iter().map(|&x| x).sum());
        for threads in [2usize, 4, 8] {
            let got: f64 = super::with_max_threads(threads, || xs.par_iter().map(|&x| x).sum());
            assert_eq!(expect.to_bits(), got.to_bits(), "threads={threads}");
        }
        let red = super::with_max_threads(8, || {
            xs.par_iter().map(|&x| x).reduce(|| 0.0, |a, b| a + b)
        });
        assert_eq!(expect.to_bits(), red.to_bits());
    }

    #[test]
    fn par_iter_adapters_match_std() {
        let v = vec![3u64, 1, 2];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        let sum: u64 = (0..10u64).into_par_iter().sum();
        assert_eq!(sum, 45);
        let mut w = v.clone();
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![4, 2, 3]);
        w.par_sort_unstable();
        assert_eq!(w, vec![2, 3, 4]);
        let mut buf = [0u8; 10];
        buf.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            c.fill(u8::try_from(i).unwrap());
        });
        assert_eq!(buf, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        let picked: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter_map(|i| (i % 7 == 0).then_some(i))
            .collect();
        let expect: Vec<usize> = (0..100).filter(|i| i % 7 == 0).collect();
        assert_eq!(picked, expect);
        let chunk_heads: Vec<u8> = buf.par_chunks(3).map(|c| c[0]).collect();
        assert_eq!(chunk_heads, vec![0, 1, 2, 3]);
    }

    #[test]
    fn par_sort_matches_sequential_sort() {
        // Above the cutoff (parallel chunk sort + k-way merge).
        let mut xs: Vec<u64> = (0..20_000u64).map(|i| i.wrapping_mul(2654435761) % 4096).collect();
        let mut expect = xs.clone();
        expect.sort_unstable();
        xs.par_sort_unstable();
        assert_eq!(xs, expect);
        // And bit-identical across thread counts.
        for threads in [1usize, 4] {
            let mut ys: Vec<u64> =
                (0..20_000u64).map(|i| i.wrapping_mul(2654435761) % 4096).collect();
            super::with_max_threads(threads, || ys.par_sort_unstable());
            assert_eq!(ys, expect, "threads={threads}");
        }
    }

    #[test]
    fn try_reduce_matches_sequential_fold_and_reports_first_error() {
        let ok: Result<usize, &str> = (0..1000usize)
            .into_par_iter()
            .map(Ok)
            .try_reduce(|| 0, |a, b| Ok(a.max(b)));
        assert_eq!(ok, Ok(999));
        // Several failing indices: the smallest-index error must win,
        // regardless of which chunk finishes first.
        let err: Result<usize, usize> = (0..1000usize)
            .into_par_iter()
            .map(|i| if i % 251 == 250 { Err(i) } else { Ok(i) })
            .try_reduce(|| 0, |a, b| Ok(a.max(b)));
        assert_eq!(err, Err(250));
    }

    #[test]
    fn panic_in_parallel_region_propagates_once_and_pool_survives() {
        for _ in 0..3 {
            let err = catch_unwind(AssertUnwindSafe(|| {
                super::with_max_threads(4, || {
                    (0..512usize).into_par_iter().for_each(|i| {
                        assert!(i != 97, "deterministic failure");
                    });
                });
            }));
            assert!(err.is_err());
        }
        // Pool still answers correctly afterwards.
        let total: usize = (0..100usize).into_par_iter().sum();
        assert_eq!(total, 4950);
    }

    #[test]
    fn nested_parallel_regions_work() {
        let hits = AtomicUsize::new(0);
        super::with_max_threads(4, || {
            (0..8usize).into_par_iter().for_each(|_| {
                (0..8usize).into_par_iter().for_each(|_| {
                    let (_, _) = super::join(
                        || hits.fetch_add(1, Ordering::Relaxed),
                        || hits.fetch_add(1, Ordering::Relaxed),
                    );
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 128);
    }

    #[test]
    fn pool_installs_apply_thread_cap() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
        assert_eq!(pool.install(super::current_num_threads), 4);
        assert!(super::current_num_threads() >= 1);
        assert!(super::max_threads() >= 8);
    }

    #[test]
    fn pool_stats_observe_executor_activity() {
        let handled = |s: &super::PoolStats| {
            s.workers.iter().map(|w| w.tasks).sum::<u64>() + s.reclaimed_handles + s.steal_backs
        };
        let before = super::pool_stats();
        super::with_max_threads(4, || {
            (0..4096usize).into_par_iter().for_each(|i| {
                std::hint::black_box(i);
                std::thread::sleep(std::time::Duration::from_micros(10));
            });
            for _ in 0..8 {
                let (a, b) = super::join(|| std::hint::black_box(1), || std::hint::black_box(2));
                assert_eq!((a, b), (1, 2));
            }
        });
        let after = super::pool_stats();
        assert_eq!(after.workers.len(), super::max_threads() - 1);
        assert!(after.workers[0].name.starts_with("spsep-worker-"));
        assert!(after.max_queue_depth >= 1);
        // Every published handle is either executed by a worker,
        // reclaimed by its caller, or (joins) stolen back — so the
        // combined counter must advance across a parallel region.
        assert!(handled(&after) > handled(&before));
    }

    #[test]
    fn spsep_threads_parsing() {
        use crate::pool::parse_thread_env;
        assert_eq!(parse_thread_env(None), None);
        assert_eq!(parse_thread_env(Some("")), None);
        assert_eq!(parse_thread_env(Some("0")), None);
        assert_eq!(parse_thread_env(Some("junk")), None);
        assert_eq!(parse_thread_env(Some("4")), Some(4));
        assert_eq!(parse_thread_env(Some(" 16 ")), Some(16));
        assert_eq!(parse_thread_env(Some("9999999")), None);
    }
}
