//! Chunked parallel iterators with a *deterministic reduction order*.
//!
//! Every data-parallel operation here follows one recipe: split the
//! index space `0..len` into [`chunk_count`]`(len)` contiguous chunks
//! whose boundaries are a **pure function of `len`** (never of the
//! thread count), execute chunks on the pool via
//! `pool::run_batch`, and merge per-chunk results **in chunk
//! order**. Because neither the chunk structure nor the merge order can
//! observe scheduling, every terminal operation — `collect`, `reduce`,
//! `try_reduce`, `sum`, `par_sort_unstable` — returns *bit-identical*
//! results at any `SPSEP_THREADS`, including non-associative-in-
//! floating-point folds. That determinism contract is what the
//! differential test layer in `spsep-testkit` pins down.
//!
//! The design is index-based rather than splitter-based (as real rayon
//! is): a producer exposes `(len, item(i))` and adaptors compose on
//! top. This covers the API subset the workspace uses with far less
//! machinery, while keeping real multi-threaded execution.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

use crate::pool;

/// Upper bound on chunks per parallel region. More chunks than threads
/// keeps the claim loop load-balanced (work stealing at chunk grain);
/// a constant bound keeps per-region overhead O(1).
pub const TARGET_CHUNKS: usize = 64;

/// Number of chunks for a region over `len` items — pure in `len`.
#[inline]
pub fn chunk_count(len: usize) -> usize {
    len.min(TARGET_CHUNKS)
}

/// Half-open bounds of chunk `c` of `nc` over `len` items — pure in
/// `(len, nc, c)`, exhaustive and non-overlapping.
#[inline]
pub fn chunk_bounds(len: usize, nc: usize, c: usize) -> (usize, usize) {
    let lo = (len as u128 * c as u128 / nc as u128) as usize;
    let hi = (len as u128 * (c + 1) as u128 / nc as u128) as usize;
    (lo, hi)
}

/// One write-once slot per chunk; chunk `c` writes slot `c`, the caller
/// reads them all only after the batch completed. This is how ordered
/// merges receive out-of-order execution.
struct Slots<T> {
    slots: Vec<UnsafeCell<Option<T>>>,
}

// SAFETY: slot `c` is written by exactly one chunk execution (chunk
// indices are claimed uniquely) and read only after `run_batch`
// returned, which synchronizes-with every chunk completion.
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T: Send> Slots<T> {
    fn new(n: usize) -> Self {
        Slots {
            slots: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    /// SAFETY: caller guarantees exclusive access to slot `c`.
    unsafe fn put(&self, c: usize, value: T) {
        unsafe { *self.slots[c].get() = Some(value) };
    }

    fn into_ordered(self) -> Vec<T> {
        self.slots
            .into_iter()
            .map(|cell| cell.into_inner().expect("completed batch filled every slot"))
            .collect()
    }
}

/// Run `f(lo, hi)` over every chunk of `0..len` on the pool and return
/// the per-chunk results **in chunk order**.
fn run_chunked<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let nc = chunk_count(len);
    if nc == 0 {
        return Vec::new();
    }
    let slots = Slots::new(nc);
    let body = |c: usize| {
        let (lo, hi) = chunk_bounds(len, nc, c);
        // SAFETY: chunk `c` runs at most once per batch.
        unsafe { slots.put(c, f(lo, hi)) };
    };
    pool::run_batch(nc, &body);
    slots.into_ordered()
}

/// The shim's parallel iterator: an indexed producer plus composable
/// adaptors. `pi_len`/`pi_item` are the producer contract; everything
/// else has a default chunked implementation.
pub trait ParallelIterator: Sized + Send + Sync {
    /// Items crossing chunk boundaries must be sendable.
    type Item: Send;

    /// Number of underlying positions (pre-filtering).
    fn pi_len(&self) -> usize;

    /// Produce the item at `index`, or `None` if filtered out.
    ///
    /// # Safety
    /// Each `index` must be accessed at most once across all threads per
    /// traversal — mutable producers hand out `&mut` per position.
    unsafe fn pi_item(&self, index: usize) -> Option<Self::Item>;

    /// Map each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Map-and-filter each item through `f`.
    fn filter_map<F, R>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Send + Sync,
        R: Send,
    {
        FilterMap { base: self, f }
    }

    /// Pair each item with its producer index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Consume every item with `f`, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let len = self.pi_len();
        let nc = chunk_count(len);
        if nc == 0 {
            return;
        }
        let body = |c: usize| {
            let (lo, hi) = chunk_bounds(len, nc, c);
            for i in lo..hi {
                // SAFETY: chunks are disjoint and claimed uniquely.
                if let Some(item) = unsafe { self.pi_item(i) } {
                    f(item);
                }
            }
        };
        pool::run_batch(nc, &body);
    }

    /// Collect into anything buildable from a `Vec` (in practice:
    /// `Vec<Item>`), preserving producer order.
    fn collect<C>(self) -> C
    where
        C: From<Vec<Self::Item>>,
    {
        let len = self.pi_len();
        let chunks = run_chunked(len, |lo, hi| {
            let mut out = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                // SAFETY: chunks are disjoint and claimed uniquely.
                if let Some(item) = unsafe { self.pi_item(i) } {
                    out.push(item);
                }
            }
            out
        });
        let mut out = Vec::with_capacity(len);
        for chunk in chunks {
            out.extend(chunk);
        }
        C::from(out)
    }

    /// Fold with `identity`/`op`, merging chunk results in chunk order —
    /// deterministic even for non-associative (floating-point) ops.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let len = self.pi_len();
        let chunks = run_chunked(len, |lo, hi| {
            let mut acc = identity();
            for i in lo..hi {
                // SAFETY: chunks are disjoint and claimed uniquely.
                if let Some(item) = unsafe { self.pi_item(i) } {
                    acc = op(acc, item);
                }
            }
            acc
        });
        let mut acc = identity();
        for chunk in chunks {
            acc = op(acc, chunk);
        }
        acc
    }

    /// Sum of all items; chunk partial sums merged in chunk order.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let len = self.pi_len();
        let chunks = run_chunked(len, |lo, hi| {
            (lo..hi)
                // SAFETY: chunks are disjoint and claimed uniquely.
                .filter_map(|i| unsafe { self.pi_item(i) })
                .sum::<S>()
        });
        chunks.into_iter().sum()
    }
}

/// Fallible reduction over iterators of `Result`s, mirroring rayon's
/// `try_reduce`. The returned `Err` is the one at the smallest item
/// index (chunk-ordered merge), matching a sequential left fold.
pub trait TryReduceExt<T, E>: ParallelIterator<Item = Result<T, E>>
where
    T: Send,
    E: Send,
{
    /// Reduce `Ok` items with `op`; `identity` seeds each accumulator.
    fn try_reduce<ID, OP>(self, identity: ID, op: OP) -> Result<T, E>
    where
        ID: Fn() -> T + Send + Sync,
        OP: Fn(T, T) -> Result<T, E> + Send + Sync,
    {
        let len = self.pi_len();
        let chunks = run_chunked(len, |lo, hi| -> Result<T, E> {
            let mut acc = identity();
            for i in lo..hi {
                // SAFETY: chunks are disjoint and claimed uniquely.
                if let Some(item) = unsafe { self.pi_item(i) } {
                    acc = op(acc, item?)?;
                }
            }
            Ok(acc)
        });
        let mut acc = identity();
        for chunk in chunks {
            acc = op(acc, chunk?)?;
        }
        Ok(acc)
    }
}

impl<P, T, E> TryReduceExt<T, E> for P
where
    P: ParallelIterator<Item = Result<T, E>>,
    T: Send,
    E: Send,
{
}

// ---------------------------------------------------------------------
// Adaptors
// ---------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    unsafe fn pi_item(&self, index: usize) -> Option<R> {
        // SAFETY: forwarded contract.
        unsafe { self.base.pi_item(index) }.map(&self.f)
    }
}

/// See [`ParallelIterator::filter_map`].
pub struct FilterMap<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for FilterMap<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> Option<R> + Send + Sync,
    R: Send,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    unsafe fn pi_item(&self, index: usize) -> Option<R> {
        // SAFETY: forwarded contract.
        unsafe { self.base.pi_item(index) }.and_then(&self.f)
    }
}

/// See [`ParallelIterator::enumerate`]. Indices are *producer* indices,
/// which for the indexed producers below (slices, ranges, chunks) match
/// rayon's `enumerate` exactly.
pub struct Enumerate<P> {
    base: P,
}

impl<P> ParallelIterator for Enumerate<P>
where
    P: ParallelIterator,
{
    type Item = (usize, P::Item);

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    unsafe fn pi_item(&self, index: usize) -> Option<(usize, P::Item)> {
        // SAFETY: forwarded contract.
        unsafe { self.base.pi_item(index) }.map(|item| (index, item))
    }
}

// ---------------------------------------------------------------------
// Producers
// ---------------------------------------------------------------------

/// Raw pointer that may cross threads; exclusivity of each reachable
/// element is guaranteed by the chunking protocol, not the type.
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: see type-level comment; T itself must be sendable.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Parallel shared-slice iterator (`par_iter`).
pub struct Iter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn pi_item(&self, index: usize) -> Option<&'a T> {
        Some(&self.slice[index])
    }
}

/// Parallel exclusive-slice iterator (`par_iter_mut`).
pub struct IterMut<'a, T: Send> {
    ptr: SendPtr<T>,
    len: usize,
    // fn-pointer marker: borrows the slice for 'a without making the
    // iterator !Sync (exclusivity comes from the indexing protocol).
    _marker: PhantomData<fn(&'a ()) -> &'a mut T>,
}

impl<'a, T: Send> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;

    fn pi_len(&self) -> usize {
        self.len
    }

    unsafe fn pi_item(&self, index: usize) -> Option<&'a mut T> {
        assert!(index < self.len);
        // SAFETY: each index is visited at most once per traversal
        // (trait contract), so the &mut references never alias.
        Some(unsafe { &mut *self.ptr.0.add(index) })
    }
}

/// Parallel chunked shared view (`par_chunks`).
pub struct Chunks<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];

    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    unsafe fn pi_item(&self, index: usize) -> Option<&'a [T]> {
        let lo = index * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        Some(&self.slice[lo..hi])
    }
}

/// Parallel chunked exclusive view (`par_chunks_mut`).
pub struct ChunksMut<'a, T: Send> {
    ptr: SendPtr<T>,
    len: usize,
    size: usize,
    _marker: PhantomData<fn(&'a ()) -> &'a mut T>,
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn pi_len(&self) -> usize {
        self.len.div_ceil(self.size)
    }

    unsafe fn pi_item(&self, index: usize) -> Option<&'a mut [T]> {
        let lo = index * self.size;
        let hi = (lo + self.size).min(self.len);
        assert!(lo < hi || (lo == 0 && hi == 0));
        // SAFETY: chunk windows are disjoint and each index is visited
        // at most once per traversal (trait contract).
        Some(unsafe { std::slice::from_raw_parts_mut(self.ptr.0.add(lo), hi - lo) })
    }
}

/// Parallel integer-range iterator (`(a..b).into_par_iter()`).
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! int_range_producers {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;

            fn pi_len(&self) -> usize {
                self.len
            }

            unsafe fn pi_item(&self, index: usize) -> Option<$t> {
                debug_assert!(index < self.len);
                Some(self.start + index as $t)
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;

            fn into_par_iter(self) -> RangeIter<$t> {
                let len = if self.end > self.start {
                    usize::try_from(self.end - self.start)
                        .expect("parallel range length overflows usize")
                } else {
                    0
                };
                RangeIter { start: self.start, len }
            }
        }
    )*};
}

int_range_producers!(usize, u32, u64, i32, i64);

// ---------------------------------------------------------------------
// Entry-point traits (the `prelude` surface)
// ---------------------------------------------------------------------

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Mirror of `rayon::iter::IntoParallelRefIterator` (`.par_iter()`).
/// Implemented for `[T]`; `Vec` callers arrive via auto-deref.
pub trait IntoParallelRefIterator<'a> {
    /// Item type.
    type Item: Send + 'a;
    /// Concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterate `&self` in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = Iter<'a, T>;

    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

/// Mirror of `rayon::iter::IntoParallelRefMutIterator`
/// (`.par_iter_mut()`). Implemented for `[T]`.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type.
    type Item: Send + 'a;
    /// Concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterate `&mut self` in parallel.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = IterMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> IterMut<'a, T> {
        IterMut {
            ptr: SendPtr(self.as_mut_ptr()),
            len: self.len(),
            _marker: PhantomData,
        }
    }
}

/// Mirror of `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Shared chunks of at most `chunk_size` elements.
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        Chunks {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Below this length `par_sort_unstable` defers entirely to
/// `slice::sort_unstable` — chunked sort + merge cannot win on inputs
/// this small.
pub const SORT_SEQ_CUTOFF: usize = 4096;

/// Fixed fan-in of the parallel sort: chunk boundaries (and therefore
/// the exact comparison sequence of the merge) depend only on `len`.
const SORT_CHUNKS: usize = 8;

/// Mirror of `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Exclusive chunks of at most `chunk_size` elements.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;

    /// Unstable parallel sort: fixed chunks sorted on the pool, then a
    /// sequential ordered k-way merge (ties to the lowest chunk), so
    /// the output permutation is thread-count independent.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ChunksMut {
            ptr: SendPtr(self.as_mut_ptr()),
            len: self.len(),
            size: chunk_size,
            _marker: PhantomData,
        }
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        let len = self.len();
        if len < SORT_SEQ_CUTOFF {
            self.sort_unstable();
            return;
        }
        let nc = SORT_CHUNKS;
        let ptr = SendPtr(self.as_mut_ptr());
        let body = move |c: usize| {
            // Rebind the whole `SendPtr` so the closure captures it (and
            // its Sync impl) instead of disjointly capturing the
            // non-Sync `*mut T` field.
            let base = ptr;
            let (lo, hi) = chunk_bounds(len, nc, c);
            // SAFETY: chunk windows are disjoint; each chunk index runs
            // at most once per batch.
            unsafe { std::slice::from_raw_parts_mut(base.0.add(lo), hi - lo) }.sort_unstable();
        };
        pool::run_batch(nc, &body);

        // K-way merge into scratch. `scratch` is kept at len 0 and
        // written through raw pointers only: if a comparator panics
        // mid-merge the original slice still owns every element and the
        // scratch buffer frees without running any drops — no element
        // is ever dropped twice.
        let mut scratch: Vec<T> = Vec::with_capacity(len);
        let dst = scratch.as_mut_ptr();
        let mut cursor: Vec<(usize, usize)> = (0..nc).map(|c| chunk_bounds(len, nc, c)).collect();
        for out in 0..len {
            let mut best: Option<usize> = None;
            for (c, &(lo, hi)) in cursor.iter().enumerate() {
                if lo < hi && best.is_none_or(|b| self[lo] < self[cursor[b].0]) {
                    best = Some(c);
                }
            }
            let b = best.expect("merge exhausted chunks early");
            let lo = cursor[b].0;
            // SAFETY: `out < len <= capacity`; source index in bounds.
            unsafe { std::ptr::copy_nonoverlapping(self.as_ptr().add(lo), dst.add(out), 1) };
            cursor[b].0 += 1;
        }
        // SAFETY: scratch[..len] fully initialized above.
        unsafe { std::ptr::copy_nonoverlapping(dst, self.as_mut_ptr(), len) };
    }
}
