//! The fixed-size worker pool behind the `rayon` shim.
//!
//! One global pool of parked worker threads is spawned lazily on first
//! use. Parallel regions are **batches**: a caller splits its index
//! space into chunks (a pure function of the length — see
//! [`crate::iter`]), publishes "come help" handles on a shared injector
//! queue, and then *participates itself*, claiming chunks from a shared
//! atomic cursor. Idle workers pop handles and join the claim loop —
//! chunked work stealing without per-task allocation. [`join`] publishes
//! its second closure the same way and **steals it back** (runs it
//! inline) if no worker has picked it up by the time the first closure
//! finishes, so small joins never pay a handoff.
//!
//! Progress/deadlock argument: a thread waiting on a batch or join latch
//! first (a) claims every remaining chunk itself and (b) removes its own
//! stale handles from the injector, so it only ever waits on work that
//! another thread is *actively executing*; those threads either run to
//! completion or wait on strictly deeper regions, and recursion depth is
//! finite, so the bottom-most region always makes progress.
//!
//! Panics inside a chunk are caught, recorded (lowest chunk index wins,
//! for determinism), fast-drain the rest of the batch, and are re-raised
//! on the calling thread once every helper has retired — never a poisoned
//! mutex, never a hang. `spsep_core::preprocess` converts the re-raised
//! panic into `SpsepError::Executor`.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Lock acquisition that shrugs off poisoning: a panicked thread must
/// surface as a propagated panic / typed error, never as a secondary
/// poisoned-mutex panic (or hang) on an innocent thread.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Minimum pool capacity. The pool keeps at least this many threads
/// (they park when idle) so that [`with_max_threads`] can exercise real
/// 2/4/8-way concurrency — e.g. for the differential test layer — even
/// on hosts that expose a single core.
const MIN_CAPACITY: usize = 8;

/// Hard ceiling on `SPSEP_THREADS`, guarding against a stray
/// `SPSEP_THREADS=1000000`.
const MAX_THREADS: usize = 1024;

/// A type-erased pointer to a stack-pinned [`Batch`] or join job. The
/// submitting call blocks until every handle is retired, which is what
/// keeps the erased borrow alive strictly longer than any worker access.
#[derive(Copy, Clone)]
struct Task {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: the pointed-to job outlives every access (retire protocol
// above) and all shared mutation goes through atomics/locks.
unsafe impl Send for Task {}

pub(crate) struct Pool {
    injector: Mutex<VecDeque<Task>>,
    work_available: Condvar,
    /// Worker threads + 1 (the calling thread participates).
    capacity: usize,
    /// Effective concurrency when no cap is installed:
    /// `SPSEP_THREADS`, defaulting to the host parallelism.
    default_threads: usize,
    /// Telemetry, one slot per worker thread (`capacity - 1` entries).
    worker_telemetry: Vec<WorkerTelemetry>,
    /// Telemetry: `join` second-closures the caller stole back.
    steal_backs: AtomicU64,
    /// Telemetry: stale handles reclaimed by their submitting caller.
    reclaimed_handles: AtomicU64,
    /// Telemetry: high-water mark of the injector queue length.
    max_queue_depth: AtomicU64,
}

/// Per-worker telemetry counters. All updates are relaxed atomics on the
/// side of task execution — purely observational, never consulted by
/// scheduling decisions, so enabling/reading them cannot perturb results.
#[derive(Default)]
struct WorkerTelemetry {
    busy_ns: AtomicU64,
    tasks: AtomicU64,
}

/// Snapshot of the pool's telemetry counters ([`pool_stats`]).
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Per-worker counters, in worker order (the submitting caller's own
    /// inline participation is not a pool worker and is not counted).
    pub workers: Vec<WorkerStats>,
    /// `join` second-closures stolen back (run inline) by their caller.
    pub steal_backs: u64,
    /// Published handles reclaimed unclaimed by their caller.
    pub reclaimed_handles: u64,
    /// Maximum injector queue depth observed at publish time.
    pub max_queue_depth: u64,
}

/// One worker thread's counters.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Thread name (`spsep-worker-3`).
    pub name: String,
    /// Nanoseconds spent executing popped task handles.
    pub busy_ns: u64,
    /// Task handles executed.
    pub tasks: u64,
}

/// Snapshot the pool telemetry. Counters accumulate from pool creation
/// (or the last [`reset_pool_stats`]).
pub fn pool_stats() -> PoolStats {
    let pool = pool();
    PoolStats {
        workers: pool
            .worker_telemetry
            .iter()
            .enumerate()
            .map(|(i, w)| WorkerStats {
                name: format!("spsep-worker-{i}"),
                busy_ns: w.busy_ns.load(Ordering::Relaxed),
                tasks: w.tasks.load(Ordering::Relaxed),
            })
            .collect(),
        steal_backs: pool.steal_backs.load(Ordering::Relaxed),
        reclaimed_handles: pool.reclaimed_handles.load(Ordering::Relaxed),
        max_queue_depth: pool.max_queue_depth.load(Ordering::Relaxed),
    }
}

/// Zero all telemetry counters (so a measured region can be bracketed by
/// `reset_pool_stats()` … `pool_stats()`).
pub fn reset_pool_stats() {
    let pool = pool();
    for w in &pool.worker_telemetry {
        w.busy_ns.store(0, Ordering::Relaxed);
        w.tasks.store(0, Ordering::Relaxed);
    }
    pool.steal_backs.store(0, Ordering::Relaxed);
    pool.reclaimed_handles.store(0, Ordering::Relaxed);
    pool.max_queue_depth.store(0, Ordering::Relaxed);
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();

/// Parse a `SPSEP_THREADS` value. Returns `None` (→ host default) for
/// absent, empty, non-numeric, zero, or absurd values.
pub(crate) fn parse_thread_env(value: Option<&str>) -> Option<usize> {
    let n: usize = value?.trim().parse().ok()?;
    (1..=MAX_THREADS).contains(&n).then_some(n)
}

pub(crate) fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let default_threads = parse_thread_env(std::env::var("SPSEP_THREADS").ok().as_deref())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let capacity = default_threads.max(MIN_CAPACITY);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            injector: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
            capacity,
            default_threads,
            worker_telemetry: (0..capacity - 1).map(|_| WorkerTelemetry::default()).collect(),
            steal_backs: AtomicU64::new(0),
            reclaimed_handles: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
        }));
        for i in 0..capacity - 1 {
            std::thread::Builder::new()
                .name(format!("spsep-worker-{i}"))
                .spawn(move || worker_loop(pool, i))
                .expect("failed to spawn spsep worker thread");
        }
        pool
    })
}

thread_local! {
    /// Per-thread concurrency cap; 0 = unset (use the pool default).
    /// Inherited by workers for the duration of each task they run, so
    /// nested parallelism under [`with_max_threads`] stays capped.
    static CAP: Cell<usize> = const { Cell::new(0) };
}

/// Restore guard for [`CAP`] (panic-safe).
struct CapGuard(usize);

impl CapGuard {
    fn set(cap: usize) -> CapGuard {
        CapGuard(CAP.with(|c| c.replace(cap)))
    }
}

impl Drop for CapGuard {
    fn drop(&mut self) {
        CAP.with(|c| c.set(self.0));
    }
}

/// The number of threads the *current* parallel region may use: the
/// innermost [`with_max_threads`] cap, else `SPSEP_THREADS`, else the
/// host parallelism. Chunking never depends on this — only the number
/// of helpers recruited does — so results are identical at any value.
pub(crate) fn effective_threads() -> usize {
    let cap = CAP.with(|c| c.get());
    if cap == 0 {
        pool().default_threads
    } else {
        cap
    }
}

/// Total threads the pool can bring to bear (workers + caller).
pub(crate) fn capacity() -> usize {
    pool().capacity
}

/// Run `f` with the effective thread count capped to `n` (clamped to
/// `1..=capacity`). Nested parallel regions started by `f` — including
/// on worker threads executing `f`'s chunks — inherit the cap.
pub fn with_max_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let n = n.clamp(1, capacity());
    let _guard = CapGuard::set(n);
    f()
}

fn worker_loop(pool: &'static Pool, index: usize) {
    let telemetry = &pool.worker_telemetry[index];
    loop {
        let task = {
            let mut q = lock(&pool.injector);
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = pool
                    .work_available
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let started = Instant::now();
        // Task entry points catch user panics internally; a panic
        // escaping here would skip handle retirement and hang the
        // submitting caller, so abort loudly instead of unwinding.
        if catch_unwind(AssertUnwindSafe(|| unsafe { (task.exec)(task.data) })).is_err() {
            eprintln!("spsep rayon shim: internal executor panic; aborting");
            std::process::abort();
        }
        telemetry
            .busy_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        telemetry.tasks.fetch_add(1, Ordering::Relaxed);
    }
}

/// Completion latch shared between a caller and its helpers. Held via
/// `Arc` by every worker that touches the job, so the final notify can
/// never race with the caller destroying it.
struct Latch {
    /// Published handles not yet retired.
    outstanding: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new(outstanding: usize) -> Latch {
        Latch {
            outstanding: Mutex::new(outstanding),
            cv: Condvar::new(),
        }
    }

    fn retire(&self, count: usize) {
        let mut st = lock(&self.outstanding);
        *st -= count;
        self.cv.notify_all();
    }

    /// Block until all handles retired and `done()` holds.
    fn wait(&self, done: impl Fn() -> bool) {
        let mut st = lock(&self.outstanding);
        while *st != 0 || !done() {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Wake the caller so it can re-check `done()`.
    fn ping(&self) {
        drop(lock(&self.outstanding));
        self.cv.notify_all();
    }
}

/// One parallel-for region, pinned on the caller's stack.
struct Batch<'a> {
    /// Chunk runner; receives a chunk index in `0..n_chunks`.
    body: &'a (dyn Fn(usize) + Sync),
    n_chunks: usize,
    /// Claim cursor.
    next: AtomicUsize,
    /// Chunks not yet finished.
    pending: AtomicUsize,
    /// Set on first panic: remaining chunks fast-drain (claimed but not
    /// run) so the batch always terminates.
    panicked: AtomicBool,
    /// First panic by *chunk index* (not arrival order) — deterministic
    /// choice of which payload the caller re-raises.
    panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>>,
    latch: Arc<Latch>,
    /// Cap inherited by helpers for nested regions.
    cap: usize,
}

fn claim_chunks(batch: &Batch<'_>) {
    loop {
        let i = batch.next.fetch_add(1, Ordering::Relaxed);
        if i >= batch.n_chunks {
            break;
        }
        if !batch.panicked.load(Ordering::Relaxed) {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (batch.body)(i))) {
                batch.panicked.store(true, Ordering::Relaxed);
                let mut slot = lock(&batch.panic);
                if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                    *slot = Some((i, payload));
                }
            }
        }
        if batch.pending.fetch_sub(1, Ordering::Release) == 1 {
            batch.latch.ping();
        }
    }
}

/// Entry point workers run for a batch handle.
unsafe fn batch_entry(data: *const ()) {
    let batch: &Batch<'_> = unsafe { &*(data as *const Batch<'_>) };
    // Clone the latch FIRST: after `retire` the caller may free the
    // batch, so the latch must be kept alive independently.
    let latch = Arc::clone(&batch.latch);
    {
        let _guard = CapGuard::set(batch.cap);
        claim_chunks(batch);
    }
    latch.retire(1);
}

/// Execute `body(0..n_chunks)` across the pool. Blocks until every chunk
/// completed and every helper retired; re-raises the lowest-chunk panic.
///
/// The *chunk structure* is the caller's; this function only decides how
/// many threads help, so results cannot depend on the thread count.
pub(crate) fn run_batch(n_chunks: usize, body: &(dyn Fn(usize) + Sync)) {
    if n_chunks == 0 {
        return;
    }
    let pool = pool();
    let eff = effective_threads();
    let helpers = eff
        .saturating_sub(1)
        .min(n_chunks.saturating_sub(1))
        .min(pool.capacity.saturating_sub(1));
    if helpers == 0 {
        // Inline execution; chunk order equals the parallel claim order
        // so panic choice (lowest chunk) is identical.
        for i in 0..n_chunks {
            body(i);
        }
        return;
    }
    let latch = Arc::new(Latch::new(helpers));
    let batch = Batch {
        body,
        n_chunks,
        next: AtomicUsize::new(0),
        pending: AtomicUsize::new(n_chunks),
        panicked: AtomicBool::new(false),
        panic: Mutex::new(None),
        latch: Arc::clone(&latch),
        cap: eff,
    };
    let task = Task {
        data: std::ptr::from_ref(&batch).cast::<()>(),
        exec: batch_entry,
    };
    {
        let mut q = lock(&pool.injector);
        for _ in 0..helpers {
            q.push_back(task);
        }
        pool.max_queue_depth.fetch_max(q.len() as u64, Ordering::Relaxed);
    }
    pool.work_available.notify_all();
    // Participate: the caller is one of the `eff` threads.
    claim_chunks(&batch);
    // Pull back handles nobody claimed — otherwise we would wait on a
    // busy pool to pop handles whose work is already done.
    {
        let mut q = lock(&pool.injector);
        let before = q.len();
        q.retain(|t| !std::ptr::eq(t.data, task.data));
        let removed = before - q.len();
        if removed > 0 {
            drop(q);
            pool.reclaimed_handles.fetch_add(removed as u64, Ordering::Relaxed);
            latch.retire(removed);
        }
    }
    latch.wait(|| batch.pending.load(Ordering::Acquire) == 0);
    let panic = lock(&batch.panic).take();
    if let Some((_chunk, payload)) = panic {
        resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------
// join
// ---------------------------------------------------------------------

const PENDING: u8 = 0;
const TAKEN: u8 = 1;
const REVOKED: u8 = 2;

/// A published second closure of a [`join`], pinned on the caller's
/// stack. `state` arbitrates between a worker taking it and the caller
/// stealing it back.
struct JoinJob<B, RB> {
    f: std::cell::UnsafeCell<Option<B>>,
    result: std::cell::UnsafeCell<Option<std::thread::Result<RB>>>,
    state: AtomicU8,
    cap: usize,
    latch: Arc<Latch>,
}

// SAFETY: `f` is moved out exactly once, by whichever side wins the
// PENDING → {TAKEN, REVOKED} race; `result` is written only by the
// TAKEN side and read by the caller only after the latch reports the
// worker retired.
unsafe impl<B: Send, RB: Send> Sync for JoinJob<B, RB> {}

unsafe fn join_entry<B, RB>(data: *const ())
where
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    let job: &JoinJob<B, RB> = unsafe { &*(data as *const JoinJob<B, RB>) };
    let latch = Arc::clone(&job.latch);
    if job
        .state
        .compare_exchange(PENDING, TAKEN, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        let f = unsafe { (*job.f.get()).take() }.expect("taken join job owns its closure");
        let _guard = CapGuard::set(job.cap);
        let r = catch_unwind(AssertUnwindSafe(f));
        unsafe { *job.result.get() = Some(r) };
    }
    latch.retire(1);
}

/// Run `a` and `b`, potentially in parallel, and return both results.
///
/// `b` is published to the pool; the caller runs `a`, then *steals `b`
/// back* and runs it inline unless a worker already started it — so an
/// idle pool costs one queue push, never a thread handoff, and no OS
/// thread is ever spawned per call. Propagates `a`'s panic first, then
/// `b`'s, matching `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = pool();
    if effective_threads() <= 1 || pool.capacity <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let latch = Arc::new(Latch::new(1));
    let job: JoinJob<B, RB> = JoinJob {
        f: std::cell::UnsafeCell::new(Some(b)),
        result: std::cell::UnsafeCell::new(None),
        state: AtomicU8::new(PENDING),
        cap: effective_threads(),
        latch: Arc::clone(&latch),
    };
    let task = Task {
        data: std::ptr::from_ref(&job).cast::<()>(),
        exec: join_entry::<B, RB>,
    };
    {
        let mut q = lock(&pool.injector);
        q.push_back(task);
        pool.max_queue_depth.fetch_max(q.len() as u64, Ordering::Relaxed);
    }
    pool.work_available.notify_one();
    let ra = catch_unwind(AssertUnwindSafe(a));
    let rb: std::thread::Result<RB> = if job
        .state
        .compare_exchange(PENDING, REVOKED, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        // Steal-back: remove the unclaimed handle (a worker may hold it
        // already — it loses the CAS and just retires).
        pool.steal_backs.fetch_add(1, Ordering::Relaxed);
        {
            let mut q = lock(&pool.injector);
            let before = q.len();
            q.retain(|t| !std::ptr::eq(t.data, task.data));
            let removed = before - q.len();
            drop(q);
            if removed > 0 {
                pool.reclaimed_handles.fetch_add(removed as u64, Ordering::Relaxed);
                latch.retire(removed);
            }
        }
        let f = unsafe { (*job.f.get()).take() }.expect("revoked join job owns its closure");
        let rb = catch_unwind(AssertUnwindSafe(f));
        latch.wait(|| true);
        rb
    } else {
        latch.wait(|| true);
        unsafe { (*job.result.get()).take() }.expect("taken join job left a result")
    };
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(pa), _) => resume_unwind(pa),
        (Ok(_), Err(pb)) => resume_unwind(pb),
    }
}
